//! Quickstart: the full paper workflow on a small custom kernel.
//!
//! Builds a native-ISA kernel with `KernelBuilder`, runs it on the
//! functional simulator (the Barra substitute), extracts dynamic
//! statistics, runs the performance model, and prints the bottleneck
//! report next to the timing simulator's "measured" time.
//!
//! Run with: `cargo run --release --example quickstart`

use gpa::hw::Machine;
use gpa::isa::builder::KernelBuilder;
use gpa::isa::instr::{CmpOp, MemAddr, NumTy, Pred, SpecialReg, Src, Width};
use gpa::model::{extract, report, Model};
use gpa::sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use gpa::ubench::{MeasureOpts, ThroughputCurves};
use std::rc::Rc;

fn main() {
    let machine = Machine::gtx285();
    println!("machine: {machine}");

    // ---- 1. Write a kernel: y[i] = a·x[i] + y[i], grid-strided ----
    let mut b = KernelBuilder::new("saxpy");
    b.set_threads(256);
    let x_p = b.param_alloc();
    let y_p = b.param_alloc();
    let n_p = b.param_alloc();
    let i = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let a = b.alloc_reg().unwrap();
    b.mov_imm_f32(a, 2.0);
    // i = ctaid.x · ntid.x + tid.x
    b.s2r(i, SpecialReg::CtaIdX);
    b.s2r(tmp, SpecialReg::NTidX);
    b.imul(i, Src::Reg(i), Src::Reg(tmp));
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.iadd(i, Src::Reg(i), Src::Reg(tid));
    let n = b.alloc_reg().unwrap();
    b.ld_param(n, n_p);
    let xa = b.alloc_reg().unwrap();
    let ya = b.alloc_reg().unwrap();
    let xv = b.alloc_reg().unwrap();
    let yv = b.alloc_reg().unwrap();
    b.label("loop");
    b.shl(xa, Src::Reg(i), Src::Imm(2));
    b.ld_param(tmp, x_p);
    b.iadd(xa, Src::Reg(xa), Src::Reg(tmp));
    b.ld_global(xv, MemAddr::new(Some(xa), 0), Width::B32);
    b.shl(ya, Src::Reg(i), Src::Imm(2));
    b.ld_param(tmp, y_p);
    b.iadd(ya, Src::Reg(ya), Src::Reg(tmp));
    b.ld_global(yv, MemAddr::new(Some(ya), 0), Width::B32);
    b.fmad(yv, Src::Reg(a), Src::Reg(xv), Src::Reg(yv));
    b.st_global(MemAddr::new(Some(ya), 0), yv, Width::B32);
    // i += gridDim·blockDim; loop while i < n
    b.s2r(tmp, SpecialReg::NCtaIdX);
    let bsz = b.alloc_reg().unwrap();
    b.s2r(bsz, SpecialReg::NTidX);
    b.imad(i, Src::Reg(tmp), Src::Reg(bsz), Src::Reg(i));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Reg(n));
    b.bra_if(Pred(0), false, "loop");
    b.exit();
    let kernel = b.finish().expect("kernel builds");
    println!("kernel: {kernel}");

    // ---- 2. Set up device memory and run the functional simulator ----
    let elems = 1 << 18;
    let mut gmem = GlobalMemory::new();
    let x: Vec<f32> = (0..elems).map(|k| k as f32 / 1000.0).collect();
    let y: Vec<f32> = vec![1.0; elems];
    let x_dev = gmem.alloc_f32(&x);
    let y_dev = gmem.alloc_f32(&y);
    let launch = LaunchConfig::new_1d(60, 256);
    let mut sim = FunctionalSim::new(&machine, &kernel, launch).unwrap();
    sim.set_params(&[x_dev as u32, y_dev as u32, elems as u32]);
    sim.collect_traces(true);
    let out = sim.run(&mut gmem).expect("runs");

    // Sanity: y[5] = 2·0.005 + 1.
    let y5 = gmem.read_f32(y_dev + 20).unwrap();
    assert!((y5 - (2.0 * x[5] + 1.0)).abs() < 1e-6);
    println!("functional result verified (y[5] = {y5})");

    // ---- 3. "Measure" on the timing simulator ----
    let timing = TimingSim::new(&machine);
    let traces: Vec<_> = out.traces.unwrap().into_iter().map(Rc::new).collect();
    let mut src = TraceSource::PerBlock(traces);
    let measured = timing.run(&mut src, &launch, kernel.resources);

    // ---- 4. Run the paper's model and print the report ----
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let mut model = Model::new(&machine, curves);
    let input = extract(&machine, "saxpy", launch, kernel.resources, out.stats);
    let analysis = model.analyze(&input);
    println!(
        "\n{}",
        report::render_with_measured(&analysis, measured.seconds)
    );

    let what_ifs = vec![
        model.what_if_perfect_coalescing(&input),
        model.what_if_granularity(&input, 1),
        model.what_if_max_blocks(&input, 16),
    ];
    println!("{}", report::render_what_ifs(&what_ifs));
}
