//! Quickstart: the full paper workflow on a small custom kernel, served
//! through the `Analyzer` session API.
//!
//! Builds a native-ISA kernel with `KernelBuilder`, calibrates an
//! `Analyzer` for the GTX 285 once, and submits the kernel: the service
//! runs the functional simulator (the Barra substitute), extracts dynamic
//! statistics, "measures" on the timing simulator, runs the performance
//! model, and returns the typed bottleneck report — with what-if advisor
//! estimates riding along.
//!
//! Run with: `cargo run --release --example quickstart`

use gpa::apps::workflow::Region;
use gpa::hw::Machine;
use gpa::isa::builder::KernelBuilder;
use gpa::isa::instr::{CmpOp, MemAddr, NumTy, Pred, SpecialReg, Src, Width};
use gpa::service::{AnalysisOptions, Analyzer, WhatIfSpec};
use gpa::sim::{GlobalMemory, LaunchConfig};
use gpa::ubench::MeasureOpts;

fn main() {
    let machine = Machine::gtx285();
    println!("machine: {machine}");

    // ---- 1. Write a kernel: y[i] = a·x[i] + y[i], grid-strided ----
    let mut b = KernelBuilder::new("saxpy");
    b.set_threads(256);
    let x_p = b.param_alloc();
    let y_p = b.param_alloc();
    let n_p = b.param_alloc();
    let i = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let a = b.alloc_reg().unwrap();
    b.mov_imm_f32(a, 2.0);
    // i = ctaid.x · ntid.x + tid.x
    b.s2r(i, SpecialReg::CtaIdX);
    b.s2r(tmp, SpecialReg::NTidX);
    b.imul(i, Src::Reg(i), Src::Reg(tmp));
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.iadd(i, Src::Reg(i), Src::Reg(tid));
    let n = b.alloc_reg().unwrap();
    b.ld_param(n, n_p);
    let xa = b.alloc_reg().unwrap();
    let ya = b.alloc_reg().unwrap();
    let xv = b.alloc_reg().unwrap();
    let yv = b.alloc_reg().unwrap();
    b.label("loop");
    b.shl(xa, Src::Reg(i), Src::Imm(2));
    b.ld_param(tmp, x_p);
    b.iadd(xa, Src::Reg(xa), Src::Reg(tmp));
    b.ld_global(xv, MemAddr::new(Some(xa), 0), Width::B32);
    b.shl(ya, Src::Reg(i), Src::Imm(2));
    b.ld_param(tmp, y_p);
    b.iadd(ya, Src::Reg(ya), Src::Reg(tmp));
    b.ld_global(yv, MemAddr::new(Some(ya), 0), Width::B32);
    b.fmad(yv, Src::Reg(a), Src::Reg(xv), Src::Reg(yv));
    b.st_global(MemAddr::new(Some(ya), 0), yv, Width::B32);
    // i += gridDim·blockDim; loop while i < n
    b.s2r(tmp, SpecialReg::NCtaIdX);
    let bsz = b.alloc_reg().unwrap();
    b.s2r(bsz, SpecialReg::NTidX);
    b.imad(i, Src::Reg(tmp), Src::Reg(bsz), Src::Reg(i));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Reg(n));
    b.bra_if(Pred(0), false, "loop");
    b.exit();
    let kernel = b.finish().expect("kernel builds");
    println!("kernel: {kernel}");

    // ---- 2. Set up device memory ----
    let elems = 1 << 18;
    let mut gmem = GlobalMemory::new();
    let x: Vec<f32> = (0..elems).map(|k| k as f32 / 1000.0).collect();
    let y: Vec<f32> = vec![1.0; elems];
    let x_dev = gmem.alloc_f32(&x);
    let y_dev = gmem.alloc_f32(&y);
    let launch = LaunchConfig::new_1d(60, 256);

    // ---- 3. Calibrate the Analyzer once (the expensive step) ----
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(machine, MeasureOpts::quick());

    // ---- 4. Submit the kernel: simulate, measure, model, report ----
    let options = AnalysisOptions {
        what_ifs: vec![
            WhatIfSpec::PerfectCoalescing,
            WhatIfSpec::Granularity4,
            WhatIfSpec::MaxBlocks(16),
        ],
        ..AnalysisOptions::default()
    };
    let regions = [
        Region::new("x", x_dev, 4 * elems as u64),
        Region::new("y", y_dev, 4 * elems as u64),
    ];
    let report = analyzer
        .analyze_kernel(
            "gtx285",
            &kernel,
            launch,
            &[x_dev as u32, y_dev as u32, elems as u32],
            &mut gmem,
            &regions,
            &options,
        )
        .expect("saxpy analyzes");

    // Sanity: side effects landed in our memory (y[5] = 2·0.005 + 1).
    let y5 = gmem.read_f32(y_dev + 20).unwrap();
    assert!((y5 - (2.0 * x[5] + 1.0)).abs() < 1e-6);
    println!("functional result verified (y[5] = {y5})");

    println!("\n{}", report.render());
    let yt = report.region("y").expect("y region attributed");
    println!(
        "region `y`: {} transactions, {} bytes moved for {} requested",
        yt.transactions, yt.bytes, yt.requested_bytes
    );
}
