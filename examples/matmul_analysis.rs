//! Paper §5.1: analyze dense matrix multiply across sub-matrix sizes and
//! print the model's verdict on each (why 16×16 wins, why 32×32 turns
//! shared-memory-bound).
//!
//! Run with: `cargo run --release --example matmul_analysis`

use gpa::apps::matmul;
use gpa::hw::Machine;
use gpa::model::{report, Model};
use gpa::ubench::{MeasureOpts, ThroughputCurves};

fn main() {
    let machine = Machine::gtx285();
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let mut model = Model::new(&machine, curves);
    let n = 256;
    for tile in matmul::TILES {
        let run = matmul::run(&machine, &mut model, n, tile, true).expect("matmul runs");
        println!("==== {tile}x{tile} sub-matrix, n = {n} (verified against CPU) ====");
        println!(
            "measured {:.3} ms ({:.0} GFLOPS)",
            run.measured_seconds() * 1e3,
            run.measured_gflops(matmul::flops(n))
        );
        println!(
            "{}",
            report::render_with_measured(&run.analysis, run.measured_seconds())
        );
        let what_if = model.what_if_max_blocks(&run.input, 16);
        println!("architectural what-if (paper §5.1): {what_if}\n");
    }
}
