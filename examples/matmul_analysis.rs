//! Paper §5.1: analyze dense matrix multiply across sub-matrix sizes and
//! print the model's verdict on each (why 16×16 wins, why 32×32 turns
//! shared-memory-bound) — one calibrated `Analyzer`, one batch of typed
//! requests.
//!
//! Run with: `cargo run --release --example matmul_analysis`

use gpa::apps::matmul;
use gpa::hw::Machine;
use gpa::service::{AnalysisOptions, AnalysisRequest, Analyzer, KernelSpec, WhatIfSpec};
use gpa::ubench::MeasureOpts;

fn main() {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let n = 256;

    let requests: Vec<AnalysisRequest> = matmul::TILES
        .iter()
        .map(|&tile| {
            AnalysisRequest::new(KernelSpec::Matmul { n, tile }, "gtx285").with_options(
                AnalysisOptions {
                    verify: true,
                    // The paper's §5.1 architectural what-if: would 16
                    // resident blocks per SM lift the bottleneck?
                    what_ifs: vec![WhatIfSpec::MaxBlocks(16)],
                    ..AnalysisOptions::default()
                },
            )
        })
        .collect();

    for (tile, report) in matmul::TILES.iter().zip(analyzer.analyze_batch(&requests)) {
        let report = report.expect("matmul analyzes");
        println!("==== {tile}x{tile} sub-matrix, n = {n} (verified against CPU) ====");
        println!(
            "measured {:.3} ms ({:.0} GFLOPS)",
            report.measured_seconds * 1e3,
            report.measured_gflops()
        );
        println!("{}", report.render());
    }
}
