//! Paper §5.3: compare SpMV storage formats on the QCD-like operator and
//! show the coalescing analysis that motivates vector interleaving — all
//! six variants submitted as one `Analyzer` batch (sharded across CPU
//! cores; answers identical to sequential calls).
//!
//! Run with: `cargo run --release --example spmv_formats`

use gpa::apps::spmv::{self, Format};
use gpa::hw::Machine;
use gpa::service::{AnalysisOptions, AnalysisRequest, Analyzer, KernelSpec};
use gpa::ubench::MeasureOpts;

fn main() {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let (l, seed) = (8, 42);
    let matrix = spmv::qcd_like(l, seed);
    println!(
        "QCD-like operator: {} rows, {} non-zeros ({} blocks/row of 3x3)",
        matrix.rows(),
        matrix.nnz(),
        spmv::BLOCKS_PER_ROW
    );

    let mut labels = Vec::new();
    let mut requests = Vec::new();
    for format in Format::ALL {
        for cache in [false, true] {
            labels.push(format!(
                "{}{}",
                format.name(),
                if cache { "+Cache" } else { "" }
            ));
            requests.push(
                AnalysisRequest::new(
                    KernelSpec::Spmv {
                        l,
                        seed,
                        format,
                        texture: cache,
                    },
                    "gtx285",
                )
                .with_options(AnalysisOptions {
                    // The cached variants gather in permuted order; their
                    // f32 sums differ from the straightforward reference.
                    verify: !cache,
                    ..AnalysisOptions::default()
                }),
            );
        }
    }

    let nnz = matrix.nnz() as f64;
    let per_entry = |report: &gpa::service::AnalysisReport, region: &str| {
        report.region(region).expect("region attributed").bytes as f64 / nnz
    };
    for (label, report) in labels.iter().zip(analyzer.analyze_batch(&requests)) {
        let report = report.expect("spmv analyzes");
        println!(
            "{label:>16}: {:>6.1} GFLOPS | bottleneck {:>18} | bytes/entry: matrix {:.2}, colidx {:.2}, vector {:.2}",
            report.measured_gflops(),
            report.analysis.bottleneck.to_string(),
            per_entry(&report, "matrix"),
            per_entry(&report, "colidx"),
            per_entry(&report, "vector"),
        );
    }
    println!("\nthe interleaved vector (IMIV) cuts gather bytes per entry, which is");
    println!("exactly where the paper's +18% over the prior best comes from.");
}
