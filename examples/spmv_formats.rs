//! Paper §5.3: compare SpMV storage formats on the QCD-like operator and
//! show the coalescing analysis that motivates vector interleaving.
//!
//! Run with: `cargo run --release --example spmv_formats`

use gpa::apps::spmv::{self, Format};
use gpa::hw::Machine;
use gpa::model::Model;
use gpa::sim::stats::GRAN_GT200;
use gpa::ubench::{MeasureOpts, ThroughputCurves};

fn main() {
    let machine = Machine::gtx285();
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let mut model = Model::new(&machine, curves);
    let matrix = spmv::qcd_like(8, 42);
    println!(
        "QCD-like operator: {} rows, {} non-zeros ({} blocks/row of 3x3)",
        matrix.rows(),
        matrix.nnz(),
        spmv::BLOCKS_PER_ROW
    );

    for format in Format::ALL {
        for cache in [false, true] {
            let run =
                spmv::run(&machine, &mut model, &matrix, format, cache, !cache).expect("spmv runs");
            let label = format!("{}{}", format.name(), if cache { "+Cache" } else { "" });
            println!(
                "{label:>16}: {:>6.1} GFLOPS | bottleneck {:>18} | bytes/entry: matrix {:.2}, colidx {:.2}, vector {:.2}",
                run.measured_gflops(matrix.flops()),
                run.analysis.bottleneck.to_string(),
                spmv::bytes_per_entry(&run, &matrix, "matrix", GRAN_GT200),
                spmv::bytes_per_entry(&run, &matrix, "colidx", GRAN_GT200),
                spmv::bytes_per_entry(&run, &matrix, "vector", GRAN_GT200),
            );
        }
    }
    println!("\nthe interleaved vector (IMIV) cuts gather bytes per entry, which is");
    println!("exactly where the paper's +18% over the prior best comes from.");
}
