//! Paper §5.2: use the model to *predict* the benefit of removing the
//! cyclic-reduction solver's bank conflicts, then verify by running the
//! padded CR-NBC variant — the paper's optimization workflow end to end,
//! as two requests against one calibrated `Analyzer`.
//!
//! Run with: `cargo run --release --example tridiag_optimize`

use gpa::hw::Machine;
use gpa::service::{AnalysisOptions, AnalysisRequest, Analyzer, KernelSpec, WhatIfSpec};
use gpa::ubench::MeasureOpts;

fn main() {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let (n, nsys) = (512, 64);

    println!("==== step 1: profile plain cyclic reduction ====");
    let cr = analyzer
        .analyze(
            &AnalysisRequest::new(
                KernelSpec::Tridiag {
                    n,
                    nsys,
                    padded: false,
                },
                "gtx285",
            )
            .with_options(AnalysisOptions {
                verify: true,
                what_ifs: vec![WhatIfSpec::NoBankConflicts],
                ..AnalysisOptions::default()
            }),
        )
        .expect("CR analyzes");
    println!("{}", cr.render());

    println!("==== step 2: ask the model about removing bank conflicts ====");
    let what_if = &cr.what_ifs[0];
    println!("{what_if}\n");

    println!("==== step 3: implement the padding (CR-NBC) and verify ====");
    let nbc = analyzer
        .analyze(
            &AnalysisRequest::new(
                KernelSpec::Tridiag {
                    n,
                    nsys,
                    padded: true,
                },
                "gtx285",
            )
            .with_options(AnalysisOptions {
                verify: true,
                ..AnalysisOptions::default()
            }),
        )
        .expect("CR-NBC analyzes");
    println!("{}", nbc.render());
    println!(
        "achieved speedup: x{:.2} (model predicted x{:.2}; the paper predicted, then measured, x1.6)",
        cr.measured_seconds / nbc.measured_seconds,
        what_if.speedup
    );
}
