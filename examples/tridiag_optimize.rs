//! Paper §5.2: use the model to *predict* the benefit of removing the
//! cyclic-reduction solver's bank conflicts, then verify by running the
//! padded CR-NBC variant — the paper's optimization workflow end to end.
//!
//! Run with: `cargo run --release --example tridiag_optimize`

use gpa::apps::tridiag;
use gpa::hw::Machine;
use gpa::model::{report, Model};
use gpa::ubench::{MeasureOpts, ThroughputCurves};

fn main() {
    let machine = Machine::gtx285();
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let mut model = Model::new(&machine, curves);
    let (n, nsys) = (512, 64);

    println!("==== step 1: profile plain cyclic reduction ====");
    let cr = tridiag::run(&machine, &mut model, n, nsys, false, true).expect("CR runs");
    println!(
        "{}",
        report::render_with_measured(&cr.analysis, cr.measured_seconds())
    );

    println!("==== step 2: ask the model about removing bank conflicts ====");
    let what_if = model.what_if_no_bank_conflicts(&cr.input);
    println!("{what_if}\n");

    println!("==== step 3: implement the padding (CR-NBC) and verify ====");
    let nbc = tridiag::run(&machine, &mut model, n, nsys, true, true).expect("CR-NBC runs");
    println!(
        "{}",
        report::render_with_measured(&nbc.analysis, nbc.measured_seconds())
    );
    println!(
        "achieved speedup: x{:.2} (model predicted x{:.2}; the paper predicted, then measured, x1.6)",
        cr.measured_seconds() / nbc.measured_seconds(),
        what_if.speedup
    );
}
