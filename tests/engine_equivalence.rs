//! Integration property: the parallel block-sharded [`gpa::sim::SimEngine`]
//! is **observationally identical** to the sequential walk. For random
//! kernels and launch shapes, a run sharded across worker threads must
//! produce exactly the same `DynamicStats`, the same per-warp traces, and
//! the same final global-memory image as `num_threads = 1` — bit for bit.

use gpa::hw::Machine;
use gpa::isa::instr::{CmpOp, MemAddr, NumTy, SpecialReg, Width};
use gpa::isa::{Kernel, KernelBuilder, Pred, Src};
use gpa::sim::func::RunOutput;
use gpa::sim::{FunctionalSim, GlobalMemory, LaunchConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

/// Deterministically expand `seed` into a small but varied kernel:
/// an integer hash chain over `tid`/`ctaid` with optional guarded ops,
/// warp divergence, and a shared-memory staging round (store → barrier →
/// read a rotated neighbour slot), ending in one global store per thread.
fn random_kernel(seed: u64, threads: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("prop_{seed:016x}"));
    b.set_threads(threads);
    let smem = b.smem_alloc(threads * 4, 4).unwrap() as i32;
    let out_p = b.param_alloc();

    let tid = b.alloc_reg().unwrap();
    let cta = b.alloc_reg().unwrap();
    let ntid = b.alloc_reg().unwrap();
    let acc = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(cta, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(acc, Src::Reg(cta), Src::Imm(1_664_525), Src::Reg(tid));

    let n_ops = 1 + (seed % 8) as usize;
    let mut bits = seed;
    for i in 0..n_ops {
        bits = bits
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let k = (bits >> 33) as i32;
        match bits % 7 {
            0 => {
                b.iadd(acc, Src::Reg(acc), Src::Imm(k));
            }
            1 => {
                b.imul(acc, Src::Reg(acc), Src::Imm(k | 1));
            }
            2 => {
                b.xor(acc, Src::Reg(acc), Src::Imm(k));
            }
            3 => {
                b.shl(tmp, Src::Reg(acc), Src::Imm(k.rem_euclid(8)));
                b.xor(acc, Src::Reg(acc), Src::Reg(tmp));
            }
            4 => {
                b.imax(acc, Src::Reg(acc), Src::Imm(k));
            }
            5 => {
                // Guarded update: only lanes with tid & mask take it.
                b.and(tmp, Src::Reg(tid), Src::Imm(3));
                b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(tmp), Src::Imm(2));
                b.set_guard(Pred(0), false);
                b.iadd(acc, Src::Reg(acc), Src::Imm(k | 7));
                b.clear_guard();
            }
            _ => {
                // Warp divergence through the PDOM stack.
                let skip = format!("skip{i}");
                b.and(tmp, Src::Reg(tid), Src::Imm(1));
                b.setp(Pred(1), CmpOp::Eq, NumTy::S32, Src::Reg(tmp), Src::Imm(0));
                b.bra_if(Pred(1), false, skip.clone());
                b.imad(acc, Src::Reg(acc), Src::Imm(k | 3), Src::Reg(tid));
                b.label(skip);
            }
        }
    }

    if seed & 1 == 0 {
        // Shared staging round: smem[tid] = acc; bar; acc ^= smem[rot(tid)].
        let rot = 1 + ((seed >> 8) % u64::from(threads.min(31))) as i32;
        b.shl(addr, Src::Reg(tid), Src::Imm(2));
        b.st_shared(MemAddr::new(Some(addr), smem), acc, Width::B32);
        b.bar();
        b.iadd(tmp, Src::Reg(tid), Src::Imm(rot));
        // tmp %= threads (threads is a power-of-two-free count, so use
        // compare-and-subtract, valid for rot < threads).
        b.setp(
            Pred(2),
            CmpOp::Ge,
            NumTy::S32,
            Src::Reg(tmp),
            Src::Imm(threads as i32),
        );
        b.set_guard(Pred(2), false);
        b.isub(tmp, Src::Reg(tmp), Src::Imm(threads as i32));
        b.clear_guard();
        b.shl(tmp, Src::Reg(tmp), Src::Imm(2));
        b.ld_shared(tmp, MemAddr::new(Some(tmp), smem), Width::B32);
        b.xor(acc, Src::Reg(acc), Src::Reg(tmp));
    }

    // out[cta * ntid + tid] = acc
    b.imad(addr, Src::Reg(cta), Src::Reg(ntid), Src::Reg(tid));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), acc, Width::B32);
    b.exit();
    b.finish().expect("generated kernel is structurally valid")
}

fn run(kernel: &Kernel, launch: LaunchConfig, num_threads: usize) -> (RunOutput, GlobalMemory) {
    let total = u64::from(launch.num_blocks()) * u64::from(launch.threads_per_block());
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(total * 4, 128);
    let mut sim = FunctionalSim::new(machine(), kernel, launch).expect("launchable");
    sim.set_params(&[out as u32])
        .collect_traces(true)
        .set_num_threads(num_threads);
    sim.add_region("out", out, total * 4);
    let output = sim.run(&mut gmem).expect("kernel runs");
    (output, gmem)
}

proptest! {
    #[test]
    fn parallel_engine_equals_sequential(
        seed in 0u64..u64::MAX,
        grid in 1u32..=24,
        threads in prop_oneof![Just(32u32), Just(48), Just(64), Just(96), Just(128)],
        workers in 2usize..=6,
    ) {
        let kernel = random_kernel(seed, threads);
        let launch = LaunchConfig::new_1d(grid, threads);
        let (seq, seq_mem) = run(&kernel, launch, 1);
        let (par, par_mem) = run(&kernel, launch, workers);
        prop_assert_eq!(
            &seq.stats, &par.stats,
            "stats diverge (seed {:#x}, {} blocks, {} workers)", seed, grid, workers
        );
        prop_assert_eq!(
            &seq.traces, &par.traces,
            "traces diverge (seed {:#x}, {} blocks, {} workers)", seed, grid, workers
        );
        prop_assert_eq!(
            &seq_mem, &par_mem,
            "memory diverges (seed {:#x}, {} blocks, {} workers)", seed, grid, workers
        );
    }
}

/// The real case studies, end to end: the workflow driver with a thread
/// count produces the same extracted statistics and the same timing
/// measurement as the sequential driver.
#[test]
fn case_studies_are_thread_count_invariant() {
    use gpa::apps::{matmul, spmv, tridiag};
    use gpa::model::Model;
    use gpa::ubench::{MeasureOpts, ThroughputCurves};

    let m = machine();
    let curves = ThroughputCurves::measure_with(m, MeasureOpts::quick());
    let mut model = Model::new(m, curves);

    let seq = matmul::run(m, &mut model, 256, 16, true).unwrap();
    let par = matmul::run_with_threads(m, &mut model, 256, 16, true, 0).unwrap();
    assert_eq!(seq.input.stats, par.input.stats);
    assert_eq!(seq.timing, par.timing);

    let seq = tridiag::run(m, &mut model, 512, 16, false, true).unwrap();
    let par = tridiag::run_with_threads(m, &mut model, 512, 16, false, true, 3).unwrap();
    assert_eq!(seq.input.stats, par.input.stats);
    assert_eq!(seq.timing, par.timing);

    let qcd = spmv::qcd_like(4, 7);
    let seq = spmv::run(m, &mut model, &qcd, spmv::Format::BellIm, true, true).unwrap();
    let par =
        spmv::run_with_threads(m, &mut model, &qcd, spmv::Format::BellIm, true, true, 4).unwrap();
    assert_eq!(seq.input.stats, par.input.stats);
    assert_eq!(seq.timing, par.timing);
}
