//! Integration: every case-study kernel survives the full representation
//! cycle — binary encode/decode (the "CUBIN") and assembly text
//! parse/print — and the recovered kernel behaves identically in the
//! functional simulator.

use gpa::apps::{matmul, spmv, tridiag};
use gpa::hw::Machine;
use gpa::isa::asm::{kernel_to_asm, parse_kernel};
use gpa::isa::Kernel;
use gpa::sim::{FunctionalSim, GlobalMemory, LaunchConfig};

fn all_kernels() -> Vec<Kernel> {
    let qcd = spmv::qcd_like(4, 1);
    vec![
        matmul::kernel(128, 8).unwrap(),
        matmul::kernel(128, 16).unwrap(),
        matmul::kernel(1024, 32).unwrap(),
        tridiag::kernel(512, false).unwrap(),
        tridiag::kernel(512, true).unwrap(),
        spmv::ell_kernel(&qcd).unwrap(),
        spmv::bell_kernel(&qcd, false).unwrap(),
        spmv::bell_kernel(&qcd, true).unwrap(),
    ]
}

#[test]
fn binary_round_trip_preserves_every_kernel() {
    for k in all_kernels() {
        let words = k
            .to_binary()
            .unwrap_or_else(|e| panic!("{}: encode {e:?}", k.name));
        let back = Kernel::from_binary(k.name.clone(), &words, k.resources, k.param_bytes)
            .unwrap_or_else(|e| panic!("{}: decode {e:?}", k.name));
        assert_eq!(back.instrs, k.instrs, "{} binary round-trip", k.name);
        assert!(back.validate().is_ok());
    }
}

#[test]
fn assembly_round_trip_preserves_every_kernel() {
    for k in all_kernels() {
        let text = kernel_to_asm(&k);
        let back = parse_kernel(&text).unwrap_or_else(|e| panic!("{}: parse {e}", k.name));
        assert_eq!(back.instrs, k.instrs, "{} asm round-trip", k.name);
        assert_eq!(back.resources, k.resources);
    }
}

#[test]
fn reassembled_kernel_executes_identically() {
    let machine = Machine::gtx285();
    let k = tridiag::kernel(512, false).unwrap();
    let text = kernel_to_asm(&k);
    let k2 = parse_kernel(&text).unwrap();

    let run = |kernel: &Kernel| {
        let mut gmem = GlobalMemory::new();
        let data = tridiag::setup(&mut gmem, 512, 2, 7);
        let params: Vec<u32> = data.dev.iter().map(|d| *d as u32).collect();
        let launch = LaunchConfig::new_1d(2, 256);
        let mut sim = FunctionalSim::new(&machine, kernel, launch).unwrap();
        sim.set_params(&params);
        let out = sim.run(&mut gmem).unwrap();
        let x = gmem.read_f32s(data.dev[4], 1024).unwrap();
        (out.stats, x)
    };
    let (s1, x1) = run(&k);
    let (s2, x2) = run(&k2);
    assert_eq!(x1, x2, "solutions must match bitwise");
    assert_eq!(s1.total(), s2.total(), "dynamic statistics must match");
}
