//! Integration: properties of the measured machine characterization that
//! the paper's analysis depends on.

use gpa::hw::{InstrClass, Machine};
use gpa::ubench::gmem::{measure, GmemConfig};
use gpa::ubench::{MeasureOpts, ThroughputCurves};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

fn curves() -> &'static ThroughputCurves {
    static C: OnceLock<ThroughputCurves> = OnceLock::new();
    C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()))
}

#[test]
fn instruction_classes_never_cross() {
    // Type I ≥ Type II ≥ Type III ≥ Type IV at every warp count.
    let c = curves();
    for &w in &c.warps {
        let t: Vec<f64> = InstrClass::ALL
            .iter()
            .map(|cl| c.instruction_throughput(*cl, w))
            .collect();
        assert!(
            t[0] >= t[1] * 0.98 && t[1] >= t[2] && t[2] >= t[3],
            "at {w} warps: {t:?}"
        );
    }
}

#[test]
fn shared_memory_needs_more_warps_than_the_pipeline() {
    // Paper §4.2: the shared-memory pipeline is longer.
    let c = curves();
    let instr_frac = c.instruction_throughput(InstrClass::TypeII, 6)
        / c.instruction_throughput(InstrClass::TypeII, 32);
    let smem_frac = c.shared_bandwidth(6) / c.shared_bandwidth(32);
    assert!(
        smem_frac < instr_frac,
        "at 6 warps: smem at {:.0}% of plateau, pipeline at {:.0}%",
        smem_frac * 100.0,
        instr_frac * 100.0
    );
}

#[test]
fn global_bandwidth_prefers_multiples_of_ten_blocks() {
    // Paper Figure 3's sawtooth: 10 clusters.
    let m = machine();
    let bw_14 = measure(m, GmemConfig::new(14, 256, 64));
    let bw_20 = measure(m, GmemConfig::new(20, 256, 64));
    assert!(
        bw_20 > bw_14,
        "20 blocks {bw_20:.3e} should beat 14 {bw_14:.3e}"
    );
}

#[test]
fn saturated_global_bandwidth_matches_the_paper_plateau() {
    // Paper Figure 3 saturates around 120–130 GB/s.
    let m = machine();
    let bw = measure(m, GmemConfig::new(40, 256, 128)) / 1e9;
    assert!((105.0..135.0).contains(&bw), "plateau {bw:.1} GB/s");
}

#[test]
fn curve_peaks_respect_theory() {
    let m = machine();
    let c = curves();
    for cl in InstrClass::ALL {
        assert!(
            c.instruction_throughput(cl, 32) <= m.peak_warp_instruction_throughput(cl),
            "{cl} exceeds its theoretical peak"
        );
    }
    assert!(c.shared_bandwidth(32) <= m.peak_shared_bandwidth());
}
