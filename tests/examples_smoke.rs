//! Keeps the documented example path working: every example must build,
//! and the README's quickstart must run to completion.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

#[test]
fn examples_build() {
    let out = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The quickstart ends with the model-vs-measured comparison and the
    // what-if table; spot-check both so a silent early exit fails loudly.
    assert!(
        stdout.contains("bottleneck"),
        "missing bottleneck report:\n{stdout}"
    );
    assert!(
        stdout.contains("what-if"),
        "missing what-if section:\n{stdout}"
    );
}

/// The workload-zoo sweep exhibit must run to completion and land every
/// workload on its intended bottleneck class on the flagship SKU (the
/// zoo's whole purpose is exhibiting those classes).
#[test]
fn zoo_sweep_runs_and_classifies() {
    let out = cargo()
        .args(["run", "-p", "gpa-bench", "--bin", "zoo"])
        .output()
        .expect("spawn cargo run -p gpa-bench --bin zoo");
    assert!(
        out.status.success(),
        "zoo sweep exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (workload, class) in [
        ("vector_add ", "gmem"),
        ("histogram ", "atomic"),
        ("atomic_hotspot ", "atomic"),
        ("shared_bank_conflict ", "smem"),
        ("naive_transpose ", "gmem"),
        ("random_access ", "gmem"),
    ] {
        let line = stdout
            .lines()
            .find(|l| l.contains(workload))
            .unwrap_or_else(|| panic!("no row for {workload}:\n{stdout}"));
        assert!(
            line.contains(class),
            "{workload} row missing class `{class}`: {line}"
        );
    }
}
