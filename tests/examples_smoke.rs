//! Keeps the documented example path working: every example must build,
//! and the README's quickstart must run to completion.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

#[test]
fn examples_build() {
    let out = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The quickstart ends with the model-vs-measured comparison and the
    // what-if table; spot-check both so a silent early exit fails loudly.
    assert!(
        stdout.contains("bottleneck"),
        "missing bottleneck report:\n{stdout}"
    );
    assert!(
        stdout.contains("what-if"),
        "missing what-if section:\n{stdout}"
    );
}
