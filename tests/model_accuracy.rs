//! Integration: the paper's headline accuracy claim — the model predicts
//! the three case studies "with a 5–15% error". Our synthetic machine
//! reproduces the bottleneck identities exactly and the accuracy within a
//! wider but same-shape band (see EXPERIMENTS.md for the discussion).

use gpa::apps::{matmul, spmv, tridiag};
use gpa::hw::Machine;
use gpa::model::{Component, Model};
use gpa::ubench::{MeasureOpts, ThroughputCurves};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

fn model() -> Model<'static> {
    static C: OnceLock<ThroughputCurves> = OnceLock::new();
    let c = C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()));
    Model::new(machine(), c.clone())
}

#[test]
fn bottleneck_identities_match_the_paper() {
    let mut m = model();
    // §5.1: 16×16 matmul is instruction-bound. (n = 512 is the smallest
    // grid that fills every SM to the paper's 16-warp occupancy.)
    let mm = matmul::run(machine(), &mut m, 512, 16, false).unwrap();
    assert_eq!(mm.analysis.bottleneck, Component::InstructionPipeline);
    // §5.2: CR is shared-memory-bound; CR-NBC is instruction-bound.
    let cr = tridiag::run(machine(), &mut m, 512, 30, false, false).unwrap();
    assert_eq!(cr.analysis.bottleneck, Component::SharedMemory);
    let nbc = tridiag::run(machine(), &mut m, 512, 30, true, false).unwrap();
    assert_eq!(nbc.analysis.bottleneck, Component::InstructionPipeline);
    // §5.3: every SpMV format is global-memory-bound.
    let qcd = spmv::qcd_like(8, 3);
    for format in spmv::Format::ALL {
        let r = spmv::run(machine(), &mut m, &qcd, format, false, false).unwrap();
        assert_eq!(
            r.analysis.bottleneck,
            Component::GlobalMemory,
            "{}",
            format.name()
        );
    }
}

#[test]
fn error_bands_hold_across_case_studies() {
    let mut m = model();
    let mut worst: f64 = 0.0;
    let mm = matmul::run(machine(), &mut m, 256, 16, false).unwrap();
    worst = worst.max(mm.model_error().abs());
    let cr = tridiag::run(machine(), &mut m, 512, 30, false, false).unwrap();
    worst = worst.max(cr.model_error().abs());
    let qcd = spmv::qcd_like(8, 3);
    let sp = spmv::run(machine(), &mut m, &qcd, spmv::Format::BellIm, false, false).unwrap();
    worst = worst.max(sp.model_error().abs());
    assert!(
        worst < 0.35,
        "worst model error across the paper's three case studies: {:.0}%",
        worst * 100.0
    );
}

#[test]
fn optimization_payoffs_match_the_paper_direction() {
    let mut m = model();
    // §5.2: padding wins ~1.6×.
    let cr = tridiag::run(machine(), &mut m, 512, 30, false, false).unwrap();
    let nbc = tridiag::run(machine(), &mut m, 512, 30, true, false).unwrap();
    let speedup = cr.measured_seconds() / nbc.measured_seconds();
    assert!(speedup > 1.25, "padding speedup ×{speedup:.2}");
    // §5.3: vector interleaving wins.
    let qcd = spmv::qcd_like(8, 3);
    let im = spmv::run(machine(), &mut m, &qcd, spmv::Format::BellIm, false, false).unwrap();
    let iv = spmv::run(
        machine(),
        &mut m,
        &qcd,
        spmv::Format::BellImIv,
        false,
        false,
    )
    .unwrap();
    assert!(iv.measured_seconds() < im.measured_seconds());
}
