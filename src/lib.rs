#![warn(missing_docs)]

//! # gpa — A Quantitative Performance Analysis Model for GPU Architectures
//!
//! A from-scratch Rust reproduction of **Zhang & Owens, HPCA 2011**: a
//! microbenchmark-based performance model for GT200-class GPUs that
//! identifies program bottlenecks among the instruction pipeline, shared
//! memory, and global memory, and quantifies the benefit of removing them.
//!
//! The workspace is a facade over seven sub-crates, re-exported here:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`hw`] | `gpa-hw` | GT200 machine description, peaks, occupancy |
//! | [`isa`] | `gpa-isa` | native-flavoured instruction set, assembler, kernel builder |
//! | [`mem`] | `gpa-mem` | coalescing protocol, bank conflicts, texture cache |
//! | [`sim`] | `gpa-sim` | functional (Barra-style) and timing simulators |
//! | [`ubench`] | `gpa-ubench` | microbenchmarks and throughput curves |
//! | [`model`] | `gpa-core` | **the paper's model**: component times, bottleneck, advisor |
//! | [`apps`] | `gpa-apps` | case studies: matmul, tridiagonal solver, SpMV |
//! | [`service`] | `gpa-service` | the serving surface: `Analyzer` sessions, typed requests, batch submission, JSON wire format, `gpa-analyze` CLI |
//! | [`server`] | `gpa-server` | the HTTP front end: `gpa-serve` binary, bounded-queue worker pool, blocking client, `gpa-http` |
//!
//! # Quickstart
//!
//! ```
//! use gpa::hw::Machine;
//! use gpa::ubench::{MeasureOpts, ThroughputCurves};
//!
//! let machine = Machine::gtx285();
//! // Measure the machine's throughput curves once (paper Figure 2)...
//! let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
//! // ...then ask for the sustained MAD throughput at 16 warps/SM.
//! let thr = curves.instruction_throughput(gpa::hw::InstrClass::TypeII, 16);
//! assert!(thr > 8.0e9 && thr < 11.2e9);
//! ```
//!
//! See `examples/quickstart.rs` for the full workflow: build a kernel, run
//! the functional simulator, extract statistics, and produce a bottleneck
//! report.

pub use gpa_apps as apps;
pub use gpa_core as model;
pub use gpa_hw as hw;
pub use gpa_isa as isa;
pub use gpa_mem as mem;
pub use gpa_server as server;
pub use gpa_service as service;
pub use gpa_sim as sim;
pub use gpa_ubench as ubench;
