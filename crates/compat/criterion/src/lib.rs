#![warn(missing_docs)]

//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the Criterion API its benches use:
//! [`Criterion`] with `sample_size` and `bench_function`, [`Bencher`] with
//! `iter` / `iter_batched`, [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain wall-clock median over `sample_size` samples — good
//! enough to spot order-of-magnitude regressions, with no statistics,
//! plotting, or baseline storage.
//!
//! Setting `GPA_BENCH_SAMPLES=<n>` overrides every benchmark's sample
//! count (including explicit `sample_size` configuration) — CI uses
//! `GPA_BENCH_SAMPLES=1` as a smoke mode that proves the bench paths
//! compile and run without paying for stable medians.

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// in this shim (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Measures one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2].as_nanos()
    }
}

/// Benchmark driver (registration + reporting).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print its median time.
    ///
    /// The `GPA_BENCH_SAMPLES` environment variable, when set to a
    /// positive integer, overrides the configured sample count (CI smoke
    /// mode).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = std::env::var("GPA_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        let ns = b.median_ns();
        let (value, unit) = if ns >= 1_000_000_000 {
            (ns as f64 / 1e9, "s")
        } else if ns >= 1_000_000 {
            (ns as f64 / 1e6, "ms")
        } else if ns >= 1_000 {
            (ns as f64 / 1e3, "µs")
        } else {
            (ns as f64, "ns")
        };
        println!("{id:<40} median {value:>10.3} {unit} ({samples} samples)");
        self
    }
}

/// Group benchmark functions under one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(smoke, quick);

    #[test]
    fn group_runs() {
        smoke();
    }
}
