#![warn(missing_docs)]

//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the Criterion API its benches use:
//! [`Criterion`] with `sample_size` and `bench_function`, [`Bencher`] with
//! `iter` / `iter_batched`, [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is a plain wall-clock median over `sample_size` samples — good
//! enough to spot order-of-magnitude regressions, with no statistics,
//! plotting, or baseline storage.
//!
//! Setting `GPA_BENCH_SAMPLES=<n>` overrides every benchmark's sample
//! count (including explicit `sample_size` configuration) — CI uses
//! `GPA_BENCH_SAMPLES=1` as a smoke mode that proves the bench paths
//! compile and run without paying for stable medians.
//!
//! Setting `GPA_BENCH_JSON=<path>` additionally writes every result to
//! `<path>` as a JSON object mapping benchmark id to
//! `{"median_ns": …, "samples": …}`. The file is rewritten after each
//! benchmark completes, so an interrupted run still leaves valid JSON
//! covering everything that finished. Entries already in the file that
//! this process has not (re)measured are preserved, so several bench
//! binaries pointed at the same path **merge** their result sets —
//! delete the file first to regenerate it from scratch. This is how
//! tracked `BENCH_*.json` files are produced and how CI checks that the
//! benchmark set matches the tracked one.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results recorded so far in this process, in completion order —
/// rewritten to `GPA_BENCH_JSON` wholesale after every benchmark.
static RESULTS: Mutex<Vec<(String, u128, usize)>> = Mutex::new(Vec::new());

/// Minimal JSON string escaping (benchmark ids are plain ASCII, but a
/// stray quote or backslash must not corrupt the file).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`] (the shim only ever parses files it wrote itself).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Parse one `  "id": {"median_ns": N, "samples": M},` line of a results
/// file this shim wrote earlier; `None` for braces and malformed lines.
fn parse_entry_line(line: &str) -> Option<(String, u128, usize)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let (id, rest) = rest.split_once("\": {\"median_ns\": ")?;
    let (ns, rest) = rest.split_once(", \"samples\": ")?;
    let n = rest.strip_suffix('}')?;
    Some((unescape(id), ns.parse().ok()?, n.parse().ok()?))
}

/// Append one result and rewrite `GPA_BENCH_JSON`, if configured.
///
/// Entries found in the file but not measured by this process (another
/// bench binary's results) are kept, ahead of this process's results.
fn record_json(id: &str, median_ns: u128, samples: usize) {
    let Ok(path) = std::env::var("GPA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut results = RESULTS.lock().unwrap();
    results.push((id.to_owned(), median_ns, samples));
    let mut merged: Vec<(String, u128, usize)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            if let Some(entry) = parse_entry_line(line) {
                if !results.iter().any(|(rid, _, _)| *rid == entry.0) {
                    merged.push(entry);
                }
            }
        }
    }
    merged.extend(results.iter().cloned());
    let mut out = String::from("{\n");
    for (i, (id, ns, n)) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{}\": {{\"median_ns\": {ns}, \"samples\": {n}}}{comma}\n",
            escape(id)
        ));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write GPA_BENCH_JSON={path}: {e}");
    }
}

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// in this shim (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Measures one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2].as_nanos()
    }
}

/// Benchmark driver (registration + reporting).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print its median time.
    ///
    /// The `GPA_BENCH_SAMPLES` environment variable, when set to a
    /// positive integer, overrides the configured sample count (CI smoke
    /// mode).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = std::env::var("GPA_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        let ns = b.median_ns();
        record_json(id, ns, samples);
        let (value, unit) = if ns >= 1_000_000_000 {
            (ns as f64 / 1e9, "s")
        } else if ns >= 1_000_000 {
            (ns as f64 / 1e6, "ms")
        } else if ns >= 1_000 {
            (ns as f64 / 1e3, "µs")
        } else {
            (ns as f64, "ns")
        };
        println!("{id:<40} median {value:>10.3} {unit} ({samples} samples)");
        self
    }
}

/// Group benchmark functions under one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(smoke, quick);

    #[test]
    fn group_runs() {
        smoke();
    }

    #[test]
    fn json_emission_writes_every_result() {
        let path = std::env::temp_dir().join(format!("gpa-bench-json-{}.json", std::process::id()));
        // A pre-existing entry from "another bench binary" must survive
        // this process's rewrites (multi-binary merge mode).
        std::fs::write(
            &path,
            "{\n  \"other/bench\": {\"median_ns\": 7, \"samples\": 3}\n}\n",
        )
        .unwrap();
        std::env::set_var("GPA_BENCH_JSON", &path);
        let mut c = Criterion::default().sample_size(1);
        c.bench_function("shim/alpha", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/\"beta\"", |b| b.iter(|| 2 + 2));
        std::env::remove_var("GPA_BENCH_JSON");

        let text = std::fs::read_to_string(&path).expect("results file written");
        let _ = std::fs::remove_file(&path);
        assert!(text.trim_start().starts_with('{'), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
        assert!(text.contains("\"shim/alpha\": {\"median_ns\": "), "{text}");
        // Quotes in an id arrive escaped, keeping the JSON well-formed.
        assert!(text.contains("shim/\\\"beta\\\""), "{text}");
        assert!(
            text.contains("\"other/bench\": {\"median_ns\": 7, \"samples\": 3}"),
            "foreign entry dropped: {text}"
        );
    }

    #[test]
    fn entry_lines_round_trip() {
        let line = format!(
            "  \"{}\": {{\"median_ns\": 123, \"samples\": 4}},",
            escape("serve/\"odd\"\\id")
        );
        let (id, ns, n) = parse_entry_line(&line).unwrap();
        assert_eq!(id, "serve/\"odd\"\\id");
        assert_eq!((ns, n), (123, 4));
        assert_eq!(parse_entry_line("{"), None);
        assert_eq!(parse_entry_line("}"), None);
        assert_eq!(parse_entry_line("  \"no-median\": {}"), None);
    }
}
