#![warn(missing_docs)]

//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the proptest API its test suites
//! actually use: the [`Strategy`] trait with `prop_map`, integer-range and
//! tuple strategies, [`Just`], [`any`], `proptest::option::of`,
//! `proptest::collection::vec`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are fully deterministic;
//! * there is no shrinking — a failing case panics with the generated
//!   values via the assertion message;
//! * each property runs [`CASES`] cases.

/// Number of cases each `proptest!` property executes.
pub const CASES: usize = 64;

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
///
/// The mirror of proptest's `Strategy`, reduced to what the test suites
/// use: generation plus the `prop_map` combinator.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let r = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo + r as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy (mirror of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `alternatives` (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategies over `Option<T>` (mirror of `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // ~1 in 5 None, like proptest's default weighting.
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` sometimes, `Some(value from s)` otherwise.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

/// Strategies over collections (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed `usize` or a range.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }
}

/// Hash a test name into a stable seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Define deterministic property tests (mirror of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when a precondition does not hold.
///
/// Restriction (unlike real proptest): this expands to a bare `continue`
/// targeting the generated per-case loop, so it must be called at the top
/// level of the property body — inside a nested loop it would skip only
/// that loop's iteration, not the whole case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_respects_size_range() {
        let s = crate::collection::vec(0u64..10, 2..5);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_yields_both() {
        let s = crate::option::of(0u8..10);
        let mut rng = TestRng::new(11);
        let vals: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0u32..100, y in any::<bool>()) {
            prop_assume!(x != 1);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 1);
            prop_assert!(usize::from(y) < 2);
        }
    }
}
