// A bare compute kernel for the `gpa-analyze --kernel-asm` convenience:
// no parameters, no device memory — each thread runs a 16-step f32
// recurrence over its lane id. See sample_custom_kernel.json for a
// kernel with a wire-declared memory image.
.kernel lanehash
.reg 4
.smem 0
.threads 128
.param 0
    s2r r0, %tid.x
    s2r r1, %ctaid.x
    mad.s32 r0, r1, 128, r0
    i2f r1, r0                  // x = global lane id
    mov32 r2, 0x3f800000        // acc = 1.0f
    mov32 r3, 0                 // i = 0
L0:
    mad.f32 r2, r2, r1, r1      // acc = acc * x + x
    rsq.f32 r2, r2
    add.s32 r3, r3, 1
    setp.lt.s32 p0, r3, 16
    @p0 bra L0
    exit
