//! The portable-kernel-encoding acceptance suite.
//!
//! * **Property**: a random `KernelBuilder` kernel pushed through the
//!   full wire path — `kernel_to_asm` → `KernelSpec::Custom` → JSON →
//!   parse → `Analyzer::analyze` — answers **bit-identically** to the
//!   in-process `analyze_kernel` shim on the same kernel, launch, and
//!   memory (stats, analysis, traffic, flops), with the report's
//!   `outputs` readback equal to the shim's caller-owned memory.
//! * **Negative**: malformed assembly and memory-image specs are typed
//!   [`ServiceError`]s in-process and clean HTTP 400s through the
//!   server's route table — never panics.

use gpa_hw::Machine;
use gpa_isa::asm::kernel_to_asm;
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, SpecialReg, Width};
use gpa_isa::{Kernel, KernelBuilder, Pred, Src};
use gpa_service::{
    AnalysisOptions, AnalysisRequest, Analyzer, CustomKernel, KernelSpec, MemInit, MemRegionSpec,
    ParamValue, ServiceError, CUSTOM_REGION_ALIGN, MAX_CUSTOM_MEMORY_BYTES,
    MAX_CUSTOM_READBACK_BYTES,
};
use gpa_sim::{GlobalMemory, LaunchConfig};
use gpa_ubench::MeasureOpts;
use proptest::prelude::*;
use std::sync::OnceLock;

fn analyzer() -> &'static Analyzer {
    static A: OnceLock<Analyzer> = OnceLock::new();
    A.get_or_init(|| {
        let mut a = Analyzer::new();
        a.calibrate(Machine::gtx285(), MeasureOpts::quick());
        a
    })
}

/// Deterministically expand `seed` into a small varied kernel mixing
/// integer hashing, f32 arithmetic (so the dynamic flop count is
/// non-trivial), guarded ops, divergence, and a shared-memory round,
/// ending in one global store per thread to `out`.
fn random_kernel(seed: u64, threads: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("wire_{seed:016x}"));
    b.set_threads(threads);
    let smem = b.smem_alloc(threads * 4, 4).unwrap() as i32;
    let out_p = b.param_alloc();

    let tid = b.alloc_reg().unwrap();
    let cta = b.alloc_reg().unwrap();
    let ntid = b.alloc_reg().unwrap();
    let acc = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let facc = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(cta, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(acc, Src::Reg(cta), Src::Imm(1_664_525), Src::Reg(tid));
    b.i2f(facc, Src::Reg(tid));
    // One unconditional f32 op so every generated kernel has a non-zero
    // dynamic flop count for the honesty assertion below.
    b.fmad(facc, Src::Reg(facc), Src::Reg(facc), Src::Reg(tid));

    let n_ops = 1 + (seed % 6) as usize;
    let mut bits = seed;
    for i in 0..n_ops {
        bits = bits
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let k = (bits >> 33) as i32;
        match bits % 6 {
            0 => {
                b.iadd(acc, Src::Reg(acc), Src::Imm(k));
            }
            1 => {
                b.xor(acc, Src::Reg(acc), Src::Imm(k));
            }
            2 => {
                // f32 work: facc = facc * facc + tid; keeps flops > 0.
                b.fmad(facc, Src::Reg(facc), Src::Reg(facc), Src::Reg(tid));
                b.rsq(facc, Src::Reg(facc));
            }
            3 => {
                // Guarded update: only some lanes take it.
                b.and(tmp, Src::Reg(tid), Src::Imm(3));
                b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(tmp), Src::Imm(2));
                b.set_guard(Pred(0), false);
                b.iadd(acc, Src::Reg(acc), Src::Imm(k | 7));
                b.clear_guard();
            }
            4 => {
                // Warp divergence through the PDOM stack.
                let skip = format!("skip{i}");
                b.and(tmp, Src::Reg(tid), Src::Imm(1));
                b.setp(Pred(1), CmpOp::Eq, NumTy::S32, Src::Reg(tmp), Src::Imm(0));
                b.bra_if(Pred(1), false, skip.clone());
                b.imad(acc, Src::Reg(acc), Src::Imm(k | 3), Src::Reg(tid));
                b.label(skip);
            }
            _ => {
                // Shared staging: smem[tid] = acc; bar; acc ^= smem[tid].
                b.shl(addr, Src::Reg(tid), Src::Imm(2));
                b.st_shared(MemAddr::new(Some(addr), smem), acc, Width::B32);
                b.bar();
                b.ld_shared(tmp, MemAddr::new(Some(addr), smem), Width::B32);
                b.xor(acc, Src::Reg(acc), Src::Reg(tmp));
            }
        }
    }

    // out[cta * ntid + tid] = acc ^ (bits of facc)
    b.f2i(tmp, Src::Reg(facc));
    b.xor(acc, Src::Reg(acc), Src::Reg(tmp));
    b.imad(addr, Src::Reg(cta), Src::Reg(ntid), Src::Reg(tid));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), acc, Width::B32);
    b.exit();
    b.finish().expect("generated kernel is structurally valid")
}

proptest! {
    #[test]
    fn wire_path_equals_in_process_path(
        seed in 0u64..u64::MAX,
        grid in 1u32..=6,
        threads in prop_oneof![Just(32u32), Just(64), Just(96)],
    ) {
        let analyzer = analyzer();
        let kernel = random_kernel(seed, threads);
        let launch = LaunchConfig::new_1d(grid, threads);
        let out_len = u64::from(grid) * u64::from(threads) * 4;
        let options = AnalysisOptions::default();

        // In-process path: caller-owned memory through the shim.
        let mut gmem = GlobalMemory::new();
        let out = gmem.alloc(out_len, CUSTOM_REGION_ALIGN);
        let regions = vec![gpa_apps::workflow::Region::new("out", out, out_len)];
        let in_process = analyzer
            .analyze_kernel("gtx285", &kernel, launch, &[out as u32], &mut gmem,
                            &regions, &options)
            .expect("in-process analysis");

        // Wire path: the same kernel as asm + declarative memory, routed
        // through JSON both ways.
        let custom = CustomKernel {
            asm: kernel_to_asm(&kernel),
            launch,
            params: vec![ParamValue::RegionBase("out".into())],
            memory: vec![MemRegionSpec {
                name: "out".into(),
                len: out_len,
                init: MemInit::Zero,
                texture: false,
                readback: true,
            }],
        };
        let request = AnalysisRequest::new(KernelSpec::Custom(Box::new(custom)), "gtx285");
        let json = request.to_json();
        let parsed = AnalysisRequest::from_json(&json).expect("request round-trips");
        prop_assert_eq!(&parsed, &request);
        let wire = analyzer.analyze(&parsed).expect("wire analysis");

        // The report survives its own wire format bit-exactly.
        let report_json = wire.to_json();
        let wire_back = gpa_service::AnalysisReport::from_json(&report_json).unwrap();
        prop_assert_eq!(&wire_back, &wire);
        prop_assert_eq!(wire_back.to_json(), report_json);

        // Readback must equal the shim's caller-owned memory image.
        prop_assert_eq!(wire.outputs.len(), 1);
        prop_assert_eq!(&wire.outputs[0].name, "out");
        let shim_words = gmem
            .read_u32s(out, (out_len / 4) as usize)
            .expect("out region readable");
        prop_assert_eq!(&wire.outputs[0].words, &shim_words, "side effects diverge");

        // And everything else is bit-identical between the two paths.
        let mut wire_sans_outputs = wire.clone();
        wire_sans_outputs.outputs.clear();
        prop_assert_eq!(&wire_sans_outputs, &in_process, "reports diverge (seed {:#x})", seed);
        prop_assert!(wire.flops > 0, "dynamic flop count should be honest, got 0");
    }
}

/// A minimal valid custom kernel to mutate in the negative tests.
fn valid_custom() -> CustomKernel {
    CustomKernel {
        asm: ".kernel ok\n.reg 2\n.threads 32\n.param 4\n    ld.param.b32 r0, c[0x0]\n    \
              st.global.b32 g[r0], r1\n    exit\n"
            .into(),
        launch: LaunchConfig::new_1d(1, 32),
        params: vec![ParamValue::RegionBase("out".into())],
        memory: vec![MemRegionSpec {
            name: "out".into(),
            len: 128,
            init: MemInit::Zero,
            texture: false,
            readback: false,
        }],
    }
}

fn expect_invalid(custom: CustomKernel, want: &str) {
    match KernelSpec::Custom(Box::new(custom)).build() {
        Err(ServiceError::InvalidRequest(msg)) => {
            assert!(msg.contains(want), "`{msg}` does not mention `{want}`");
        }
        other => panic!("expected InvalidRequest mentioning `{want}`, got {other:?}"),
    }
}

#[test]
fn valid_custom_builds() {
    assert!(KernelSpec::Custom(Box::new(valid_custom())).build().is_ok());
}

#[test]
fn malformed_custom_kernels_are_typed_errors_not_panics() {
    // Unknown mnemonic in the assembly.
    let mut c = valid_custom();
    c.asm = ".kernel x\n.threads 32\n    frobnicate r0\n    exit\n".into();
    c.params.clear();
    expect_invalid(c, "frobnicate");

    // Branch-target overflow (would silently wrap before the hardening).
    let mut c = valid_custom();
    c.asm = ".kernel x\n.threads 32\n    bra 4294967296\n    exit\n".into();
    c.params.clear();
    expect_invalid(c, "out of range");

    // Label out of range (structural validation).
    let mut c = valid_custom();
    c.asm = ".kernel x\n.threads 32\n    bra 99\n    exit\n".into();
    c.params.clear();
    expect_invalid(c, "out of range");

    // Register beyond the declared count is caught by the simulator's
    // structural checks; register beyond the file is an asm error.
    let mut c = valid_custom();
    c.asm = ".kernel x\n.threads 32\n    mov.b32 r500, r0\n    exit\n".into();
    c.params.clear();
    expect_invalid(c, "register");

    // Parameter load past the declared block.
    let mut c = valid_custom();
    c.asm = ".kernel x\n.threads 32\n.param 4\n    ld.param.b32 r0, c[0x8]\n    exit\n".into();
    expect_invalid(c, "param");

    // Launch/threads mismatch.
    let mut c = valid_custom();
    c.launch = LaunchConfig::new_1d(1, 64);
    expect_invalid(c, ".threads 32");

    // Missing parameter words for the declared block.
    let mut c = valid_custom();
    c.params.clear();
    expect_invalid(c, "parameter block");

    // Unknown region named by a parameter.
    let mut c = valid_custom();
    c.params = vec![ParamValue::RegionBase("nope".into())];
    expect_invalid(c, "unknown region");

    // Duplicate region names.
    let mut c = valid_custom();
    c.memory.push(c.memory[0].clone());
    expect_invalid(c, "duplicate");

    // Region length not a word multiple.
    let mut c = valid_custom();
    c.memory[0].len = 127;
    expect_invalid(c, "multiple of 4");

    // Oversized memory image.
    let mut c = valid_custom();
    c.memory[0].len = MAX_CUSTOM_MEMORY_BYTES + 4;
    expect_invalid(c, "limit");

    // Oversized readback.
    let mut c = valid_custom();
    c.memory[0].len = MAX_CUSTOM_READBACK_BYTES + CUSTOM_REGION_ALIGN;
    c.memory[0].readback = true;
    expect_invalid(c, "readback");

    // Words initializer longer than the region.
    let mut c = valid_custom();
    c.memory[0].init = MemInit::Words(vec![0; 33]);
    c.memory[0].len = 128;
    expect_invalid(c, "initializer");

    // Empty and absurd launches.
    let mut c = valid_custom();
    c.launch = LaunchConfig::new_2d((0, 1), (32, 1));
    expect_invalid(c, "empty launch");
    let mut c = valid_custom();
    c.launch = LaunchConfig::new_2d((1 << 16, 1 << 16), (32, 1));
    expect_invalid(c, "block");

    // Oversized assembly text.
    let mut c = valid_custom();
    c.asm = "// pad\n".repeat(40_000);
    expect_invalid(c, "byte limit");
}

#[test]
fn verify_on_a_custom_kernel_is_refused() {
    let analyzer = analyzer();
    let mut request = AnalysisRequest::new(KernelSpec::Custom(Box::new(valid_custom())), "gtx285");
    request.options.verify = true;
    match analyzer.analyze(&request) {
        Err(ServiceError::InvalidRequest(msg)) => {
            assert!(msg.contains("no"), "{msg}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
}

#[test]
fn wire_level_custom_garbage_is_a_wire_error() {
    for (body, want) in [
        (
            // A custom case with a non-numeric launch dimension.
            r#"{"kernel": {"case": "custom", "asm": "exit",
                "launch": {"grid": true, "block": 32}}, "machine": "x"}"#,
            "grid",
        ),
        (
            // Unknown initializer kind.
            r#"{"kernel": {"case": "custom", "asm": "exit",
                "launch": {"grid": 1, "block": 32},
                "memory": [{"name": "m", "len": 64, "init": {"kind": "entropy"}}]},
                "machine": "x"}"#,
            "entropy",
        ),
        (
            // 3-D launches do not exist here.
            r#"{"kernel": {"case": "custom", "asm": "exit",
                "launch": {"grid": [1, 1, 1], "block": 32}}, "machine": "x"}"#,
            "dimensions",
        ),
        (
            // A parameter that is neither a word nor a region reference.
            r#"{"kernel": {"case": "custom", "asm": "exit",
                "launch": {"grid": 1, "block": 32}, "params": ["zap"]},
                "machine": "x"}"#,
            "parameter",
        ),
    ] {
        match AnalysisRequest::from_json(body) {
            Err(ServiceError::Wire(msg)) => {
                assert!(msg.contains(want), "`{msg}` does not mention `{want}`");
            }
            other => panic!("expected Wire error mentioning `{want}`, got {other:?}"),
        }
    }
}

/// The regression that motivated `TraceMode::Auto` as the custom-kernel
/// default: a grid whose blocks execute *different* instruction streams.
/// Block 0 takes a guarded early exit after two instructions; blocks
/// 1..4 run a 16-deep f32 chain. The old hardcoded `Homogeneous` mode
/// replayed block 0's short trace for every cluster — a silently wrong
/// (under-estimated) answer. Auto must detect the shape divergence and
/// answer exactly as a forced per-block replay does. (Block 0 is the
/// *short* block on purpose: were it the longest, it would dominate the
/// critical path either way and the two modes would coincide.)
#[test]
fn auto_mode_replays_divergent_grids_per_block() {
    let analyzer = analyzer();
    let mut asm = String::from(
        ".kernel divergent\n.reg 2\n.threads 32\n\
         \x20   s2r r0, %ctaid.x\n\
         \x20   setp.eq.s32 p0, r0, 0\n\
         \x20   @p0 exit\n",
    );
    for _ in 0..16 {
        asm.push_str("    mad.f32 r1, r1, r1, r1\n");
    }
    asm.push_str("    exit\n");
    let kernel = CustomKernel {
        asm,
        launch: LaunchConfig::new_1d(4, 32),
        params: vec![],
        memory: vec![],
    };
    let report = |mode: Option<gpa_service::RequestTraceMode>| {
        let mut request =
            AnalysisRequest::new(KernelSpec::Custom(Box::new(kernel.clone())), "gtx285");
        request.options.mode = mode;
        analyzer
            .analyze(&request)
            .expect("divergent kernel analyzes")
    };
    // No explicit mode: custom kernels default to Auto.
    let auto = report(None);
    let per_block = report(Some(gpa_service::RequestTraceMode::PerBlock));
    let homogeneous = report(Some(gpa_service::RequestTraceMode::Homogeneous));
    assert_eq!(
        auto.to_json(),
        per_block.to_json(),
        "auto must fall back to per-block replay on a shape-divergent grid"
    );
    assert_ne!(
        auto.measured_cycles, homogeneous.measured_cycles,
        "the divergent grid must actually distinguish per-block from \
         homogeneous replay, or this test proves nothing"
    );
}

/// The flip side: on a shape-uniform multi-block grid, Auto must take
/// the cheap homogeneous path and answer byte-identically to forcing
/// `Homogeneous` (the pre-Auto behavior for well-formed kernels).
#[test]
fn auto_mode_matches_homogeneous_on_uniform_grids() {
    let analyzer = analyzer();
    let mut kernel = valid_custom();
    kernel.launch = LaunchConfig::new_1d(4, 32);
    kernel.memory[0].len = 4 * 32 * 4;
    let report = |mode: Option<gpa_service::RequestTraceMode>| {
        let mut request =
            AnalysisRequest::new(KernelSpec::Custom(Box::new(kernel.clone())), "gtx285");
        request.options.mode = mode;
        analyzer.analyze(&request).expect("uniform kernel analyzes")
    };
    let auto = report(None);
    let homogeneous = report(Some(gpa_service::RequestTraceMode::Homogeneous));
    assert_eq!(
        auto.to_json(),
        homogeneous.to_json(),
        "auto must be byte-identical to homogeneous replay on a uniform grid"
    );
}
