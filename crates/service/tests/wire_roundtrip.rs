//! Property: requests and reports survive serialize → parse → serialize
//! **bit-exactly** — struct equality after one cycle, string equality
//! between the first and second serializations (riding `gpa-json`'s
//! shortest-round-trip `f64` formatting).

use gpa_apps::spmv::Format;
use gpa_apps::TraceMode;
use gpa_core::{Analysis, Cause, Component, ComponentTimes, StageAnalysis, WhatIf};
use gpa_service::{
    AnalysisOptions, AnalysisReport, AnalysisRequest, CustomKernel, Effort, KernelSpec, MemInit,
    MemRegionSpec, ParamValue, RegionReadback, RegionTraffic, WhatIfSpec,
};
use gpa_sim::{LaunchConfig, Threads};
use proptest::prelude::*;
use proptest::{collection, option};

/// Any finite f64, including negatives, subnormals, and signed zeros.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            // Remap NaN/inf bit patterns onto a finite value that still
            // exercises plenty of mantissa digits.
            (bits >> 11) as f64 / 3.0
        }
    })
}

/// Short strings with escapes and non-ASCII in the mix.
fn string() -> impl Strategy<Value = String> {
    collection::vec(
        prop_oneof![
            (32u8..127).prop_map(|b| b as char),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('λ'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn component() -> impl Strategy<Value = Component> {
    prop_oneof![
        Just(Component::InstructionPipeline),
        Just(Component::SharedMemory),
        Just(Component::GlobalMemory),
    ]
}

fn cause() -> impl Strategy<Value = Cause> {
    prop_oneof![
        finite_f64().prop_map(|density| Cause::LowComputationalDensity { density }),
        finite_f64().prop_map(|fraction| Cause::ExpensiveInstructions { fraction }),
        (1u32..64).prop_map(|warps| Cause::InsufficientWarpsForPipeline { warps }),
        finite_f64().prop_map(|factor| Cause::BankConflicts { factor }),
        (1u32..64).prop_map(|warps| Cause::InsufficientWarpsForSharedMemory { warps }),
        finite_f64().prop_map(|efficiency| Cause::UncoalescedAccesses { efficiency }),
        finite_f64()
            .prop_map(|reduction_at_16b| Cause::LargeTransactionGranularity { reduction_at_16b }),
        finite_f64().prop_map(|bandwidth_fraction| Cause::InsufficientMemoryParallelism {
            bandwidth_fraction
        }),
    ]
}

fn times() -> impl Strategy<Value = ComponentTimes> {
    (finite_f64(), finite_f64(), finite_f64(), finite_f64()).prop_map(
        |(instr, smem, gmem, atomic)| ComponentTimes {
            instr,
            smem,
            gmem,
            atomic,
        },
    )
}

fn stage() -> impl Strategy<Value = StageAnalysis> {
    (
        (0usize..64, times(), component()),
        (1u32..33, 1u32..33),
        (finite_f64(), finite_f64(), finite_f64()),
        collection::vec(cause(), 0..4),
    )
        .prop_map(
            |(
                (stage, times, bottleneck),
                (warps_instr, warps_smem),
                (instr_throughput, smem_bandwidth, gmem_bandwidth),
                causes,
            )| StageAnalysis {
                stage,
                times,
                bottleneck,
                warps_instr,
                warps_smem,
                instr_throughput,
                smem_bandwidth,
                gmem_bandwidth,
                causes,
            },
        )
}

fn analysis() -> impl Strategy<Value = Analysis> {
    (
        (string(), string(), 1u32..9, 1u32..33),
        collection::vec(stage(), 0..5),
        (times(), times()),
        (finite_f64(), finite_f64(), finite_f64()),
        (component(), component()),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(
            |(
                (kernel_name, machine_name, resident_blocks, resident_warps),
                stages,
                (totals, serialized_attribution),
                (serialized_seconds, overlapped_seconds, predicted_seconds),
                (bottleneck, next_bottleneck),
                (
                    computational_density,
                    bank_conflict_factor,
                    coalescing_efficiency,
                    atomic_contention_factor,
                ),
            )| Analysis {
                kernel_name,
                machine_name,
                resident_blocks,
                resident_warps,
                stages,
                totals,
                serialized_seconds,
                overlapped_seconds,
                predicted_seconds,
                serialized_attribution,
                bottleneck,
                next_bottleneck,
                computational_density,
                bank_conflict_factor,
                coalescing_efficiency,
                atomic_contention_factor,
            },
        )
}

fn what_if() -> impl Strategy<Value = WhatIf> {
    (
        string(),
        string(),
        finite_f64(),
        finite_f64(),
        finite_f64(),
        component(),
    )
        .prop_map(
            |(name, description, baseline_seconds, predicted_seconds, speedup, new_bottleneck)| {
                WhatIf {
                    name,
                    description,
                    baseline_seconds,
                    predicted_seconds,
                    speedup,
                    new_bottleneck,
                }
            },
        )
}

fn region() -> impl Strategy<Value = RegionTraffic> {
    (string(), 0u64..(1 << 53), 0u64..(1 << 53), 0u64..(1 << 53)).prop_map(
        |(name, transactions, bytes, requested_bytes)| RegionTraffic {
            name,
            transactions,
            bytes,
            requested_bytes,
        },
    )
}

fn readback() -> impl Strategy<Value = RegionReadback> {
    (string(), collection::vec(any::<u32>(), 0..8))
        .prop_map(|(name, words)| RegionReadback { name, words })
}

fn report() -> impl Strategy<Value = AnalysisReport> {
    (
        (string(), string()),
        analysis(),
        (finite_f64(), finite_f64(), 0u64..(1 << 53)),
        collection::vec(region(), 0..4),
        collection::vec(what_if(), 0..3),
        (collection::vec(readback(), 0..3), option::of(any::<bool>())),
    )
        .prop_map(
            |(
                (kernel, machine),
                analysis,
                (measured_seconds, measured_cycles, flops),
                regions,
                what_ifs,
                (outputs, verified),
            )| AnalysisReport {
                kernel,
                machine,
                analysis,
                measured_seconds,
                measured_cycles,
                flops,
                regions,
                what_ifs,
                outputs,
                verified,
            },
        )
}

fn mem_init() -> impl Strategy<Value = MemInit> {
    prop_oneof![
        Just(MemInit::Zero),
        any::<u32>().prop_map(MemInit::Fill),
        collection::vec(any::<u32>(), 0..6).prop_map(MemInit::Words),
        any::<u32>().prop_map(|seed| MemInit::Pattern { seed }),
    ]
}

fn mem_region() -> impl Strategy<Value = MemRegionSpec> {
    (
        string(),
        (1u64..64).prop_map(|w| w * 4),
        mem_init(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(name, len, init, texture, readback)| MemRegionSpec {
            name,
            len,
            init,
            texture,
            readback,
        })
}

fn param() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        any::<u32>().prop_map(ParamValue::Word),
        string().prop_map(ParamValue::RegionBase),
    ]
}

fn custom_kernel() -> impl Strategy<Value = CustomKernel> {
    (
        string(),
        (1u32..9, 1u32..3, 1u32..129, 1u32..3),
        collection::vec(param(), 0..4),
        collection::vec(mem_region(), 0..3),
    )
        .prop_map(|(asm, (gx, gy, bx, by), params, memory)| CustomKernel {
            asm,
            launch: LaunchConfig::new_2d((gx, gy), (bx, by)),
            params,
            memory,
        })
}

fn kernel_spec() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (1u32..17, 0u32..3).prop_map(|(m, t)| KernelSpec::Matmul {
            n: m * 64,
            tile: [8u32, 16, 32][t as usize],
        }),
        (1u32..65, any::<bool>()).prop_map(|(nsys, padded)| KernelSpec::Tridiag {
            n: 512,
            nsys,
            padded,
        }),
        (any::<u32>(), 0u32..3, any::<bool>()).prop_map(|(seed, f, texture)| KernelSpec::Spmv {
            l: 4,
            seed,
            format: [Format::Ell, Format::BellIm, Format::BellImIv][f as usize],
            texture,
        }),
        // The wire layer round-trips *any* custom payload, valid or not
        // (validation is the service's job, not the codec's).
        custom_kernel().prop_map(|c| KernelSpec::Custom(Box::new(c))),
    ]
}

fn options() -> impl Strategy<Value = AnalysisOptions> {
    (
        option::of(prop_oneof![
            Just(TraceMode::Homogeneous),
            Just(TraceMode::PerBlock)
        ]),
        prop_oneof![Just(Threads::Auto), (1usize..32).prop_map(Threads::Fixed)],
        option::of(1u64..(1 << 53)),
        any::<bool>(),
        collection::vec(
            prop_oneof![
                Just(WhatIfSpec::NoBankConflicts),
                Just(WhatIfSpec::PerfectCoalescing),
                Just(WhatIfSpec::Granularity16),
                Just(WhatIfSpec::Granularity4),
                (1u32..65).prop_map(WhatIfSpec::MaxBlocks),
                (1u32..9).prop_map(WhatIfSpec::ResourcesScaled),
            ],
            0..4,
        ),
        prop_oneof![Just(Effort::Quick), Just(Effort::Paper)],
    )
        .prop_map(
            |(mode, threads, fuel, verify, what_ifs, calibration)| AnalysisOptions {
                mode,
                threads,
                fuel,
                verify,
                what_ifs,
                calibration,
            },
        )
}

fn request() -> impl Strategy<Value = AnalysisRequest> {
    (kernel_spec(), string(), options()).prop_map(|(kernel, machine, options)| AnalysisRequest {
        kernel,
        machine,
        options,
    })
}

proptest! {
    #[test]
    fn requests_round_trip_bit_exactly(req in request()) {
        let json = req.to_json();
        let back = AnalysisRequest::from_json(&json).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn reports_round_trip_bit_exactly(rep in report()) {
        let json = rep.to_json();
        let back = AnalysisReport::from_json(&json).unwrap();
        prop_assert_eq!(&back, &rep);
        prop_assert_eq!(back.to_json(), json);
    }
}
