//! Workload-zoo wire tests: a golden report per zoo workload (pins the
//! named encoding, the atomic-unit component, and the per-workload
//! bottleneck classes byte for byte), plus the named ≡ custom
//! equivalence property — a `{"case": "named"}` request and a hand-built
//! `{"case": "custom"}` request describing the same kernel, data, and
//! regions analyze to byte-identical reports. Regenerate goldens with
//! `GPA_BLESS=1 cargo test -p gpa-service --test zoo_report`.

use gpa_core::Component;
use gpa_hw::Machine;
use gpa_isa::asm::kernel_to_asm;
use gpa_service::{
    zoo, AnalysisOptions, AnalysisRequest, Analyzer, CustomKernel, KernelSpec, MemInit,
    MemRegionSpec, ParamValue, WhatIfSpec,
};
use gpa_sim::{LaunchConfig, Threads};
use gpa_ubench::MeasureOpts;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/zoo/{name}.json"))
}

fn analyzer() -> Analyzer {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    analyzer
}

/// Golden sizes: small enough to keep the suite fast, large enough for
/// several blocks per workload.
fn golden_n(name: &str) -> u32 {
    match name {
        "naive_transpose" | "shared_transpose" => 64,
        _ => 1024,
    }
}

fn named_request(name: &str, n: u32) -> AnalysisRequest {
    let what_ifs = match name {
        // The atomic workloads carry the advisor estimate the report
        // should recommend: privatizing the contended updates.
        "histogram" | "atomic_hotspot" => vec![WhatIfSpec::PrivatizedAtomics],
        _ => Vec::new(),
    };
    AnalysisRequest::new(
        KernelSpec::Named {
            name: name.to_owned(),
            n,
            seed: 1,
        },
        "gtx285",
    )
    .with_options(AnalysisOptions {
        threads: Threads::sequential(),
        verify: true,
        what_ifs,
        ..AnalysisOptions::default()
    })
}

#[test]
fn zoo_reports_match_golden_files() {
    let analyzer = analyzer();
    let mut times = std::collections::BTreeMap::new();
    for w in zoo::WORKLOADS {
        let n = golden_n(w.name);
        let report = analyzer
            .analyze(&named_request(w.name, n))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(report.verified, Some(true), "{} oracle", w.name);
        // Only workloads doing float arithmetic report flops; the data
        // movers (copies, transposes, histogram, atomics) honestly
        // report zero.
        if matches!(
            w.name,
            "vector_add" | "saxpy" | "reduce_sum" | "dot_product" | "vector_add_divergent"
        ) {
            assert!(report.flops > 0, "{} flops", w.name);
        }
        times.insert(w.name, report.analysis.totals);

        let json = report.to_json();
        let path = golden_path(w.name);
        if std::env::var_os("GPA_BLESS").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &json).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); bless with GPA_BLESS=1",
                path.display()
            )
        });
        assert_eq!(
            json,
            golden,
            "{} report drifted from {}; if intended, regenerate with GPA_BLESS=1",
            w.name,
            path.display()
        );
        let parsed = gpa_service::AnalysisReport::from_json(&golden).unwrap();
        assert_eq!(parsed, report);

        // The zoo exists to exhibit bottleneck classes; pin the ones the
        // workloads are named after.
        let a = &report.analysis;
        match w.name {
            "histogram" | "atomic_hotspot" => {
                assert_eq!(a.bottleneck, Component::AtomicUnit, "{}", w.name);
                assert!(
                    a.atomic_contention_factor > 1.1,
                    "{} contention ×{:.2}",
                    w.name,
                    a.atomic_contention_factor
                );
                let wi = &report.what_ifs[0];
                assert_eq!(wi.name, "privatized-atomics", "{}", w.name);
                assert!(wi.speedup > 1.0, "{} speedup ×{:.2}", w.name, wi.speedup);
            }
            "shared_bank_conflict" => {
                assert_eq!(a.bottleneck, Component::SharedMemory, "{}", w.name);
                assert!(
                    a.bank_conflict_factor > 1.5,
                    "{} conflicts ×{:.2}",
                    w.name,
                    a.bank_conflict_factor
                );
            }
            "naive_transpose" | "random_access" | "strided_copy" => {
                assert_eq!(a.bottleneck, Component::GlobalMemory, "{}", w.name);
                assert!(
                    a.coalescing_efficiency < 0.7,
                    "{} coalescing {:.0}%",
                    w.name,
                    a.coalescing_efficiency * 100.0
                );
            }
            _ => {}
        }
    }
    // Divergence shows up as pure instruction-pipeline overhead: the
    // divergent variant re-executes the split paths per warp while its
    // global traffic stays that of plain vector_add.
    let plain = times["vector_add"];
    let div = times["vector_add_divergent"];
    assert!(
        div.instr > plain.instr * 1.05,
        "divergence penalty: instr {:.3e} vs {:.3e}",
        div.instr,
        plain.instr
    );
    assert_eq!(div.gmem, plain.gmem, "same global traffic");
}

/// Build the `{"case": "custom"}` twin of a zoo workload from public
/// zoo contracts only: the kernel's canonical assembly text, the same
/// launch, the same region order/lengths, and `MemInit::Words` holding
/// the same generated data.
fn custom_twin(name: &str, n: u32, seed: u32) -> CustomKernel {
    let asm = kernel_to_asm(&zoo::kernel(name, n).unwrap());
    let words = |v: Vec<f32>| -> Vec<u32> { v.iter().map(|x| x.to_bits()).collect() };
    let region = |name: &str, len: u64, init: MemInit| MemRegionSpec {
        name: name.to_owned(),
        len,
        init,
        texture: false,
        readback: false,
    };
    let base = |name: &str| ParamValue::RegionBase(name.to_owned());
    let len = u64::from(n) * 4;
    let blocks = n / zoo::THREADS;
    match name {
        "saxpy" => CustomKernel {
            asm,
            launch: LaunchConfig::new_1d(blocks, zoo::THREADS),
            params: vec![base("x"), base("y"), ParamValue::Word(1.5f32.to_bits())],
            memory: vec![
                region(
                    "x",
                    len,
                    MemInit::Words(words(zoo::data_f32(seed, n as usize))),
                ),
                region(
                    "y",
                    len,
                    MemInit::Words(words(zoo::data_f32(seed.wrapping_add(1), n as usize))),
                ),
            ],
        },
        "histogram" => {
            let data: Vec<u32> = zoo::data_u32(seed, n as usize)
                .into_iter()
                .map(|v| v & (zoo::HISTOGRAM_HOT_BINS - 1))
                .collect();
            CustomKernel {
                asm,
                launch: LaunchConfig::new_1d(blocks, zoo::THREADS),
                params: vec![base("in"), base("out")],
                memory: vec![
                    region("in", len, MemInit::Words(data)),
                    region(
                        "out",
                        u64::from(blocks * zoo::HISTOGRAM_BINS) * 4,
                        MemInit::Zero,
                    ),
                ],
            }
        }
        "shared_transpose" => {
            let elems = (n * n) as usize;
            let tiles = n / 16;
            CustomKernel {
                asm,
                launch: LaunchConfig::new_1d(tiles * tiles, zoo::THREADS),
                params: vec![base("in"), base("out")],
                memory: vec![
                    region(
                        "in",
                        elems as u64 * 4,
                        MemInit::Words(words(zoo::data_f32(seed, elems))),
                    ),
                    region("out", elems as u64 * 4, MemInit::Zero),
                ],
            }
        }
        other => panic!("no custom twin defined for `{other}`"),
    }
}

/// The equivalence property behind the zoo's wire design: a named
/// request and its hand-built custom twin take different code paths
/// (registry constructor vs asm parsing + declarative memory image) but
/// must produce byte-identical report JSON — same region bases (both
/// allocate in declaration order at 256-byte alignment), same dynamic
/// flop fallback, same trace-mode default.
#[test]
fn named_and_custom_twin_reports_are_byte_identical() {
    let analyzer = analyzer();
    for (name, n, seed) in [
        ("saxpy", 1024, 7),
        ("histogram", 1024, 7),
        ("shared_transpose", 64, 7),
    ] {
        let opts = AnalysisOptions {
            threads: Threads::sequential(),
            ..AnalysisOptions::default()
        };
        let named = AnalysisRequest::new(
            KernelSpec::Named {
                name: name.to_owned(),
                n,
                seed,
            },
            "gtx285",
        )
        .with_options(opts.clone());
        let custom = AnalysisRequest::new(
            KernelSpec::Custom(Box::new(custom_twin(name, n, seed))),
            "gtx285",
        )
        .with_options(opts);
        let named_json = analyzer.analyze(&named).unwrap().to_json();
        let custom_json = analyzer.analyze(&custom).unwrap().to_json();
        assert_eq!(named_json, custom_json, "{name} named vs custom twin");
    }
}

/// `n`/`seed` are optional in the named wire encoding; omitting them
/// resolves to the workload's default size and seed 1.
#[test]
fn named_wire_defaults_fill_in() {
    let req = AnalysisRequest::from_json(
        r#"{"kernel": {"case": "named", "name": "saxpy"}, "machine": "gtx285"}"#,
    )
    .unwrap();
    assert_eq!(
        req.kernel,
        KernelSpec::Named {
            name: "saxpy".into(),
            n: 4096,
            seed: 1
        }
    );
    // And the canonical encoding round-trips through the wire.
    let back = AnalysisRequest::from_json(&req.to_json()).unwrap();
    assert_eq!(back, req);
}

#[test]
fn named_validation_errors_surface() {
    let analyzer = analyzer();
    for (name, n) in [
        ("warp_drive", 256),
        ("vector_add", 100),
        ("naive_transpose", 96),
    ] {
        let req = AnalysisRequest::new(
            KernelSpec::Named {
                name: name.to_owned(),
                n,
                seed: 1,
            },
            "gtx285",
        );
        let err = analyzer.analyze(&req).unwrap_err();
        assert!(
            matches!(err, gpa_service::ServiceError::InvalidRequest(_)),
            "{name}: {err}"
        );
    }
}
