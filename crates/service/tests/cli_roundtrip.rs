//! Acceptance: request JSON piped through the `gpa-analyze` binary
//! round-trips to the same report as the in-process API, and batch mode
//! degrades per-request failures to `{"error": ...}` elements.

use gpa_hw::Machine;
use gpa_json::Value;
use gpa_service::{AnalysisReport, AnalysisRequest, Analyzer, KernelSpec};
use gpa_ubench::MeasureOpts;
use std::io::Write;
use std::path::Path;
use std::process::{Command, Stdio};

fn sample_path() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("data/sample_request.json")
        .to_string_lossy()
        .into_owned()
}

/// A per-process cache directory, so the comparison against a freshly
/// calibrated in-process `Analyzer` can never be perturbed by whatever
/// the developer's shared `results/` directory holds (while still
/// exercising the binary's cache path).
fn cache_dir_arg() -> String {
    let dir = std::env::temp_dir().join(format!("gpa-cli-cache-{}", std::process::id()));
    dir.to_string_lossy().into_owned()
}

fn in_process(reqs: &[AnalysisRequest]) -> Vec<AnalysisReport> {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    reqs.iter()
        .map(|r| analyzer.analyze(r).expect("request analyzes"))
        .collect()
}

#[test]
fn checked_in_sample_round_trips_through_the_binary() {
    let sample = sample_path();
    let out = Command::new(env!("CARGO_BIN_EXE_gpa-analyze"))
        .args(["--cache-dir", &cache_dir_arg()])
        .arg(&sample)
        .output()
        .expect("spawn gpa-analyze");
    assert!(
        out.status.success(),
        "gpa-analyze failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let cli_report = AnalysisReport::from_json(&stdout).expect("valid report JSON");

    let req = AnalysisRequest::from_json(&std::fs::read_to_string(&sample).unwrap())
        .expect("sample parses");
    let [expected]: [AnalysisReport; 1] = in_process(&[req]).try_into().unwrap();
    assert_eq!(cli_report, expected, "CLI and in-process reports diverge");
    // Bit-exactness across the pipe: re-serializing the parsed report
    // reproduces the binary's bytes.
    assert_eq!(cli_report.to_json(), stdout);
}

#[test]
fn batch_mode_reads_stdin_and_isolates_failures() {
    let good = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
    let batch = Value::Array(vec![
        good.to_value(),
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "no-such-gpu").to_value(),
    ]);

    let mut child = Command::new(env!("CARGO_BIN_EXE_gpa-analyze"))
        .args(["--cache-dir", &cache_dir_arg()])
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gpa-analyze");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(batch.to_string_pretty().as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    // One request failed → non-zero exit, but the healthy answer is there.
    assert!(!out.status.success(), "expected failure exit for the batch");

    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = Value::parse(&stdout).expect("valid JSON array");
    let items = doc.as_array().expect("array output");
    assert_eq!(items.len(), 2);
    let cli_report = AnalysisReport::from_value(&items[0]).expect("first element is a report");
    let [expected]: [AnalysisReport; 1] = in_process(&[good]).try_into().unwrap();
    assert_eq!(cli_report, expected);
    let err = items[1].get("error").unwrap().as_str().unwrap();
    assert!(err.contains("no calibrated machine"), "{err}");
}
