//! Acceptance for the content-addressed report cache: hits are
//! **byte-identical** to the simulator's answers (property-tested over
//! random requests, single and batch), the canonical key ignores
//! exactly the fields the report provably does not depend on
//! (`threads`, `calibration`) and nothing else, recalibration
//! invalidates stale entries, verify/readback requests bypass the cache
//! entirely, and the disk tier shares answers across processes.

use gpa_apps::TraceMode;
use gpa_hw::Machine;
use gpa_service::{
    AnalysisOptions, AnalysisRequest, Analyzer, Effort, KernelSpec, ReportCacheConfig, WhatIfSpec,
};
use gpa_sim::Threads;
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Instant;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

fn curves() -> &'static ThroughputCurves {
    static C: OnceLock<ThroughputCurves> = OnceLock::new();
    C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()))
}

/// An analyzer over the shared quick-effort curves, cache **off**: the
/// byte-identity oracle every cached answer is compared against.
fn fresh_analyzer() -> Analyzer {
    let mut a = Analyzer::new();
    a.install(machine().clone(), curves().clone()).unwrap();
    a
}

/// The same analyzer with an in-memory report cache enabled.
fn cached_analyzer() -> Analyzer {
    let mut a = fresh_analyzer();
    a.enable_report_cache(ReportCacheConfig::default());
    a
}

fn matmul(n: u32, tile: u32) -> AnalysisRequest {
    AnalysisRequest::new(KernelSpec::Matmul { n, tile }, "gtx285")
}

/// A private scratch directory for disk-tier tests.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("gpa-report-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn repeated_requests_hit_and_answers_are_byte_identical() {
    let analyzer = cached_analyzer();
    let req = matmul(64, 16);

    let first = analyzer.analyze(&req).expect("miss analyzes").to_json();
    let second = analyzer.analyze(&req).expect("hit answers").to_json();
    assert_eq!(first, second, "hit must reproduce the miss byte-for-byte");

    // And both match an analyzer that never had a cache.
    let oracle = fresh_analyzer().analyze(&req).unwrap().to_json();
    assert_eq!(first, oracle);

    let stats = analyzer.report_cache_stats().expect("cache enabled");
    assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
    assert_eq!(stats.entries, 1);
    assert!(stats.bytes > 0);
}

#[test]
fn threads_and_calibration_normalize_into_one_entry() {
    let analyzer = cached_analyzer();
    let base = matmul(64, 16);
    let baseline = analyzer.analyze(&base).unwrap().to_json();

    // Reports are bit-identical at any worker count, and an explicitly
    // calibrated analyzer ignores the on-demand calibration effort — so
    // neither field may fragment the key.
    for options in [
        AnalysisOptions {
            threads: Threads::Fixed(2),
            ..AnalysisOptions::default()
        },
        AnalysisOptions {
            threads: Threads::Fixed(7),
            calibration: Effort::Paper,
            ..AnalysisOptions::default()
        },
    ] {
        let req = base.clone().with_options(options);
        assert_eq!(analyzer.analyze(&req).unwrap().to_json(), baseline);
    }

    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (2, 1), "{stats:?}");
    assert_eq!(stats.entries, 1, "normalized variants share one entry");
}

#[test]
fn every_other_request_field_is_part_of_the_key() {
    let mut analyzer = cached_analyzer();
    analyzer
        .install(Machine::geforce_8800gt(), {
            let m = Machine::geforce_8800gt();
            ThroughputCurves::measure_with(&m, MeasureOpts::quick())
        })
        .unwrap();

    let variants = [
        matmul(64, 16),
        matmul(64, 32),  // different kernel
        matmul(128, 16), // different problem size
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "8800gt"),
        matmul(64, 16).with_options(AnalysisOptions {
            mode: Some(TraceMode::PerBlock),
            ..AnalysisOptions::default()
        }),
        matmul(64, 16).with_options(AnalysisOptions {
            fuel: Some(1 << 40),
            ..AnalysisOptions::default()
        }),
        matmul(64, 16).with_options(AnalysisOptions {
            what_ifs: vec![WhatIfSpec::PerfectCoalescing],
            ..AnalysisOptions::default()
        }),
    ];
    for req in &variants {
        analyzer.analyze(req).expect("variant analyzes");
    }

    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!(stats.hits, 0, "{stats:?}");
    assert_eq!(stats.misses, variants.len() as u64);
    assert_eq!(stats.entries, variants.len());
}

#[test]
fn recalibration_invalidates_stale_answers() {
    let mut analyzer = cached_analyzer();
    let req = matmul(64, 16);
    let stale = analyzer.analyze(&req).unwrap().to_json();

    // Recalibrate the same machine with visibly different curves: every
    // instruction class twice as fast.
    let mut faster = curves().clone();
    for series in faster.instr.iter_mut() {
        for v in series.iter_mut() {
            *v *= 2.0;
        }
    }
    analyzer.install(machine().clone(), faster.clone()).unwrap();

    let recalibrated = analyzer.analyze(&req).unwrap().to_json();
    assert_ne!(
        recalibrated, stale,
        "doubled throughput must change the report"
    );

    // The answer matches a never-cached analyzer over the same curves —
    // i.e. the old entry was not served.
    let mut oracle = Analyzer::new();
    oracle.install(machine().clone(), faster).unwrap();
    assert_eq!(recalibrated, oracle.analyze(&req).unwrap().to_json());

    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (0, 2), "{stats:?}");
}

#[test]
fn verify_requests_bypass_the_cache() {
    let analyzer = cached_analyzer();
    let req = matmul(64, 16).with_options(AnalysisOptions {
        verify: true,
        ..AnalysisOptions::default()
    });
    for _ in 0..2 {
        let report = analyzer.analyze(&req).unwrap();
        assert_eq!(report.verified, Some(true));
    }
    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}

#[test]
fn readback_kernels_bypass_the_cache() {
    let sample =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("data/sample_custom_kernel.json");
    let text = std::fs::read_to_string(sample).expect("checked-in custom sample");
    let req = AnalysisRequest::from_json(&text).expect("sample parses");

    let analyzer = cached_analyzer();
    let first = analyzer.analyze(&req).unwrap();
    assert!(
        !first.outputs.is_empty(),
        "sample must exercise the readback path"
    );
    let second = analyzer.analyze(&req).unwrap();
    assert_eq!(first.to_json(), second.to_json());

    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}

#[test]
fn disk_tier_shares_answers_across_analyzers() {
    let dir = TempDir::new("share");
    let config = || ReportCacheConfig {
        disk_dir: Some(dir.0.clone()),
        ..ReportCacheConfig::default()
    };
    let req = matmul(64, 16);

    let mut writer = fresh_analyzer();
    writer.enable_report_cache(config());
    let written = writer.analyze(&req).unwrap().to_json();

    // A second analyzer — a stand-in for a restarted process — finds
    // the report on disk without ever simulating.
    let mut reader = fresh_analyzer();
    reader.enable_report_cache(config());
    let read = reader.analyze(&req).unwrap().to_json();
    assert_eq!(read, written);

    let stats = reader.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");
}

/// Named zoo workloads are cacheable like any other spec: repeats hit
/// with byte-identical answers, and the key covers the name AND the
/// scale knobs — same name at a different `n` or `seed` must miss, and
/// a named request never collides with its custom twin (different
/// canonical encodings, even though their reports are byte-identical).
#[test]
fn named_workloads_cache_by_name_and_knobs() {
    let analyzer = cached_analyzer();
    let named = |name: &str, n: u32, seed: u32| {
        AnalysisRequest::new(
            KernelSpec::Named {
                name: name.to_owned(),
                n,
                seed,
            },
            "gtx285",
        )
    };

    let first = analyzer
        .analyze(&named("histogram", 1024, 1))
        .unwrap()
        .to_json();
    let hit = analyzer
        .analyze(&named("histogram", 1024, 1))
        .unwrap()
        .to_json();
    assert_eq!(first, hit, "hit must reproduce the miss byte-for-byte");
    assert_eq!(
        first,
        fresh_analyzer()
            .analyze(&named("histogram", 1024, 1))
            .unwrap()
            .to_json()
    );
    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");

    for variant in [
        named("histogram", 2048, 1), // different n
        named("histogram", 1024, 2), // different seed
        named("saxpy", 1024, 1),     // different workload
    ] {
        analyzer.analyze(&variant).unwrap();
    }
    let stats = analyzer.report_cache_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (1, 4), "{stats:?}");
    assert_eq!(stats.entries, 4);
}

#[test]
fn hits_skip_the_simulator() {
    // A lenient in-process floor under the Criterion bench's ≥100×
    // claim: a problem size big enough that simulation visibly costs
    // something, and a 10× margin so debug builds and noisy CI pass.
    let analyzer = cached_analyzer();
    let req = matmul(256, 16);

    let start = Instant::now();
    let missed = analyzer.analyze(&req).unwrap().to_json();
    let miss_time = start.elapsed();

    let start = Instant::now();
    let hit = analyzer.analyze(&req).unwrap().to_json();
    let hit_time = start.elapsed();

    assert_eq!(missed, hit);
    assert_eq!(analyzer.report_cache_stats().unwrap().hits, 1);
    assert!(
        hit_time * 10 < miss_time,
        "hit ({hit_time:?}) not clearly faster than miss ({miss_time:?})"
    );
}

/// Valid matmul shapes and option mixes for the property below. `n` is
/// kept at 64 so the 64-case run stays fast; tile and options span the
/// full cacheable space.
fn any_request() -> impl Strategy<Value = AnalysisRequest> {
    let tile = prop_oneof![Just(8u32), Just(16), Just(32)];
    let mode = proptest::option::of(prop_oneof![
        Just(TraceMode::Homogeneous),
        Just(TraceMode::PerBlock)
    ]);
    let threads = prop_oneof![Just(Threads::Auto), (1usize..4).prop_map(Threads::Fixed)];
    let what_ifs = proptest::collection::vec(
        prop_oneof![
            Just(WhatIfSpec::NoBankConflicts),
            Just(WhatIfSpec::PerfectCoalescing),
            Just(WhatIfSpec::Granularity16),
        ],
        0..3,
    );
    let fuel = proptest::option::of(Just(1u64 << 40));
    (tile, mode, threads, what_ifs, fuel).prop_map(|(tile, mode, threads, what_ifs, fuel)| {
        matmul(64, tile).with_options(AnalysisOptions {
            mode,
            threads,
            fuel,
            what_ifs,
            ..AnalysisOptions::default()
        })
    })
}

proptest! {
    /// The cache is invisible: for any request, a cached analyzer's
    /// first and second answers and a never-cached analyzer's answer
    /// are all byte-identical — singly and through `analyze_batch`
    /// with duplicates in the same batch.
    #[test]
    fn cached_answers_are_byte_identical_to_fresh_ones(req in any_request()) {
        static CACHED: OnceLock<Analyzer> = OnceLock::new();
        let cached = CACHED.get_or_init(cached_analyzer);
        let fresh = fresh_analyzer();

        let oracle = fresh.analyze(&req).unwrap().to_json();
        let miss_or_hit = cached.analyze(&req).unwrap().to_json();
        let hit = cached.analyze(&req).unwrap().to_json();
        prop_assert_eq!(&miss_or_hit, &oracle);
        prop_assert_eq!(&hit, &oracle);

        // Batch with the same request twice: both elements answered,
        // both byte-identical to the oracle.
        let batch = cached.analyze_batch(&[req.clone(), req.clone()]);
        for answer in batch {
            prop_assert_eq!(answer.unwrap().to_json(), oracle.clone());
        }
    }
}
