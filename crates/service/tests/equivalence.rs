//! Acceptance: the redesigned service answers are *identical* to the
//! pre-redesign `run_case` driver path — same curves in, same `Analysis`
//! and timing out, bit for bit — and `analyze_batch` is identical to
//! sequential `analyze` calls.

use gpa_apps::{matmul, spmv, tridiag};
use gpa_core::Model;
use gpa_hw::Machine;
use gpa_service::{AnalysisRequest, Analyzer, KernelSpec, ServiceError};
use gpa_sim::Threads;
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

fn curves() -> &'static ThroughputCurves {
    static C: OnceLock<ThroughputCurves> = OnceLock::new();
    C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()))
}

fn analyzer() -> Analyzer {
    let mut a = Analyzer::new();
    a.install(machine().clone(), curves().clone()).unwrap();
    a
}

fn case_requests() -> Vec<AnalysisRequest> {
    vec![
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285"),
        AnalysisRequest::new(
            KernelSpec::Tridiag {
                n: 512,
                nsys: 4,
                padded: false,
            },
            "gtx285",
        ),
        AnalysisRequest::new(
            KernelSpec::Spmv {
                l: 4,
                seed: 42,
                format: spmv::Format::BellIm,
                texture: false,
            },
            "gtx285",
        ),
    ]
}

#[test]
fn batch_reports_match_the_run_case_path_bitwise() {
    let analyzer = analyzer();
    let reports: Vec<_> = analyzer
        .analyze_batch(&case_requests())
        .into_iter()
        .map(|r| r.expect("case study analyzes"))
        .collect();

    // The pre-redesign path: per-app drivers over run_case, one shared
    // model built from the same measured curves.
    let mut model = Model::new(machine(), curves().clone());
    let direct = [
        matmul::run(machine(), &mut model, 64, 16, false).unwrap(),
        tridiag::run(machine(), &mut model, 512, 4, false, false).unwrap(),
        spmv::run(
            machine(),
            &mut model,
            &spmv::qcd_like(4, 42),
            spmv::Format::BellIm,
            false,
            false,
        )
        .unwrap(),
    ];

    for (report, case) in reports.iter().zip(&direct) {
        assert_eq!(report.analysis, case.analysis, "{}", report.kernel);
        assert_eq!(
            report.measured_seconds.to_bits(),
            case.timing.seconds.to_bits(),
            "{}: measured time diverges",
            report.kernel
        );
        assert_eq!(
            report.measured_cycles.to_bits(),
            case.timing.cycles.to_bits(),
            "{}: measured cycles diverge",
            report.kernel
        );
    }
}

#[test]
fn batch_is_identical_to_sequential_analyze() {
    let analyzer = analyzer();
    let reqs = case_requests();
    let batched = analyzer.analyze_batch_with(&reqs, Threads::Fixed(3));
    let sequential: Vec<_> = reqs.iter().map(|r| analyzer.analyze(r)).collect();
    assert_eq!(batched, sequential);
}

#[test]
fn case_study_reports_are_bit_identical_for_every_thread_count() {
    // The three case studies end-to-end (functional pass, parallel
    // timing replay, model analysis): the worker-thread knob must never
    // leak into the answer. PerBlock mode exercises the sharded cluster
    // replay; the default mode rides the uniform fast path.
    use gpa_service::RequestTraceMode;
    let analyzer = analyzer();
    for base in case_requests() {
        for mode in [None, Some(RequestTraceMode::PerBlock)] {
            let mut reference = None;
            for threads in [
                Threads::Fixed(1),
                Threads::Fixed(2),
                Threads::Fixed(5),
                Threads::Auto,
            ] {
                let mut req = base.clone();
                req.options.mode = mode;
                req.options.threads = threads;
                let report = analyzer.analyze(&req).expect("case study analyzes");
                match &reference {
                    None => reference = Some(report),
                    Some(r) => {
                        assert_eq!(
                            report.measured_cycles.to_bits(),
                            r.measured_cycles.to_bits(),
                            "{}: cycles diverge at {threads:?} (mode {mode:?})",
                            report.kernel
                        );
                        assert_eq!(&report, r, "{threads:?} (mode {mode:?})");
                    }
                }
            }
        }
    }
}

#[test]
fn batch_surfaces_per_request_failures_in_order() {
    let analyzer = analyzer();
    let reqs = vec![
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285"),
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 7 }, "gtx285"),
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "titan"),
    ];
    let results = analyzer.analyze_batch(&reqs);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(ServiceError::InvalidRequest(_))));
    assert!(matches!(results[2], Err(ServiceError::UnknownMachine(_))));
}

#[test]
fn verification_and_what_ifs_ride_along() {
    use gpa_service::{AnalysisOptions, WhatIfSpec};
    let analyzer = analyzer();
    let mut req = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
    req.options = AnalysisOptions {
        verify: true,
        what_ifs: vec![WhatIfSpec::MaxBlocks(16), WhatIfSpec::PerfectCoalescing],
        ..AnalysisOptions::default()
    };
    let report = analyzer.analyze(&req).unwrap();
    assert_eq!(report.verified, Some(true));
    assert_eq!(report.what_ifs.len(), 2);
    assert_eq!(report.what_ifs[0].name, "max-blocks");
    assert!(report.flops > 0);
    assert!(report.measured_gflops() > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("bottleneck"), "{rendered}");
    assert!(rendered.contains("what-if"), "{rendered}");
}
