//! Golden-file tests: the wire representations of one fixed matmul
//! report and one fixed custom-kernel report are stable byte for byte
//! (quick-effort calibration and the simulators are fully
//! deterministic, so any drift here is a real wire or model change).
//! Regenerate with `GPA_BLESS=1 cargo test -p gpa-service
//! --test golden_report`.

use gpa_hw::Machine;
use gpa_service::{AnalysisOptions, AnalysisRequest, Analyzer, KernelSpec, WhatIfSpec};
use gpa_sim::Threads;
use gpa_ubench::MeasureOpts;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/matmul_report.json")
}

fn custom_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/custom_report.json")
}

fn sample_custom_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/sample_custom_kernel.json")
}

fn golden_request() -> AnalysisRequest {
    AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285").with_options(
        AnalysisOptions {
            threads: Threads::sequential(),
            verify: true,
            what_ifs: vec![WhatIfSpec::MaxBlocks(16)],
            ..AnalysisOptions::default()
        },
    )
}

#[test]
fn matmul_report_matches_golden_file() {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let report = analyzer.analyze(&golden_request()).unwrap();
    let json = report.to_json();

    let path = golden_path();
    if std::env::var_os("GPA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with GPA_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        json,
        golden,
        "report drifted from {}; if intended, regenerate with GPA_BLESS=1",
        path.display()
    );

    // And the golden file itself parses back to the same report.
    let parsed = gpa_service::AnalysisReport::from_json(&golden).unwrap();
    assert_eq!(parsed, report);
}

/// The checked-in custom-kernel sample (the saxpy CI smokes) against its
/// golden report: pins the portable kernel encoding end to end —
/// assembly parsing, the deterministic memory-image initializers, the
/// dynamic flop count, and the readback block.
#[test]
fn custom_report_matches_golden_file() {
    let request_json =
        std::fs::read_to_string(sample_custom_path()).expect("sample_custom_kernel.json");
    let mut request = AnalysisRequest::from_json(&request_json).expect("sample parses");
    assert!(
        matches!(request.kernel, KernelSpec::Custom(_)),
        "sample must exercise the custom encoding"
    );
    request.options.threads = Threads::sequential();

    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let report = analyzer.analyze(&request).unwrap();
    assert!(report.flops > 0, "custom kernels report honest flops");
    assert!(!report.outputs.is_empty(), "sample requests readback");
    let json = report.to_json();

    let path = custom_golden_path();
    if std::env::var_os("GPA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with GPA_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        json,
        golden,
        "report drifted from {}; if intended, regenerate with GPA_BLESS=1",
        path.display()
    );

    let parsed = gpa_service::AnalysisReport::from_json(&golden).unwrap();
    assert_eq!(parsed, report);
}
