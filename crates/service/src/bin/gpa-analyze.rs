//! `gpa-analyze`: drive the analysis service from JSON, no Rust needed.
//!
//! Reads an [`AnalysisRequest`] (or an array of them) as JSON from a file
//! argument or stdin, calibrates the named machines once per process
//! (honoring each request's `"calibration"` effort; `"paper"` wins over
//! `"quick"` when requests share a machine), answers every request, and
//! writes the report JSON to stdout — an object for a single request, an
//! array (in request order) for a batch.
//!
//! ```text
//! gpa-analyze request.json            # file
//! gpa-analyze < request.json          # stdin
//! gpa-analyze - < request.json       # stdin, explicit
//! ```
//!
//! Calibration goes through the shared on-disk curve cache
//! (`gpa_ubench::cache`, the workspace `results/` directory by default,
//! `--cache-dir DIR` to relocate, `--no-cache` to always measure), so
//! repeated CLI runs — and a `gpa-serve` instance next door — measure
//! each machine once. Cache hits register bit-identical curves, so
//! reports never depend on who calibrated first.
//!
//! A failed single request prints the error to stderr and exits 1. In a
//! batch, failed requests become `{"error": "..."}` elements so the
//! healthy answers still come back; the exit code is 1 if any failed.

use gpa_json::Value;
use gpa_service::{find_builtin, AnalysisReport, AnalysisRequest, Analyzer, Effort, ServiceError};
use gpa_telemetry::log::{self, Level, LogFormat};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: gpa-analyze [--cache-dir DIR | --no-cache] [--no-report-cache] [REQUEST.json | -]
       gpa-analyze --kernel-asm FILE.asm [--machine SEL] [--grid X[xY]]
       gpa-analyze --workload NAME [--n N] [--seed S] [--machine SEL]

Reads an analysis request (JSON object) or batch (JSON array) from the
given file or stdin and writes the report JSON to stdout. See the
`gpa_service::wire` docs for the schema; machines: gtx285, 8800gt,
9800gtx. Any kernel is accepted: besides the three case studies, a
request with {\"case\": \"custom\"} carries decuda-style assembly, a
launch shape, parameters, and a declarative memory image.

Options:
  --cache-dir DIR   load/store calibration curves (and cached reports)
                    under DIR (default: the shared workspace results/)
  --no-cache        always measure; do not touch the on-disk cache
  --report-cache    memoize whole answers, content-addressed, persisted
                    under the cache dir (default on; byte-identical to
                    recomputing, so only --no-report-cache changes speed,
                    never output)
  --no-report-cache recompute every answer
  --kernel-asm FILE wrap a bare `.asm` kernel into a custom request:
                    the block shape comes from the file's `.threads`
                    directive, the grid from --grid (default 1), the
                    machine from --machine (default gtx285). Kernels
                    needing parameters or device memory must use the
                    full request JSON instead.
  --workload NAME   analyze a workload-zoo kernel by name (vector_add,
                    saxpy, strided_copy, naive_transpose,
                    shared_transpose, reduce_sum, dot_product, histogram,
                    atomic_hotspot, shared_bank_conflict, random_access,
                    vector_add_divergent); equivalent to a request with
                    {\"case\": \"named\"}
  --n N             problem size for --workload (default: per workload)
  --seed S          input-data seed for --workload (default 1)
  --machine SEL     machine selector for --kernel-asm / --workload
  --grid X[xY]      grid shape in blocks for --kernel-asm
  --log-format FMT  log line format: text | json (default text)
  -v, --verbose     log at DEBUG
  -q, --quiet       log at WARN (suppresses the calibrating lines)";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        emit(&format!("{USAGE}\n"));
        return ExitCode::SUCCESS;
    }
    match extract_log_flags(&mut args) {
        Ok((level, format)) => log::init(level, format),
        Err(e) => {
            eprintln!("gpa-analyze: {e}");
            return ExitCode::from(2);
        }
    }
    let cache_dir = match extract_cache_dir(&mut args) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gpa-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let report_cache = extract_report_cache(&mut args);
    let workload_request = match extract_workload(&mut args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gpa-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let asm_request = match extract_kernel_asm(&mut args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gpa-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if workload_request.is_some() && asm_request.is_some() {
        eprintln!("gpa-analyze: choose one of --workload / --kernel-asm\n{USAGE}");
        return ExitCode::from(2);
    }
    let (reqs, batch) = if let Some(req) = workload_request.or(asm_request) {
        if !args.is_empty() {
            eprintln!("gpa-analyze: --workload/--kernel-asm take no request file\n{USAGE}");
            return ExitCode::from(2);
        }
        (vec![req], false)
    } else {
        let text = match read_input(&args) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gpa-analyze: {e}");
                return ExitCode::from(2);
            }
        };

        let doc = match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("gpa-analyze: malformed JSON: {e}");
                return ExitCode::FAILURE;
            }
        };

        match &doc {
            Value::Array(items) => {
                let parsed: Result<Vec<_>, _> =
                    items.iter().map(AnalysisRequest::from_value).collect();
                match parsed {
                    Ok(reqs) => (reqs, true),
                    Err(e) => {
                        eprintln!("gpa-analyze: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            v => match AnalysisRequest::from_value(v) {
                Ok(req) => (vec![req], false),
                Err(e) => {
                    eprintln!("gpa-analyze: {e}");
                    return ExitCode::FAILURE;
                }
            },
        }
    };

    // Resolve every selector against the built-in presets up front and
    // rewrite it to the canonical machine name, so a request's answer
    // never depends on which machines *other* requests caused to be
    // calibrated (an ambiguous selector stays ambiguous in a batch).
    let mut reqs = reqs;
    let resolutions: Vec<Result<(), ServiceError>> = reqs
        .iter_mut()
        .map(|req| {
            find_builtin(&req.machine).map(|machine| {
                req.machine = machine.name.clone();
            })
        })
        .collect();

    // Calibrate each distinct machine once, at the highest effort any of
    // its requests asks for (the expensive step; answers are cheap).
    let mut analyzer = Analyzer::new();
    let mut calibrated: Vec<(String, Effort)> = Vec::new();
    for (req, resolution) in reqs.iter().zip(&resolutions) {
        if resolution.is_err() {
            continue;
        }
        let effort = req.options.calibration;
        match calibrated.iter_mut().find(|(name, _)| *name == req.machine) {
            Some((_, have)) if *have >= effort => {}
            Some(entry) => entry.1 = effort,
            None => calibrated.push((req.machine.clone(), effort)),
        }
    }
    for (name, effort) in &calibrated {
        let machine = find_builtin(name).expect("calibration list holds resolved names");
        log::info(
            "analyze",
            "calibrating",
            &[
                ("machine", name.as_str().into()),
                ("effort", format!("{effort:?}").into()),
            ],
        );
        match &cache_dir {
            Some(dir) => analyzer.calibrate_cached(machine, effort.measure_opts(), dir),
            None => analyzer.calibrate(machine, effort.measure_opts()),
        };
    }
    // Memoized answers are byte-identical to recomputed ones (the cache
    // stores the exact serialized report), so caching is on by default;
    // the disk tier rides the same directory as the curve cache.
    if report_cache {
        analyzer.enable_report_cache(gpa_service::ReportCacheConfig {
            disk_dir: cache_dir.clone(),
            ..gpa_service::ReportCacheConfig::default()
        });
    }

    // Answer: requests whose selector did not resolve keep their
    // resolution error; the rest go through the batch path.
    let resolvable: Vec<AnalysisRequest> = reqs
        .iter()
        .zip(&resolutions)
        .filter(|(_, r)| r.is_ok())
        .map(|(req, _)| req.clone())
        .collect();
    let mut batch_answers = analyzer.analyze_batch(&resolvable).into_iter();
    let answers: Vec<Result<AnalysisReport, ServiceError>> = resolutions
        .into_iter()
        .map(|resolution| match resolution {
            Ok(()) => batch_answers
                .next()
                .expect("one answer per resolvable request"),
            Err(e) => Err(e),
        })
        .collect();

    if batch {
        let mut failed = false;
        let items: Vec<Value> = answers
            .into_iter()
            .map(|r| match r {
                Ok(report) => report.to_value(),
                Err(e) => {
                    failed = true;
                    Value::Object(vec![("error".into(), Value::from(e.to_string().as_str()))])
                }
            })
            .collect();
        emit(&Value::Array(items).to_string_pretty());
        if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    } else {
        match answers.into_iter().next().expect("one request") {
            Ok(report) => {
                emit(&report.to_json());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gpa-analyze: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Write to stdout, swallowing broken-pipe errors so `gpa-analyze … |
/// head` exits quietly instead of panicking mid-print.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Strip the logging flags (`-q`/`--quiet`, `-v`/`--verbose`,
/// `--log-format FMT`) out of `args`, returning the level and format to
/// initialize the structured logger with.
fn extract_log_flags(args: &mut Vec<String>) -> Result<(Level, LogFormat), String> {
    let mut level = Level::Info;
    let mut format = LogFormat::Text;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-q" | "--quiet" => {
                level = Level::Warn;
                args.remove(i);
            }
            "-v" | "--verbose" => {
                level = Level::Debug;
                args.remove(i);
            }
            "--log-format" => {
                if i + 1 >= args.len() {
                    return Err("--log-format requires a value".into());
                }
                args.remove(i);
                let spec = args.remove(i);
                format = LogFormat::parse(&spec)
                    .ok_or_else(|| format!("unknown log format `{spec}` (text | json)"))?;
            }
            _ => i += 1,
        }
    }
    Ok((level, format))
}

/// Strip the calibration-cache flags out of `args`, returning the cache
/// directory to use (`None` = caching disabled via `--no-cache`).
fn extract_cache_dir(args: &mut Vec<String>) -> Result<Option<PathBuf>, String> {
    let mut dir = Some(gpa_ubench::cache::default_dir());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-cache" => {
                dir = None;
                args.remove(i);
            }
            "--cache-dir" => {
                if i + 1 >= args.len() {
                    return Err("--cache-dir requires a directory argument".into());
                }
                args.remove(i);
                dir = Some(PathBuf::from(args.remove(i)));
            }
            arg => {
                if let Some(v) = arg.strip_prefix("--cache-dir=") {
                    dir = Some(PathBuf::from(v));
                    args.remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }
    Ok(dir)
}

/// Strip `--report-cache`/`--no-report-cache` out of `args`, returning
/// whether answers should be memoized (default yes; last flag wins).
fn extract_report_cache(args: &mut Vec<String>) -> bool {
    let mut enabled = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report-cache" => {
                enabled = true;
                args.remove(i);
            }
            "--no-report-cache" => {
                enabled = false;
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    enabled
}

/// Handle `--workload NAME [--n N] [--seed S] [--machine SEL]`: wrap a
/// workload-zoo name into a [`gpa_service::KernelSpec::Named`] request —
/// the CLI twin of a `{"case": "named"}` wire request, so both produce
/// byte-identical reports. `--machine` is only consumed when
/// `--workload` is present (it otherwise belongs to `--kernel-asm`).
fn extract_workload(args: &mut Vec<String>) -> Result<Option<AnalysisRequest>, String> {
    let mut name: Option<String> = None;
    let mut n: Option<u32> = None;
    let mut seed: Option<u32> = None;
    let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> Result<String, String> {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires an argument"));
        }
        args.remove(i);
        Ok(args.remove(i))
    };
    let parse_u32 = |spec: String, flag: &str| -> Result<u32, String> {
        spec.parse()
            .map_err(|_| format!("{flag} expects a non-negative integer, got `{spec}`"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => name = Some(take_value(args, i, "--workload")?),
            "--n" => n = Some(parse_u32(take_value(args, i, "--n")?, "--n")?),
            "--seed" => seed = Some(parse_u32(take_value(args, i, "--seed")?, "--seed")?),
            _ => i += 1,
        }
    }
    let Some(name) = name else {
        if n.is_some() || seed.is_some() {
            return Err("--n/--seed require --workload".into());
        }
        return Ok(None);
    };
    let mut machine: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--machine" {
            machine = Some(take_value(args, i, "--machine")?);
        } else {
            i += 1;
        }
    }
    let workload = gpa_apps::zoo::find(&name).ok_or_else(|| {
        let names: Vec<&str> = gpa_apps::zoo::WORKLOADS.iter().map(|w| w.name).collect();
        format!("unknown workload `{name}`; available: {}", names.join(", "))
    })?;
    let n = n.unwrap_or(workload.default_n);
    gpa_apps::zoo::validate(&name, n)?;
    Ok(Some(AnalysisRequest::new(
        gpa_service::KernelSpec::Named {
            name,
            n,
            seed: seed.unwrap_or(1),
        },
        machine.unwrap_or_else(|| "gtx285".into()),
    )))
}

/// Handle `--kernel-asm FILE [--machine SEL] [--grid X[xY]]`: wrap a
/// bare assembly file into a [`gpa_service::KernelSpec::Custom`] request. The block
/// shape comes from the file's `.threads` directive, so the convenience
/// form needs no launch JSON.
fn extract_kernel_asm(args: &mut Vec<String>) -> Result<Option<AnalysisRequest>, String> {
    let mut asm_path: Option<String> = None;
    let mut machine: Option<String> = None;
    let mut grid: Option<(u32, u32)> = None;
    let mut i = 0;
    let take_value = |args: &mut Vec<String>, i: usize, flag: &str| -> Result<String, String> {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires an argument"));
        }
        args.remove(i);
        Ok(args.remove(i))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--kernel-asm" => asm_path = Some(take_value(args, i, "--kernel-asm")?),
            "--machine" => machine = Some(take_value(args, i, "--machine")?),
            "--grid" => {
                let spec = take_value(args, i, "--grid")?;
                grid = Some(parse_grid(&spec)?);
            }
            _ => i += 1,
        }
    }
    let Some(path) = asm_path else {
        // Refuse rather than silently discard: these flags only have
        // meaning alongside --kernel-asm (request JSON carries its own
        // machine and launch).
        if machine.is_some() || grid.is_some() {
            return Err("--machine/--grid require --kernel-asm".into());
        }
        return Ok(None);
    };
    let machine = machine.unwrap_or_else(|| "gtx285".into());
    let grid = grid.unwrap_or((1, 1));
    let asm = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Parse once here only to learn the declared block size; the service
    // parses again through the same grammar when it builds the kernel.
    let kernel = gpa_isa::asm::parse_kernel(&asm).map_err(|e| format!("{path}: {e}"))?;
    let launch = gpa_sim::LaunchConfig::new_2d(grid, (kernel.resources.threads_per_block, 1));
    let custom = gpa_service::CustomKernel {
        asm,
        launch,
        params: Vec::new(),
        memory: Vec::new(),
    };
    Ok(Some(AnalysisRequest::new(
        gpa_service::KernelSpec::Custom(Box::new(custom)),
        machine,
    )))
}

fn parse_grid(spec: &str) -> Result<(u32, u32), String> {
    let bad = || format!("--grid expects X or XxY in blocks, got `{spec}`");
    match spec.split_once('x') {
        Some((x, y)) => Ok((x.parse().map_err(|_| bad())?, y.parse().map_err(|_| bad())?)),
        None => Ok((spec.parse().map_err(|_| bad())?, 1)),
    }
}

fn read_input(args: &[String]) -> Result<String, String> {
    match args {
        [] => read_stdin(),
        [path] if path == "-" => read_stdin(),
        [path] => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        _ => Err(format!("expected one input file\n{USAGE}")),
    }
}

fn read_stdin() -> Result<String, String> {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(text)
}
