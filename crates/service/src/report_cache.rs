//! Content-addressed cache of serialized
//! [`AnalysisReport`](crate::AnalysisReport)s.
//!
//! The paper's model is deterministic: identical requests against
//! identical calibration always produce identical reports, so
//! re-simulating duplicated traffic is pure waste. This module memoizes
//! whole answers the same way [`gpa_ubench::cache`] memoizes calibration
//! curves — content-hashed keys, atomic temp+rename disk writes — but
//! one layer up, at the request/report boundary, where a hit skips
//! trace generation and the timing simulator entirely.
//!
//! # The canonical-hash contract
//!
//! A cache key ([`CacheKey`]) is an FNV-1a 64-bit hash over a
//! human-readable *fingerprint* string, and the fingerprint — not just
//! the hash — is stored with every entry and compared on lookup, so a
//! 64-bit collision reads as a miss, never as a wrong answer. The
//! fingerprint is built from exactly three parts:
//!
//! 1. **`gen=` — [`gpa_ubench::cache::CACHE_GENERATION`].** Bumping the
//!    generation (a measurement- or model-code change that alters
//!    answers) invalidates every existing entry.
//! 2. **`calib=` — the calibration identity.** A hash of the full
//!    [`Machine`](gpa_hw::Machine) description (its `Debug` rendering,
//!    so no field can be silently omitted) plus the measured
//!    [`ThroughputCurves`](gpa_ubench::ThroughputCurves) JSON. Two
//!    analyzers answer from the same entry only if they calibrated the
//!    same machine to bit-identical curves.
//! 3. **The canonical request** — the deterministic
//!    [`wire`](crate::wire) JSON of the request, normalized so that
//!    options which provably cannot change the answer stay **out** of
//!    the key:
//!    * `options.threads` is normalized to `"auto"` — reports are
//!      bit-identical at every worker count (a tested invariant).
//!    * `options.calibration` is normalized to its default — explicitly
//!      calibrated analyzers ignore it, and the *actual* calibration is
//!      already covered by the `calib=` part.
//!
//!    Everything else **is** part of the key: the kernel spec (including
//!    a custom kernel's full assembly, launch, params, and memory
//!    image), the resolved machine name, `options.mode`, `options.fuel`,
//!    `options.verify`, and the what-if list (what-ifs are part of the
//!    report).
//!
//! Requests with observable side effects are never cached by the
//! [`Analyzer`](crate::Analyzer): `verify: true` runs must actually run
//! the oracle, and custom kernels with `readback` regions produce
//! reports whose size defeats the point of a byte-budgeted cache.
//! Failed requests are never cached either — errors are cheap to
//! recompute and must not mask a later fix (e.g. a machine registered
//! after the miss).
//!
//! # Storage
//!
//! In memory, entries live in N shards of `Mutex<HashMap>` so
//! concurrent server workers rarely contend on one lock; each shard is
//! LRU-bounded by an equal slice of [`ReportCacheConfig::max_bytes`].
//! Optionally, every stored report is also persisted to
//! [`ReportCacheConfig::disk_dir`] (the shared `results/` directory in
//! the CLIs) with the same atomic temp+rename protocol as the curve
//! cache, so `gpa-analyze` runs and a `gpa-serve` next door share
//! answers across processes; a disk entry that fails to read, parse, or
//! fingerprint-match is a miss, never a panic.

use gpa_json::Value;
use gpa_telemetry::Counter;
use gpa_ubench::cache::{fnv1a, CACHE_GENERATION};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a [`ReportCache`] is shaped. `Default` gives 64 MiB across 16
/// shards with no disk tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportCacheConfig {
    /// Total in-memory budget in bytes across all shards. Each shard is
    /// LRU-bounded by an equal slice; an entry larger than its shard's
    /// slice is evicted immediately (stored on disk only, if a disk
    /// tier is configured).
    pub max_bytes: usize,
    /// Number of independent `Mutex<HashMap>` shards (at least 1).
    pub shards: usize,
    /// Directory for the persistent tier (`None` = memory only).
    /// Entries are `report-<hash>.json` files written atomically, safe
    /// to share between concurrent processes.
    pub disk_dir: Option<PathBuf>,
}

impl Default for ReportCacheConfig {
    fn default() -> ReportCacheConfig {
        ReportCacheConfig {
            max_bytes: 64 << 20,
            shards: 16,
            disk_dir: None,
        }
    }
}

/// Counters and occupancy of a [`ReportCache`]; served by
/// `GET /v1/stats` in `gpa-serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportCacheStats {
    /// Lookups answered from the cache (memory or disk).
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint mismatch).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries currently held in memory.
    pub entries: usize,
    /// Bytes currently held in memory (reports + fingerprints +
    /// bookkeeping).
    pub bytes: usize,
}

/// The content address of one report: the FNV-1a hash routes to a
/// shard/slot, the full fingerprint string disambiguates it. See the
/// [module docs](self) for what the fingerprint does and does not
/// contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    fingerprint: String,
}

impl CacheKey {
    /// Assemble a key from its three fingerprint parts: a generation
    /// counter (bump ⇒ every prior key misses), the calibration
    /// identity hash, and the canonical request JSON. The
    /// [`Analyzer`](crate::Analyzer) always passes
    /// [`CACHE_GENERATION`]; the parameter exists so invalidation-by-
    /// bump is testable without editing a constant.
    pub fn from_parts(generation: u32, calibration: u64, canonical_request: &str) -> CacheKey {
        let fingerprint = format!("gen={generation}|calib={calibration:016x}|{canonical_request}");
        CacheKey {
            hash: fnv1a(fingerprint.as_bytes()),
            fingerprint,
        }
    }

    /// [`CacheKey::from_parts`] at the current [`CACHE_GENERATION`].
    pub fn new(calibration: u64, canonical_request: &str) -> CacheKey {
        CacheKey::from_parts(CACHE_GENERATION, calibration, canonical_request)
    }

    /// The disk-tier file name for this key.
    fn file_name(&self) -> String {
        format!("report-{:016x}.json", self.hash)
    }
}

/// One memoized report.
#[derive(Debug)]
struct Entry {
    fingerprint: String,
    report_json: String,
    /// Logical timestamp of the last hit or insertion (LRU clock).
    last_used: u64,
}

/// Nominal bookkeeping bytes charged per entry on top of its strings.
const ENTRY_OVERHEAD: usize = 64;

impl Entry {
    fn cost(&self) -> usize {
        self.fingerprint.len() + self.report_json.len() + ENTRY_OVERHEAD
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    bytes: usize,
}

/// The sharded, byte-budgeted, optionally disk-backed report cache.
/// See the [module docs](self) for the key contract and storage layout.
///
/// All methods take `&self`; the cache is safe to share across server
/// workers behind an `Arc`.
#[derive(Debug)]
pub struct ReportCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    disk_dir: Option<PathBuf>,
    /// Logical LRU clock, bumped on every lookup/insert.
    clock: AtomicU64,
    // Telemetry handles rather than raw atomics: `Counter` clones share
    // the underlying value, so the serving layer can expose these same
    // counters on its /v1/metrics registry.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ReportCache {
    /// An empty cache shaped by `config` (shard count is clamped to at
    /// least 1; the disk directory is created lazily on first store).
    pub fn new(config: ReportCacheConfig) -> ReportCache {
        let shards = config.shards.max(1);
        ReportCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: config.max_bytes / shards,
            disk_dir: config.disk_dir,
            clock: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.hash % self.shards.len() as u64) as usize]
    }

    /// Look up the serialized report for `key`, consulting memory first
    /// and then the disk tier (a disk hit is promoted into memory).
    /// Every outcome is counted.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard(key).lock().expect("report cache poisoned");
            if let Some(entry) = shard.map.get_mut(&key.hash) {
                // The fingerprint check turns a 64-bit hash collision
                // into a miss instead of a wrong answer.
                if entry.fingerprint == key.fingerprint {
                    entry.last_used = now;
                    self.hits.inc();
                    return Some(entry.report_json.clone());
                }
            }
        }
        if let Some(json) = self.disk_load(key) {
            self.hits.inc();
            self.insert(key, &json, now);
            return Some(json);
        }
        self.misses.inc();
        None
    }

    /// Store the serialized report for `key` in memory (evicting LRU
    /// entries past the shard budget) and, when configured, on disk.
    pub fn put(&self, key: &CacheKey, report_json: &str) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        self.insert(key, report_json, now);
        self.disk_store(key, report_json);
    }

    fn insert(&self, key: &CacheKey, report_json: &str, now: u64) {
        let entry = Entry {
            fingerprint: key.fingerprint.clone(),
            report_json: report_json.to_owned(),
            last_used: now,
        };
        let mut shard = self.shard(key).lock().expect("report cache poisoned");
        let added = entry.cost();
        if let Some(old) = shard.map.insert(key.hash, entry) {
            shard.bytes -= old.cost();
        }
        shard.bytes += added;
        // Evict least-recently-used entries until the shard fits. The
        // scan is linear, but shards are small by construction; an
        // entry larger than the whole budget evicts itself (the disk
        // tier, if any, still holds it).
        while shard.bytes > self.shard_budget {
            let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let evicted = shard.map.remove(&victim).expect("victim is present");
            shard.bytes -= evicted.cost();
            self.evictions.inc();
        }
    }

    /// Read `key` from the disk tier. Any failure — missing file, torn
    /// write survivor, foreign JSON, fingerprint mismatch — is a miss.
    fn disk_load(&self, key: &CacheKey) -> Option<String> {
        let dir = self.disk_dir.as_ref()?;
        let text = fs::read_to_string(dir.join(key.file_name())).ok()?;
        let doc = Value::parse(&text).ok()?;
        let fingerprint = doc.get("fingerprint").ok()?.as_str().ok()?;
        if fingerprint != key.fingerprint {
            return None;
        }
        Some(doc.get("report").ok()?.as_str().ok()?.to_owned())
    }

    /// Persist `key` atomically: stage to a process-unique temp file in
    /// the target directory, then `rename` into place (atomic on POSIX;
    /// concurrent writers race benignly — identical content, last
    /// rename wins). Errors are swallowed: the report is already in
    /// hand, the disk tier is an optimization.
    fn disk_store(&self, key: &CacheKey, report_json: &str) {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let Some(dir) = self.disk_dir.as_ref() else {
            return;
        };
        let _ = fs::create_dir_all(dir);
        let wrapper = Value::Object(vec![
            ("fingerprint".into(), Value::from(key.fingerprint.as_str())),
            ("report".into(), Value::from(report_json)),
        ])
        .to_string_pretty();
        let path = dir.join(key.file_name());
        let temp = dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&temp, wrapper).is_ok() && fs::rename(&temp, &path).is_err() {
            let _ = fs::remove_file(&temp);
        }
    }

    /// Current counters and memory occupancy.
    pub fn stats(&self) -> ReportCacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("report cache poisoned");
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        ReportCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &str) -> CacheKey {
        CacheKey::new(0xDEAD_BEEF, tag)
    }

    #[test]
    fn put_then_get_round_trips_and_counts() {
        let cache = ReportCache::new(ReportCacheConfig::default());
        let k = key("{\"req\": 1}");
        assert_eq!(cache.get(&k), None);
        cache.put(&k, "{\"report\": true}");
        assert_eq!(cache.get(&k).as_deref(), Some("{\"report\": true}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn generation_bump_invalidates_every_key() {
        let cache = ReportCache::new(ReportCacheConfig::default());
        let old = CacheKey::from_parts(CACHE_GENERATION, 7, "{\"req\": 1}");
        let new = CacheKey::from_parts(CACHE_GENERATION + 1, 7, "{\"req\": 1}");
        cache.put(&old, "answer");
        // Same calibration, same request, newer generation: a miss —
        // and since the two fingerprints differ, even an (engineered)
        // hash collision could not serve the stale answer.
        assert_ne!(old.fingerprint, new.fingerprint);
        assert_eq!(cache.get(&new), None);
        assert_eq!(cache.get(&old).as_deref(), Some("answer"));
    }

    #[test]
    fn colliding_hashes_with_different_fingerprints_miss() {
        let cache = ReportCache::new(ReportCacheConfig::default());
        let a = key("request A");
        let mut b = key("request B");
        b.hash = a.hash; // forced 64-bit collision
        cache.put(&a, "answer A");
        assert_eq!(cache.get(&b), None, "collision must read as a miss");
        // Overwriting the slot with B's answer replaces, not corrupts.
        cache.put(&b, "answer B");
        assert_eq!(cache.get(&b).as_deref(), Some("answer B"));
        assert_eq!(cache.get(&a), None);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let payload = "x".repeat(200);
        let config = ReportCacheConfig {
            max_bytes: 3 * (payload.len() + ENTRY_OVERHEAD + 64),
            shards: 1,
            disk_dir: None,
        };
        let cache = ReportCache::new(config.clone());
        let keys: Vec<CacheKey> = (0..4).map(|i| key(&format!("req {i}"))).collect();
        for k in &keys {
            cache.put(k, &payload);
        }
        // Touch key 1 so key 2 becomes the LRU victim of the next put.
        assert!(cache.get(&keys[1]).is_some());
        cache.put(&key("req 4"), &payload);
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.bytes <= config.max_bytes, "{stats:?}");
        assert_eq!(cache.get(&keys[0]), None, "oldest entry was evicted");
        assert!(cache.get(&keys[1]).is_some(), "recently used survives");
    }

    #[test]
    fn disk_tier_survives_a_process_restart() {
        let dir = std::env::temp_dir().join(format!("gpa-report-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let config = ReportCacheConfig {
            disk_dir: Some(dir.clone()),
            ..ReportCacheConfig::default()
        };
        let k = key("{\"req\":\n \"with \\\"escapes\\\"\"}");
        let report = "{\n  \"answer\": 42\n}";
        ReportCache::new(config.clone()).put(&k, report);
        // A fresh cache (a "new process") answers from disk and promotes
        // the entry into memory.
        let reborn = ReportCache::new(config.clone());
        assert_eq!(reborn.get(&k).as_deref(), Some(report));
        let stats = reborn.stats();
        assert_eq!((stats.hits, stats.entries), (1, 1));
        assert_eq!(reborn.get(&k).as_deref(), Some(report), "memory hit");
        // A torn or corrupted file reads as a miss, never a panic.
        let path = dir.join(k.file_name());
        fs::write(&path, "{\"fingerprint\": \"gen=").unwrap();
        let corrupt = ReportCache::new(config);
        assert_eq!(corrupt.get(&k), None);
        // No temp files left behind by the atomic store protocol.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
