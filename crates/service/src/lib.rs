#![warn(missing_docs)]

//! The unified analysis service: one typed entry point over the whole
//! paper workflow (kernel → functional sim → info extractor → model →
//! bottleneck report), built for answering *many* queries against
//! calibrated machine profiles.
//!
//! # Shape
//!
//! * [`Analyzer`] — the session object. It owns one calibrated profile
//!   ([`gpa_ubench::ThroughputCurves`]) per registered
//!   [`Machine`]: **calibrate once, answer many**.
//! * [`AnalysisRequest`] — one query: a [`KernelSpec`] (a case-study
//!   kernel at some size, or **any** kernel at all via
//!   [`KernelSpec::Custom`]'s portable encoding — asm text, launch,
//!   params, declarative memory image), a machine selector, and
//!   [`AnalysisOptions`] (trace mode, [`Threads`], fuel, verification,
//!   what-if toggles).
//! * [`AnalysisReport`] — the typed answer: the model's full
//!   [`Analysis`] (component times, per-stage breakdown, bottleneck,
//!   occupancy, diagnosed causes), the timing-simulator measurement,
//!   honest flop accounting, any requested [`WhatIf`] advisor
//!   estimates, and (for custom kernels that ask) post-run region
//!   readback in [`AnalysisReport::outputs`].
//! * [`Analyzer::analyze_batch`] — shards independent requests across
//!   worker threads (via [`gpa_sim::SimEngine::shard_plan`]); answers
//!   are identical to sequential [`Analyzer::analyze`] calls.
//! * [`wire`] — the JSON wire format: requests and reports serialize
//!   over `gpa-json` with exact `f64` round-trips, and the
//!   `gpa-analyze` binary drives the service from request JSON on a
//!   file or stdin, no Rust required.
//!
//! Every fallible path returns [`ServiceError`] — the service never
//! panics on inconsistent requests.
//!
//! ```
//! use gpa_service::{Analyzer, AnalysisRequest, KernelSpec};
//! use gpa_hw::Machine;
//! use gpa_ubench::MeasureOpts;
//!
//! let mut analyzer = Analyzer::new();
//! analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
//! let req = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
//! let report = analyzer.analyze(&req).unwrap();
//! assert_eq!(report.machine, "GeForce GTX 285");
//! assert!(report.analysis.predicted_seconds > 0.0);
//! ```

pub mod report_cache;
pub mod wire;

use crate::report_cache::CacheKey;
use gpa_apps::workflow::{run_study, CaseError, CaseStudy, Region, TraceMode};
use gpa_apps::{matmul, spmv, tridiag};
use gpa_core::{Analysis, InputError, Model, ModelInput, WhatIf};
use gpa_hw::Machine;
use gpa_isa::Kernel;
use gpa_sim::{GlobalMemory, LaunchConfig, SimEngine, SimError, Threads};
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::fmt;
use std::sync::Arc;

pub use gpa_apps::workflow::TraceMode as RequestTraceMode;
pub use gpa_apps::zoo;
pub use report_cache::{ReportCache, ReportCacheConfig, ReportCacheStats};

/// Why the service refused or failed a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No calibrated machine matches the selector.
    UnknownMachine(String),
    /// The selector matches more than one calibrated machine.
    AmbiguousMachine(String),
    /// The request's kernel specification is out of the supported range.
    InvalidRequest(String),
    /// The functional simulation failed.
    Sim(SimError),
    /// Info extraction rejected the collected statistics.
    Input(InputError),
    /// The result did not match the CPU reference oracle.
    VerificationFailed(String),
    /// The wire payload could not be parsed.
    Wire(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownMachine(s) => {
                write!(f, "no calibrated machine matches `{s}`")
            }
            ServiceError::AmbiguousMachine(s) => {
                write!(f, "machine selector `{s}` is ambiguous")
            }
            ServiceError::InvalidRequest(s) => write!(f, "invalid request: {s}"),
            ServiceError::Sim(e) => write!(f, "simulation failed: {e}"),
            ServiceError::Input(e) => write!(f, "info extraction failed: {e}"),
            ServiceError::VerificationFailed(s) => {
                write!(f, "result does not match the CPU reference: {s}")
            }
            ServiceError::Wire(s) => write!(f, "malformed wire payload: {s}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> ServiceError {
        ServiceError::Sim(e)
    }
}

impl From<InputError> for ServiceError {
    fn from(e: InputError) -> ServiceError {
        ServiceError::Input(e)
    }
}

impl From<CaseError> for ServiceError {
    fn from(e: CaseError) -> ServiceError {
        match e {
            CaseError::Sim(e) => ServiceError::Sim(e),
            CaseError::Input(e) => ServiceError::Input(e),
        }
    }
}

impl From<gpa_json::Error> for ServiceError {
    fn from(e: gpa_json::Error) -> ServiceError {
        ServiceError::Wire(e.to_string())
    }
}

/// Which kernel a request targets.
///
/// The first three variants are the paper's case-study workloads; each
/// maps to the corresponding `gpa_apps::*::case` constructor, so a
/// service request and a direct driver call are bit-identical.
/// [`KernelSpec::Custom`] carries a *portable kernel encoding* — any
/// kernel expressible in the `gpa_isa::asm` text form, with declared
/// launch shape, parameters, and a wire-expressible memory image — so
/// the served surface is exactly as general as the model itself.
/// [`KernelSpec::validate`] checks the size constraints the constructors
/// would otherwise panic on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSpec {
    /// Dense matmul (§5.1): `n × n` matrices, `tile × tile` B sub-matrix.
    Matmul {
        /// Matrix dimension (multiple of `tile` and 64, ≤ 1024).
        n: u32,
        /// Sub-matrix size: 8, 16, or 32.
        tile: u32,
    },
    /// Cyclic-reduction tridiagonal solver (§5.2).
    Tridiag {
        /// Equations per system (must be 512: two per thread).
        n: u32,
        /// Independent systems (one per block).
        nsys: u32,
        /// Pad shared memory to remove bank conflicts (CR-NBC).
        padded: bool,
    },
    /// Sparse matrix–vector multiply on the QCD-like operator (§5.3).
    Spmv {
        /// Lattice extent: the operator has `l⁴` block rows
        /// (`l⁴ · 3` scalar rows; `l⁴` must be a multiple of 256).
        l: u32,
        /// Operator sparsity seed (deterministic).
        seed: u32,
        /// Storage format.
        format: spmv::Format,
        /// Route vector gathers through the texture cache.
        texture: bool,
    },
    /// A workload-zoo kernel addressed by name (see [`gpa_apps::zoo`]):
    /// twelve canonical performance patterns, each parameterized by a
    /// problem size and a data seed.
    Named {
        /// Workload name (one of [`zoo::WORKLOADS`]).
        name: String,
        /// Problem size (elements, or matrix dimension for the
        /// transposes); see [`zoo::validate`] for the per-workload range.
        n: u32,
        /// Deterministic input-data seed.
        seed: u32,
    },
    /// An arbitrary kernel in the portable wire encoding (boxed: the
    /// payload is much larger than the case-study selectors).
    Custom(Box<CustomKernel>),
}

/// Largest accepted tridiagonal system count (see
/// [`KernelSpec::validate`]).
pub const MAX_TRIDIAG_NSYS: u32 = 8192;

/// Largest accepted SpMV lattice extent (see [`KernelSpec::validate`]).
pub const MAX_SPMV_L: u32 = 16;

/// Largest accepted custom-kernel assembly text, in bytes.
pub const MAX_CUSTOM_ASM_BYTES: usize = 256 * 1024;

/// Largest accepted custom-kernel instruction count after parsing.
pub const MAX_CUSTOM_INSTRS: usize = 16_384;

/// Most memory regions a custom kernel may declare.
pub const MAX_CUSTOM_REGIONS: usize = 32;

/// Most parameter words a custom kernel may pass.
pub const MAX_CUSTOM_PARAMS: usize = 256;

/// Ceiling on a custom kernel's total declared device memory. Like
/// [`MAX_TRIDIAG_NSYS`], this keeps a wire request from OOMing the
/// service, and (with the 256-byte region alignment) guarantees every
/// region base fits the 32-bit pointers kernels pass as parameters.
pub const MAX_CUSTOM_MEMORY_BYTES: u64 = 64 << 20;

/// Ceiling on a custom launch's total block count (the per-shard fuel
/// budget guards runaway loops; this guards runaway grids).
pub const MAX_CUSTOM_BLOCKS: u64 = 65_536;

/// Ceiling on the memory a custom kernel may mark for readback, so a
/// report cannot be made arbitrarily large.
pub const MAX_CUSTOM_READBACK_BYTES: u64 = 1 << 20;

/// Alignment of every custom-kernel memory region (fixed, so region
/// base addresses — and therefore reports — are fully determined by the
/// request).
pub const CUSTOM_REGION_ALIGN: u64 = 256;

/// An arbitrary kernel in the portable wire encoding: the decuda-style
/// assembly text (`gpa_isa::asm` — its module docs are the grammar
/// contract), the launch shape, the kernel parameters, and a declarative
/// device-memory image that replaces caller-owned
/// [`GlobalMemory`] with wire-expressible state.
///
/// Everything is deterministic: regions are allocated in declaration
/// order at [`CUSTOM_REGION_ALIGN`], initializers are pure functions of
/// the spec, and parameters resolve region names to the resulting base
/// addresses — so two services given the same request byte-for-byte
/// produce the same report byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomKernel {
    /// Assembly text ([`gpa_isa::asm::parse_kernel`] grammar). The
    /// `.kernel`/`.reg`/`.smem`/`.threads`/`.param` directives declare
    /// the name and resources; `.threads` must match `launch`.
    pub asm: String,
    /// Launch shape (grid and block, up to 2-D).
    pub launch: LaunchConfig,
    /// Kernel parameter words, literal or region-relative.
    pub params: Vec<ParamValue>,
    /// Named device-memory regions, allocated in order.
    pub memory: Vec<MemRegionSpec>,
}

/// One 32-bit kernel parameter word of a [`CustomKernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamValue {
    /// A literal word (integers, f32 bit patterns, sizes…).
    Word(u32),
    /// The base device address of the named [`MemRegionSpec`] — how a
    /// wire request passes device pointers it cannot know in advance.
    RegionBase(String),
}

/// One named device-memory region of a [`CustomKernel`]: length,
/// initializer, and flags. Doubles as the traffic-attribution region in
/// the report (the paper's Figure 11a metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegionSpec {
    /// Region name (unique within the request).
    pub name: String,
    /// Length in bytes (positive, multiple of 4).
    pub len: u64,
    /// Initial contents.
    pub init: MemInit,
    /// Route loads from this region through the texture cache.
    pub texture: bool,
    /// Return the region's post-run contents in
    /// [`AnalysisReport::outputs`], so side effects stay observable
    /// without caller-owned memory.
    pub readback: bool,
}

/// Declarative initializer of a [`MemRegionSpec`], word by word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemInit {
    /// All zeros.
    Zero,
    /// Every word holds the same 32-bit pattern.
    Fill(u32),
    /// Explicit words from offset 0; the remainder (if any) is zero.
    Words(Vec<u32>),
    /// Deterministic pseudo-random `f32` values in `[0, 1)`: word `i` is
    /// `pattern_word(seed, i)` (a SplitMix64 hash of the seed and index,
    /// mapped to a float). The sequence is part of the wire contract.
    Pattern {
        /// Stream selector; equal seeds give equal contents.
        seed: u32,
    },
}

/// The deterministic [`MemInit::Pattern`] generator: word `i` of a
/// region seeded with `seed` (an `f32` in `[0, 1)`, returned as its bit
/// pattern). Exposed so clients can precompute expected inputs.
pub fn pattern_word(seed: u32, i: u64) -> u32 {
    // SplitMix64 over (seed, index); top 24 bits → f32 fraction.
    let mut z = (u64::from(seed) << 32)
        ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (((z >> 40) as f32) / (1u64 << 24) as f32).to_bits()
}

impl CustomKernel {
    /// Check every size ceiling and cross-reference *without* parsing the
    /// assembly or allocating memory — a hostile request is rejected
    /// before it costs anything.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |msg: String| Err(ServiceError::InvalidRequest(msg));
        if self.asm.is_empty() {
            return bad("custom kernel has no assembly text".into());
        }
        if self.asm.len() > MAX_CUSTOM_ASM_BYTES {
            return bad(format!(
                "assembly text of {} bytes exceeds the {MAX_CUSTOM_ASM_BYTES}-byte limit",
                self.asm.len()
            ));
        }
        // Grid/block products in u64: the u32 fields must not overflow
        // the LaunchConfig arithmetic downstream.
        let blocks = u64::from(self.launch.grid.0) * u64::from(self.launch.grid.1);
        let threads = u64::from(self.launch.block.0) * u64::from(self.launch.block.1);
        if blocks == 0 || threads == 0 {
            return bad("empty launch".into());
        }
        if blocks > MAX_CUSTOM_BLOCKS {
            return bad(format!(
                "launch of {blocks} blocks exceeds the {MAX_CUSTOM_BLOCKS}-block limit"
            ));
        }
        if threads > 512 {
            return bad(format!(
                "block of {threads} threads exceeds the 512-thread limit"
            ));
        }
        if self.params.len() > MAX_CUSTOM_PARAMS {
            return bad(format!(
                "{} parameter words exceed the {MAX_CUSTOM_PARAMS}-word limit",
                self.params.len()
            ));
        }
        if self.memory.len() > MAX_CUSTOM_REGIONS {
            return bad(format!(
                "{} memory regions exceed the {MAX_CUSTOM_REGIONS}-region limit",
                self.memory.len()
            ));
        }
        let mut total = 0u64;
        let mut readback = 0u64;
        for (i, region) in self.memory.iter().enumerate() {
            if region.name.is_empty() {
                return bad(format!("memory region {i} has an empty name"));
            }
            if self.memory[..i].iter().any(|r| r.name == region.name) {
                return bad(format!("duplicate memory region `{}`", region.name));
            }
            if region.len == 0 || region.len % 4 != 0 {
                return bad(format!(
                    "region `{}` length {} must be a positive multiple of 4",
                    region.name, region.len
                ));
            }
            // Account the alignment padding too, so `total` bounds the
            // arena extent (and thus every base address) exactly.
            total = total.div_ceil(CUSTOM_REGION_ALIGN) * CUSTOM_REGION_ALIGN + region.len;
            if total > MAX_CUSTOM_MEMORY_BYTES {
                return bad(format!(
                    "memory image exceeds the {MAX_CUSTOM_MEMORY_BYTES}-byte limit at region `{}`",
                    region.name
                ));
            }
            if let MemInit::Words(words) = &region.init {
                if words.len() as u64 * 4 > region.len {
                    return bad(format!(
                        "region `{}` initializer has {} words but the region holds {}",
                        region.name,
                        words.len(),
                        region.len / 4
                    ));
                }
            }
            if region.readback {
                readback += region.len;
                if readback > MAX_CUSTOM_READBACK_BYTES {
                    return bad(format!(
                        "readback regions exceed the {MAX_CUSTOM_READBACK_BYTES}-byte limit"
                    ));
                }
            }
        }
        for p in &self.params {
            if let ParamValue::RegionBase(name) = p {
                if !self.memory.iter().any(|r| r.name == *name) {
                    return bad(format!("parameter names unknown region `{name}`"));
                }
            }
        }
        Ok(())
    }

    /// Parse, validate, and materialize the kernel into an executable
    /// [`CaseStudy`]: assemble the instruction stream, allocate and
    /// initialize the memory image, and resolve region-relative
    /// parameters.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] for ceiling violations, assembly
    /// errors (with their source line), structurally invalid kernels, or
    /// launch/resource mismatches.
    pub fn build(&self) -> Result<CaseStudy, ServiceError> {
        self.validate()?;
        let bad = |msg: String| Err(ServiceError::InvalidRequest(msg));
        let kernel = gpa_isa::asm::parse_kernel(&self.asm)
            .map_err(|e| ServiceError::InvalidRequest(format!("assembly: {e}")))?;
        if kernel.len() > MAX_CUSTOM_INSTRS {
            return bad(format!(
                "kernel has {} instructions, over the {MAX_CUSTOM_INSTRS}-instruction limit",
                kernel.len()
            ));
        }
        kernel
            .validate()
            .map_err(|e| ServiceError::InvalidRequest(format!("kernel: {e}")))?;
        if kernel.resources.threads_per_block != self.launch.threads_per_block() {
            return bad(format!(
                "kernel declares .threads {} but the launch block has {} threads",
                kernel.resources.threads_per_block,
                self.launch.threads_per_block()
            ));
        }
        if self.params.len() * 4 < kernel.param_bytes as usize {
            return bad(format!(
                "kernel declares a {}-byte parameter block but the request provides {} words",
                kernel.param_bytes,
                self.params.len()
            ));
        }

        let mut gmem = GlobalMemory::new();
        let mut regions = Vec::with_capacity(self.memory.len());
        for spec in &self.memory {
            let base = gmem.alloc(spec.len, CUSTOM_REGION_ALIGN);
            let words = spec.len / 4;
            match &spec.init {
                MemInit::Zero => {}
                MemInit::Fill(word) => {
                    for i in 0..words {
                        gmem.write_u32(base + i * 4, *word).expect("in allocation");
                    }
                }
                MemInit::Words(values) => {
                    for (i, w) in values.iter().enumerate() {
                        gmem.write_u32(base + i as u64 * 4, *w)
                            .expect("in allocation");
                    }
                }
                MemInit::Pattern { seed } => {
                    for i in 0..words {
                        gmem.write_u32(base + i * 4, pattern_word(*seed, i))
                            .expect("in allocation");
                    }
                }
            }
            regions.push(if spec.texture {
                Region::texture(spec.name.clone(), base, spec.len)
            } else {
                Region::new(spec.name.clone(), base, spec.len)
            });
        }
        let params: Vec<u32> = self
            .params
            .iter()
            .map(|p| match p {
                ParamValue::Word(w) => *w,
                ParamValue::RegionBase(name) => {
                    let region = regions
                        .iter()
                        .find(|r| r.name == *name)
                        .expect("validated: parameter region exists");
                    // The memory ceiling keeps the arena under 4 GiB, so
                    // the 32-bit device pointer is exact.
                    region.base as u32
                }
            })
            .collect();
        Ok(CaseStudy::adhoc(
            kernel,
            self.launch,
            params,
            gmem,
            regions,
            // Wire-submitted kernels carry no promise of homogeneity:
            // let the traced pass decide. Grids whose blocks are
            // shape-identical still get the cheap single-cluster
            // timing, byte for byte; divergent grids (the old silent
            // wrong answer) get per-block replay.
            TraceMode::Auto,
        ))
    }

    /// Post-run contents of every `readback` region, in declaration
    /// order (`study` must be the product of [`CustomKernel::build`]).
    fn collect_readback(&self, study: &CaseStudy) -> Vec<RegionReadback> {
        self.memory
            .iter()
            .filter(|spec| spec.readback)
            .map(|spec| {
                let region = study
                    .regions
                    .iter()
                    .find(|r| r.name == spec.name)
                    .expect("built study holds every declared region");
                let words = study
                    .gmem
                    .read_u32s(region.base, (region.len / 4) as usize)
                    .expect("region lies in the allocated image");
                RegionReadback {
                    name: spec.name.clone(),
                    words,
                }
            })
            .collect()
    }
}

impl KernelSpec {
    /// Check the size constraints the case constructors require.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidRequest`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |msg: String| Err(ServiceError::InvalidRequest(msg));
        match *self {
            KernelSpec::Custom(ref custom) => custom.validate(),
            KernelSpec::Named { ref name, n, .. } => {
                zoo::validate(name, n).map_err(ServiceError::InvalidRequest)
            }
            KernelSpec::Matmul { n, tile } => {
                if !matmul::TILES.contains(&tile) {
                    return bad(format!("matmul tile {tile} not in {:?}", matmul::TILES));
                }
                if n == 0 || n % tile != 0 || n % matmul::STRIP_ROWS != 0 {
                    return bad(format!(
                        "matmul n={n} must be a positive multiple of tile ({tile}) and {}",
                        matmul::STRIP_ROWS
                    ));
                }
                if n > 1024 {
                    return bad(format!("matmul n={n} exceeds the supported 1024"));
                }
                Ok(())
            }
            KernelSpec::Tridiag { n, nsys, .. } => {
                if n != 2 * tridiag::THREADS {
                    return bad(format!(
                        "tridiag n={n} must be {} (two equations per thread)",
                        2 * tridiag::THREADS
                    ));
                }
                // The ceiling keeps the five n×nsys device arrays (plus
                // host references) in the hundreds of MB and n·nsys far
                // from u32 overflow — a wire request must not OOM or
                // panic the service.
                if nsys == 0 || nsys > MAX_TRIDIAG_NSYS {
                    return bad(format!(
                        "tridiag nsys={nsys} must be in 1..={MAX_TRIDIAG_NSYS}"
                    ));
                }
                Ok(())
            }
            KernelSpec::Spmv { l, .. } => {
                // Computed in u64: the generator works in u32, so the
                // ceiling also guarantees l⁴ (and the ~l⁴·81·4-byte
                // operator) stays far inside u32 and memory budgets.
                let sites = u64::from(l).pow(4);
                if !(2..=MAX_SPMV_L).contains(&l) || sites % u64::from(spmv::THREADS) != 0 {
                    return bad(format!(
                        "spmv l={l}: need 2 ≤ l ≤ {MAX_SPMV_L} with l⁴ a multiple of {}",
                        spmv::THREADS
                    ));
                }
                Ok(())
            }
        }
    }

    /// Build the prepared case study (validates first).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidRequest`] on out-of-range sizes.
    pub fn build(&self) -> Result<CaseStudy, ServiceError> {
        self.validate()?;
        Ok(match *self {
            KernelSpec::Custom(ref custom) => return custom.build(),
            KernelSpec::Named { ref name, n, seed } => zoo::case(name, n, seed),
            KernelSpec::Matmul { n, tile } => matmul::case(n, tile),
            KernelSpec::Tridiag { n, nsys, padded } => tridiag::case(n, nsys, padded),
            KernelSpec::Spmv {
                l,
                seed,
                format,
                texture,
            } => spmv::case(&spmv::qcd_like(l, seed), format, texture),
        })
    }
}

/// Calibration effort for machines registered on demand (the
/// `gpa-analyze` CLI). An [`Analyzer`] calibrated explicitly via
/// [`Analyzer::calibrate`]/[`Analyzer::install`] ignores this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Effort {
    /// Sparse warp grid, short loops ([`MeasureOpts::quick`]).
    #[default]
    Quick,
    /// Full-resolution measurement ([`MeasureOpts::paper`]).
    Paper,
}

impl Effort {
    /// The corresponding measurement options.
    pub fn measure_opts(self) -> MeasureOpts {
        match self {
            Effort::Quick => MeasureOpts::quick(),
            Effort::Paper => MeasureOpts::paper(),
        }
    }
}

/// An advisor estimate to attach to the report (paper §5's use of the
/// model to price optimizations before implementing them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIfSpec {
    /// Eliminate all shared-memory bank conflicts (CR → CR-NBC).
    NoBankConflicts,
    /// Perfectly coalesce all global accesses.
    PerfectCoalescing,
    /// Shrink the global transaction granularity to 16 bytes (§5.3).
    Granularity16,
    /// Shrink the global transaction granularity to 4 bytes (§5.3).
    Granularity4,
    /// Privatize contended shared-memory atomics into per-warp partials.
    PrivatizedAtomics,
    /// Raise the resident-block ceiling (§5.1's architectural ask).
    MaxBlocks(u32),
    /// Scale the per-SM register file and shared memory (§5.1).
    ResourcesScaled(u32),
}

impl WhatIfSpec {
    fn eval(self, model: &mut Model<'_>, input: &ModelInput) -> WhatIf {
        match self {
            WhatIfSpec::NoBankConflicts => model.what_if_no_bank_conflicts(input),
            WhatIfSpec::PerfectCoalescing => model.what_if_perfect_coalescing(input),
            WhatIfSpec::Granularity16 => model.what_if_granularity(input, 1),
            WhatIfSpec::Granularity4 => model.what_if_granularity(input, 2),
            WhatIfSpec::PrivatizedAtomics => model.what_if_privatized_atomics(input),
            WhatIfSpec::MaxBlocks(b) => model.what_if_max_blocks(input, b),
            WhatIfSpec::ResourcesScaled(f) => model.what_if_resources_scaled(input, f),
        }
    }
}

/// Per-request options: trace acquisition, threading, fuel,
/// verification, advisor toggles, and on-demand calibration effort.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisOptions {
    /// Override the case's canonical trace mode (`None` keeps it:
    /// homogeneous for matmul/tridiag, per-block for SpMV).
    pub mode: Option<TraceMode>,
    /// Worker threads for block execution within this request. Reports
    /// are bit-identical for every selection; defaults to auto.
    pub threads: Threads,
    /// Warp-instruction fuel budget (runaway-loop guard); `None` keeps
    /// the simulator default (20 × 10⁹). **Accounting granularity
    /// depends on `threads`**: a sequential run spends one budget across
    /// the whole grid, a sharded run one budget *per shard* of blocks —
    /// so a grid that exhausts fuel sequentially may complete when
    /// sharded, never the reverse for per-block-affordable kernels (see
    /// [`gpa_sim::engine`] for the contract).
    pub fuel: Option<u64>,
    /// Check the simulated result against the CPU reference oracle and
    /// record the outcome in [`AnalysisReport::verified`].
    pub verify: bool,
    /// Advisor estimates to attach to the report.
    pub what_ifs: Vec<WhatIfSpec>,
    /// Calibration effort for hosts that register machines on demand
    /// (the CLI); ignored by explicitly calibrated analyzers.
    pub calibration: Effort,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            mode: None,
            threads: Threads::Auto,
            fuel: None,
            verify: false,
            what_ifs: Vec::new(),
            calibration: Effort::Quick,
        }
    }
}

/// One analysis query: which kernel, on which machine, with what options.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRequest {
    /// The kernel and problem size.
    pub kernel: KernelSpec,
    /// Machine selector, matched case-insensitively against calibrated
    /// machine names with punctuation ignored (`"gtx285"`,
    /// `"GeForce 8800 GT"`, `"9800gtx"`, …).
    pub machine: String,
    /// Per-request options.
    pub options: AnalysisOptions,
}

impl AnalysisRequest {
    /// A request with default options.
    pub fn new(kernel: KernelSpec, machine: impl Into<String>) -> AnalysisRequest {
        AnalysisRequest {
            kernel,
            machine: machine.into(),
            options: AnalysisOptions::default(),
        }
    }

    /// The same request with different options.
    pub fn with_options(mut self, options: AnalysisOptions) -> AnalysisRequest {
        self.options = options;
        self
    }
}

/// Global traffic attributed to one named device region at the real
/// GT200 transaction granularity (the paper's Figure 11a metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Region name (e.g. `"vector"`).
    pub name: String,
    /// Hardware transactions issued against the region.
    pub transactions: u64,
    /// Bytes moved (transaction sizes summed).
    pub bytes: u64,
    /// Bytes the lanes actually asked for (coalescing-independent).
    pub requested_bytes: u64,
}

/// Post-run contents of one `readback` memory region (custom kernels
/// only): how side effects stay observable when the service, not the
/// caller, owns device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionReadback {
    /// Region name from the request.
    pub name: String,
    /// The region's final contents as little-endian 32-bit words.
    pub words: Vec<u32>,
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Kernel name (e.g. `"matmul16x16"`).
    pub kernel: String,
    /// Full machine name (e.g. `"GeForce GTX 285"`).
    pub machine: String,
    /// The model's complete output: per-stage breakdown, component
    /// times, bottleneck and runner-up, occupancy, diagnosed causes.
    pub analysis: Analysis,
    /// The timing simulator's end-to-end measurement, seconds.
    pub measured_seconds: f64,
    /// The measurement in shader-clock cycles.
    pub measured_cycles: f64,
    /// Floating-point operations of the workload: the case study's
    /// declared algorithmic count (e.g. matmul's 2n³) when one exists,
    /// otherwise the functional simulator's lane-level dynamic count —
    /// never a silently hardcoded zero.
    pub flops: u64,
    /// Per-region global traffic attribution, in region order.
    pub regions: Vec<RegionTraffic>,
    /// Advisor estimates, in request order.
    pub what_ifs: Vec<WhatIf>,
    /// Readback of the custom-kernel regions that requested it, in
    /// declaration order (empty otherwise).
    pub outputs: Vec<RegionReadback>,
    /// CPU-reference verification outcome: `Some(true)` when requested
    /// and passed, `None` when not requested. (A failed check surfaces
    /// as [`ServiceError::VerificationFailed`] instead of a report.)
    pub verified: Option<bool>,
}

impl AnalysisReport {
    /// Signed relative model error vs the measurement.
    pub fn model_error(&self) -> f64 {
        (self.analysis.predicted_seconds - self.measured_seconds) / self.measured_seconds
    }

    /// The named region's traffic, if the request attributed one.
    pub fn region(&self, name: &str) -> Option<&RegionTraffic> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// GFLOP/s at the measured time (0.0 when `flops` is 0).
    pub fn measured_gflops(&self) -> f64 {
        self.flops as f64 / self.measured_seconds / 1e9
    }

    /// Render as the fixed-width text report a profiler would print.
    pub fn render(&self) -> String {
        let mut out = gpa_core::report::render_with_measured(&self.analysis, self.measured_seconds);
        if self.flops > 0 {
            out.push_str(&format!(
                "measured throughput: {:.1} GFLOPS\n",
                self.measured_gflops()
            ));
        }
        if let Some(v) = self.verified {
            out.push_str(if v {
                "functional result verified against the CPU reference\n"
            } else {
                "verification FAILED\n"
            });
        }
        if !self.what_ifs.is_empty() {
            out.push_str(&gpa_core::report::render_what_ifs(&self.what_ifs));
        }
        out
    }
}

/// One registered machine: the description plus its measured profile.
#[derive(Debug, Clone)]
struct Calibrated {
    machine: Machine,
    curves: ThroughputCurves,
    /// Content hash of `(machine, curves)`, precomputed at registration:
    /// the `calib=` part of every report-cache key for this entry (see
    /// [`report_cache`]).
    identity: u64,
}

/// The calibration-identity hash: FNV-1a over the complete [`Machine`]
/// description (its `Debug` rendering, so no field can be silently
/// omitted) and the measured curves' bit-exact JSON. Curves holding a
/// non-finite value have no JSON form; their `Debug` rendering stands
/// in (still a complete, deterministic fingerprint).
fn calibration_identity(machine: &Machine, curves: &ThroughputCurves) -> u64 {
    let curves_text = curves.to_json().unwrap_or_else(|_| format!("{curves:?}"));
    gpa_ubench::cache::fnv1a(format!("{machine:?}|{curves_text}").as_bytes())
}

/// Summarize a run's per-region traffic at the real GT200 granularity.
fn region_traffic(input: &ModelInput) -> Vec<RegionTraffic> {
    use gpa_sim::stats::GRAN_GT200;
    input
        .stats
        .regions
        .iter()
        .map(|r| RegionTraffic {
            name: r.name.clone(),
            transactions: r.gmem[GRAN_GT200].transactions,
            bytes: r.gmem[GRAN_GT200].bytes,
            requested_bytes: r.requested_bytes,
        })
        .collect()
}

/// The session object: calibrated machine profiles plus the analysis
/// entry points. See the [crate docs](crate) for the full shape.
///
/// `Analyzer` is `Sync`: concurrent [`Analyzer::analyze`] calls (and
/// [`Analyzer::analyze_batch`], which makes them for you) share the
/// calibration read-only.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    entries: Vec<Calibrated>,
    /// Optional memoization of whole answers ([`report_cache`]). Behind
    /// an `Arc` so cloned analyzers share one cache (and its counters).
    report_cache: Option<Arc<ReportCache>>,
}

/// Selector normalization: lowercase, punctuation and spaces dropped.
fn slug(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Find the unique machine in `machines` matching `selector`. An exact
/// slug match wins outright; otherwise the selector must be a substring
/// of exactly one machine's slug.
fn select<'m>(
    machines: impl Iterator<Item = &'m Machine>,
    selector: &str,
) -> Result<&'m Machine, ServiceError> {
    let want = slug(selector);
    if want.is_empty() {
        return Err(ServiceError::UnknownMachine(selector.to_owned()));
    }
    let mut substring: Vec<&Machine> = Vec::new();
    for m in machines {
        let have = slug(&m.name);
        if have == want {
            // Exact matches short-circuit so a machine whose full name
            // is a prefix of another's stays addressable.
            return Ok(m);
        }
        if have.contains(&want) {
            substring.push(m);
        }
    }
    match substring.len() {
        0 => Err(ServiceError::UnknownMachine(selector.to_owned())),
        1 => Ok(substring[0]),
        _ => Err(ServiceError::AmbiguousMachine(selector.to_owned())),
    }
}

/// The built-in machine presets a selector can name without a custom
/// [`Machine`]: the paper's GTX 285 and the two Table 3 G92 SKUs.
pub fn builtin_machines() -> [Machine; 3] {
    Machine::paper_table3()
}

/// Resolve a selector against [`builtin_machines`].
///
/// # Errors
///
/// [`ServiceError::UnknownMachine`] / [`ServiceError::AmbiguousMachine`].
pub fn find_builtin(selector: &str) -> Result<Machine, ServiceError> {
    let machines = builtin_machines();
    select(machines.iter(), selector).cloned()
}

impl Analyzer {
    /// An analyzer with no machines registered.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Measure `machine`'s throughput curves at `opts` effort and
    /// register the profile (the expensive step — amortized over every
    /// subsequent request). Re-registering a machine with the same name
    /// replaces its profile.
    pub fn calibrate(&mut self, machine: Machine, opts: MeasureOpts) -> &mut Self {
        let curves = ThroughputCurves::measure_with(&machine, opts);
        self.register(machine, curves);
        self
    }

    /// Replace-or-append the entry for `machine`, computing its
    /// report-cache identity once.
    fn register(&mut self, machine: Machine, curves: ThroughputCurves) {
        let identity = calibration_identity(&machine, &curves);
        self.entries.retain(|e| e.machine.name != machine.name);
        self.entries.push(Calibrated {
            machine,
            curves,
            identity,
        });
    }

    /// [`Analyzer::calibrate`] through the shared on-disk curve cache
    /// ([`gpa_ubench::cache`]): load the curves for `(machine, opts)`
    /// from `cache_dir` when a valid entry exists, otherwise measure and
    /// persist them (atomically) for the next process. Because the cache
    /// JSON round-trips `f64`s bit-exactly, a cache hit registers
    /// *identical* curves to a fresh measurement — reports do not depend
    /// on which process calibrated first. This is how `gpa-analyze` and
    /// `gpa-serve` share calibration across processes.
    pub fn calibrate_cached(
        &mut self,
        machine: Machine,
        opts: MeasureOpts,
        cache_dir: &std::path::Path,
    ) -> &mut Self {
        let curves = gpa_ubench::cache::load_or_measure(cache_dir, &machine, opts);
        self.register(machine, curves);
        self
    }

    /// Register a machine with previously measured curves (e.g. from the
    /// on-disk cache the bench harness keeps).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] if the curves were measured on a
    /// differently named machine.
    pub fn install(
        &mut self,
        machine: Machine,
        curves: ThroughputCurves,
    ) -> Result<&mut Self, ServiceError> {
        if curves.machine_name != machine.name {
            return Err(ServiceError::InvalidRequest(format!(
                "curves were measured on `{}`, not `{}`",
                curves.machine_name, machine.name
            )));
        }
        self.register(machine, curves);
        Ok(self)
    }

    /// Names of the registered machines, in registration order.
    pub fn machines(&self) -> Vec<&str> {
        self.entries
            .iter()
            .map(|e| e.machine.name.as_str())
            .collect()
    }

    /// Whether a selector resolves to a registered machine.
    pub fn has_machine(&self, selector: &str) -> bool {
        self.lookup(selector).is_ok()
    }

    /// The registered machine a selector resolves to.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownMachine`] / [`ServiceError::AmbiguousMachine`].
    pub fn machine(&self, selector: &str) -> Result<&Machine, ServiceError> {
        Ok(&self.lookup(selector)?.machine)
    }

    /// The calibrated curves a selector resolves to.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownMachine`] / [`ServiceError::AmbiguousMachine`].
    pub fn curves(&self, selector: &str) -> Result<&ThroughputCurves, ServiceError> {
        Ok(&self.lookup(selector)?.curves)
    }

    /// Memoize whole answers in a [`ReportCache`] shaped by `config`.
    /// Subsequent [`Analyzer::analyze`] / [`Analyzer::analyze_batch`]
    /// calls consult the cache for every cacheable request (see
    /// [`report_cache`] for the key contract and the verify/readback
    /// exclusions). Clones of this analyzer share the cache; enabling
    /// again replaces it with a fresh, empty one.
    pub fn enable_report_cache(&mut self, config: ReportCacheConfig) -> &mut Self {
        self.report_cache = Some(Arc::new(ReportCache::new(config)));
        self
    }

    /// Drop the report cache (requests always recompute).
    pub fn disable_report_cache(&mut self) -> &mut Self {
        self.report_cache = None;
        self
    }

    /// Counters of the report cache, if one is enabled.
    pub fn report_cache_stats(&self) -> Option<ReportCacheStats> {
        self.report_cache.as_ref().map(|cache| cache.stats())
    }

    /// Whether the answer to `req` may be served from / stored in the
    /// report cache. `verify` runs must actually exercise the oracle,
    /// and readback-bearing custom kernels produce reports whose
    /// payload defeats a byte-budgeted cache — both always recompute.
    fn cacheable(req: &AnalysisRequest) -> bool {
        if req.options.verify {
            return false;
        }
        if let KernelSpec::Custom(custom) = &req.kernel {
            if custom.memory.iter().any(|r| r.readback) {
                return false;
            }
        }
        true
    }

    fn lookup(&self, selector: &str) -> Result<&Calibrated, ServiceError> {
        let machine = select(self.entries.iter().map(|e| &e.machine), selector)?;
        // Identity-free re-find: names are unique by construction.
        Ok(self
            .entries
            .iter()
            .find(|e| e.machine.name == machine.name)
            .expect("selected machine is registered"))
    }

    /// Answer one request. Every [`KernelSpec`] — the three case studies
    /// *and* [`KernelSpec::Custom`] — flows through the same prepared
    /// [`CaseStudy`] path, so a wire request and an in-process call are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`]: unknown machine, invalid sizes or custom
    /// encodings, simulation or extraction failure, or a failed
    /// verification.
    pub fn analyze(&self, req: &AnalysisRequest) -> Result<AnalysisReport, ServiceError> {
        let entry = {
            let _span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::CALIBRATION_FETCH);
            self.lookup(&req.machine)?
        };
        let cache = match &self.report_cache {
            Some(cache) if Self::cacheable(req) => cache,
            _ => return self.analyze_resolved(entry, req),
        };
        let span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::CACHE_LOOKUP);
        let canonical =
            wire::canonical_request_json(&req.kernel, &entry.machine.name, &req.options);
        let key = CacheKey::new(entry.identity, &canonical);
        let cached = cache.get(&key);
        drop(span);
        if let Some(json) = cached {
            // A torn or foreign entry falls through to recompute (and
            // gets overwritten below); a healthy one is the answer.
            if let Ok(report) = AnalysisReport::from_json(&json) {
                gpa_telemetry::trace::set_cache_hit(true);
                return Ok(report);
            }
        }
        gpa_telemetry::trace::set_cache_hit(false);
        let report = self.analyze_resolved(entry, req)?;
        cache.put(&key, &report.to_json());
        Ok(report)
    }

    /// The uncached single-request path: build the study, run it, and
    /// collect custom-kernel readback.
    fn analyze_resolved(
        &self,
        entry: &Calibrated,
        req: &AnalysisRequest,
    ) -> Result<AnalysisReport, ServiceError> {
        let mut study = {
            let _span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::BUILD);
            req.kernel.build()?
        };
        let mut report = self.analyze_prepared(entry, &mut study, &req.options)?;
        if let KernelSpec::Custom(custom) = &req.kernel {
            report.outputs = custom.collect_readback(&study);
        }
        Ok(report)
    }

    /// The unified execution path: run one prepared study and assemble
    /// the report. `study.mode` may be overridden by the options; the
    /// study's memory image holds the side effects afterwards.
    fn analyze_prepared(
        &self,
        entry: &Calibrated,
        study: &mut CaseStudy,
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, ServiceError> {
        if options.verify && !study.has_verifier() {
            // No CPU-reference oracle exists for this kernel; refuse
            // rather than silently returning `verified: None` to a
            // caller who asked for a check.
            return Err(ServiceError::InvalidRequest(
                "verify is only available for case-study requests (this kernel has no \
                 reference oracle); request region readback instead"
                    .into(),
            ));
        }
        if let Some(mode) = options.mode {
            study.mode = mode;
        }
        let mut model = Model::with_curves(&entry.machine, &entry.curves);
        let run = run_study(
            &entry.machine,
            &mut model,
            study,
            options.threads,
            options.fuel,
        )?;
        let verified = if options.verify {
            study.check().map_err(ServiceError::VerificationFailed)?;
            Some(true)
        } else {
            None
        };
        let what_ifs = {
            let _span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::WHAT_IFS);
            options
                .what_ifs
                .iter()
                .map(|w| w.eval(&mut model, &run.input))
                .collect()
        };
        // Honest flop accounting: a case study's declared algorithmic
        // count when present, the simulator's lane-level count otherwise.
        let flops = if study.flops != 0 {
            study.flops
        } else {
            run.input.stats.total().flops
        };
        Ok(AnalysisReport {
            kernel: run.input.kernel_name.clone(),
            machine: entry.machine.name.clone(),
            regions: region_traffic(&run.input),
            analysis: run.analysis,
            measured_seconds: run.timing.seconds,
            measured_cycles: run.timing.cycles,
            flops,
            what_ifs,
            outputs: Vec::new(),
            verified,
        })
    }

    /// Answer one ad-hoc kernel against a calibrated profile, with
    /// caller-owned device memory.
    ///
    /// **Deprecated-style shim**: this predates the portable kernel
    /// encoding and survives for in-process callers that already hold a
    /// [`Kernel`] and a prepared [`GlobalMemory`]. New code should
    /// submit [`KernelSpec::Custom`] through [`Analyzer::analyze`]
    /// instead — it takes the same unified path this shim now delegates
    /// to, works over the wire, and reports become portable (side
    /// effects via [`AnalysisReport::outputs`] rather than `&mut`
    /// memory). Side effects still land in `gmem` exactly as before.
    ///
    /// # Errors
    ///
    /// Unknown machine, simulation, or extraction errors; also
    /// [`ServiceError::InvalidRequest`] when `options.verify` is set —
    /// ad-hoc kernels carry no reference oracle, so the request would
    /// otherwise silently go unchecked.
    #[allow(clippy::too_many_arguments)] // mirrors run_case: one per pipeline input
    pub fn analyze_kernel(
        &self,
        selector: &str,
        kernel: &Kernel,
        launch: LaunchConfig,
        params: &[u32],
        gmem: &mut GlobalMemory,
        regions: &[Region],
        options: &AnalysisOptions,
    ) -> Result<AnalysisReport, ServiceError> {
        let entry = self.lookup(selector)?;
        let mut study = CaseStudy::adhoc(
            kernel.clone(),
            launch,
            params.to_vec(),
            std::mem::take(gmem),
            regions.to_vec(),
            options.mode.unwrap_or(TraceMode::Homogeneous),
        );
        let result = self.analyze_prepared(entry, &mut study, options);
        // Hand the (possibly mutated) image back so callers observe side
        // effects exactly as under the pre-shim implementation.
        *gmem = study.gmem;
        result
    }

    /// Answer a batch, sharding the independent requests across one
    /// worker per available CPU core. Per-request results (including
    /// per-request failures) come back in request order and are
    /// identical to sequential [`Analyzer::analyze`] calls.
    pub fn analyze_batch(
        &self,
        reqs: &[AnalysisRequest],
    ) -> Vec<Result<AnalysisReport, ServiceError>> {
        self.analyze_batch_with(reqs, Threads::Auto)
    }

    /// [`Analyzer::analyze_batch`] with an explicit worker selection for
    /// the batch dimension (each request additionally shards its own
    /// block execution per its `options.threads`).
    pub fn analyze_batch_with(
        &self,
        reqs: &[AnalysisRequest],
        threads: Threads,
    ) -> Vec<Result<AnalysisReport, ServiceError>> {
        let n = reqs.len();
        let workers = threads.count().min(n);
        if workers <= 1 {
            return reqs.iter().map(|r| self.analyze(r)).collect();
        }
        // Reuse the engine's contiguous near-equal sharding so batch
        // assignment is deterministic (not that it matters for results:
        // requests are independent and individually deterministic).
        //
        // Nested-parallelism coordination: a request left on
        // [`Threads::Auto`] would spawn one worker per core *inside each
        // batch worker*, oversubscribing the machine `workers`-fold. Split
        // the cores across the batch instead (`Auto` → `Fixed(cores /
        // workers)`); an explicit `Fixed` request setting is the caller's
        // decision and passes through untouched. Results are unaffected —
        // every phase is bit-identical for every thread count, and the
        // report-cache key normalizes `threads` out.
        let inner = Threads::Fixed((Threads::Auto.count() / workers).max(1));
        let plan = SimEngine::shard_plan(n as u32, workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .map(|range| {
                    let shard = &reqs[range.start as usize..range.end as usize];
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|r| {
                                if matches!(r.options.threads, Threads::Auto) {
                                    let mut r = r.clone();
                                    r.options.threads = inner;
                                    self.analyze(&r)
                                } else {
                                    self.analyze(r)
                                }
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_slugs_match_presets() {
        assert_eq!(find_builtin("gtx285").unwrap().name, "GeForce GTX 285");
        assert_eq!(find_builtin("GTX 285").unwrap().name, "GeForce GTX 285");
        assert_eq!(find_builtin("8800gt").unwrap().name, "GeForce 8800 GT");
        assert_eq!(
            find_builtin("geforce 9800 gtx").unwrap().name,
            "GeForce 9800 GTX"
        );
        assert!(matches!(
            find_builtin("geforce"),
            Err(ServiceError::AmbiguousMachine(_))
        ));
        assert!(matches!(
            find_builtin("tesla"),
            Err(ServiceError::UnknownMachine(_))
        ));
        assert!(matches!(
            find_builtin("  "),
            Err(ServiceError::UnknownMachine(_))
        ));
    }

    #[test]
    fn kernel_specs_validate_sizes() {
        assert!(KernelSpec::Matmul { n: 64, tile: 16 }.validate().is_ok());
        assert!(KernelSpec::Matmul { n: 64, tile: 7 }.validate().is_err());
        assert!(KernelSpec::Matmul { n: 100, tile: 8 }.validate().is_err());
        assert!(KernelSpec::Matmul { n: 2048, tile: 16 }.validate().is_err());
        assert!(KernelSpec::Tridiag {
            n: 512,
            nsys: 4,
            padded: false
        }
        .validate()
        .is_ok());
        assert!(KernelSpec::Tridiag {
            n: 256,
            nsys: 4,
            padded: false
        }
        .validate()
        .is_err());
        assert!(KernelSpec::Tridiag {
            n: 512,
            nsys: 0,
            padded: true
        }
        .validate()
        .is_err());
        let spmv_ok = KernelSpec::Spmv {
            l: 4,
            seed: 42,
            format: spmv::Format::Ell,
            texture: false,
        };
        assert!(spmv_ok.validate().is_ok());
        let spmv_bad = KernelSpec::Spmv {
            l: 3,
            seed: 42,
            format: spmv::Format::Ell,
            texture: false,
        };
        assert!(spmv_bad.validate().is_err());
    }

    /// Tiny synthetic curves (selector tests never analyze with them).
    fn fake_curves(name: &str) -> ThroughputCurves {
        ThroughputCurves {
            machine_name: name.to_owned(),
            warps: vec![1, 32],
            instr: std::array::from_fn(|_| vec![1e9, 1e10]),
            smem: vec![1e10, 1e11],
        }
    }

    #[test]
    fn exact_selector_beats_substring_shadowing() {
        let mut analyzer = Analyzer::new();
        for name in ["Tesla", "Tesla Plus"] {
            let mut m = Machine::gtx285();
            m.name = name.to_owned();
            analyzer.install(m, fake_curves(name)).unwrap();
        }
        // "tesla" is the exact slug of the first machine — it must not
        // be reported ambiguous just because it prefixes the second.
        assert_eq!(analyzer.machine("tesla").unwrap().name, "Tesla");
        assert_eq!(analyzer.machine("tesla plus").unwrap().name, "Tesla Plus");
        assert!(matches!(
            analyzer.machine("tesl"),
            Err(ServiceError::AmbiguousMachine(_))
        ));
    }

    #[test]
    fn oversized_requests_are_rejected_not_run() {
        // These would overflow u32 arithmetic (or exhaust memory) in the
        // case constructors; validation must catch them first.
        assert!(KernelSpec::Spmv {
            l: 256,
            seed: 1,
            format: spmv::Format::Ell,
            texture: false,
        }
        .validate()
        .is_err());
        assert!(KernelSpec::Tridiag {
            n: 512,
            nsys: 10_000_000,
            padded: false,
        }
        .validate()
        .is_err());
        assert!(KernelSpec::Tridiag {
            n: 512,
            nsys: crate::MAX_TRIDIAG_NSYS,
            padded: false,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn analyze_kernel_refuses_unverifiable_verify() {
        use gpa_isa::builder::KernelBuilder;
        let mut analyzer = Analyzer::new();
        analyzer
            .install(Machine::gtx285(), fake_curves("GeForce GTX 285"))
            .unwrap();
        let mut b = KernelBuilder::new("noop");
        b.set_threads(32);
        b.exit();
        let kernel = b.finish().unwrap();
        let mut gmem = GlobalMemory::new();
        let err = analyzer
            .analyze_kernel(
                "gtx285",
                &kernel,
                LaunchConfig::new_1d(1, 32),
                &[],
                &mut gmem,
                &[],
                &AnalysisOptions {
                    verify: true,
                    ..AnalysisOptions::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn unknown_machine_is_an_error_not_a_panic() {
        let analyzer = Analyzer::new();
        let req = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
        assert!(matches!(
            analyzer.analyze(&req),
            Err(ServiceError::UnknownMachine(_))
        ));
    }

    #[test]
    fn calibrate_cached_is_indistinguishable_from_fresh_calibration() {
        let dir = std::env::temp_dir().join(format!("gpa-svc-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = MeasureOpts::quick();
        let mut fresh = Analyzer::new();
        fresh.calibrate(Machine::gtx285(), opts);
        // First process: cache miss, measures and persists.
        let mut miss = Analyzer::new();
        miss.calibrate_cached(Machine::gtx285(), opts, &dir);
        // Second process: cache hit, loads the persisted curves.
        let mut hit = Analyzer::new();
        hit.calibrate_cached(Machine::gtx285(), opts, &dir);
        let expected = fresh.curves("gtx285").unwrap();
        assert_eq!(miss.curves("gtx285").unwrap(), expected);
        assert_eq!(hit.curves("gtx285").unwrap(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_rejects_mismatched_curves() {
        let mut analyzer = Analyzer::new();
        let gtx = Machine::gtx285();
        let curves = ThroughputCurves::measure_with(&gtx, MeasureOpts::quick());
        assert!(analyzer
            .install(Machine::geforce_8800gt(), curves.clone())
            .is_err());
        analyzer.install(gtx, curves).unwrap();
        assert_eq!(analyzer.machines(), vec!["GeForce GTX 285"]);
        assert!(analyzer.has_machine("gtx285"));
        assert!(!analyzer.has_machine("8800gt"));
    }
}
