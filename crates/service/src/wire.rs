//! The JSON wire format: [`AnalysisRequest`] and [`AnalysisReport`]
//! serialize over [`gpa_json`] so the model is drivable without writing
//! Rust (the `gpa-analyze` binary reads request JSON and emits report
//! JSON).
//!
//! Numbers ride `gpa_json`'s shortest-round-trip `f64` formatting, so a
//! serialize → parse → serialize cycle is **bit-exact** for every finite
//! field (integral counters stay below 2⁵³ by construction). Optional
//! fields (`options.mode`, `options.fuel`, `verified`, report
//! `outputs`, and the custom-kernel `texture`/`readback` flags) are
//! omitted when absent; every other field is always written.
//!
//! Besides the three case-study selectors, `"case": "custom"` carries
//! the portable kernel encoding ([`crate::CustomKernel`]): the
//! `gpa_isa::asm` text, a launch shape, parameter words (literal or
//! `{"region": "name"}` base addresses), and a declarative memory image
//! whose initializer kinds are `zero`, `fill`, `words`, and `pattern`.
//! Requests are bounded by the `MAX_CUSTOM_*` ceilings exactly as
//! case-study sizes are bounded by [`crate::MAX_TRIDIAG_NSYS`] — an
//! oversized or malformed custom request is a clean error, never a
//! panic or an OOM.
//!
//! ```
//! use gpa_service::{AnalysisRequest, KernelSpec};
//!
//! let req = AnalysisRequest::new(KernelSpec::Matmul { n: 256, tile: 16 }, "gtx285");
//! let json = req.to_json();
//! assert_eq!(AnalysisRequest::from_json(&json).unwrap(), req);
//! ```

use crate::{
    AnalysisOptions, AnalysisReport, AnalysisRequest, CustomKernel, Effort, KernelSpec, MemInit,
    MemRegionSpec, ParamValue, RegionReadback, RegionTraffic, ServiceError, WhatIfSpec,
};
use gpa_apps::spmv::Format;
use gpa_apps::workflow::TraceMode;
use gpa_apps::zoo;
use gpa_core::{Analysis, Cause, Component, ComponentTimes, StageAnalysis, WhatIf};
use gpa_json::Value;
use gpa_sim::{LaunchConfig, Threads};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn u64_value(n: u64) -> Value {
    debug_assert!(n <= 1 << 53, "counter exceeds exact f64 range");
    Value::Number(n as f64)
}

fn wire_err(msg: impl Into<String>) -> ServiceError {
    ServiceError::Wire(msg.into())
}

// ---- enums ----

fn component_to_value(c: Component) -> Value {
    Value::from(match c {
        Component::InstructionPipeline => "instruction-pipeline",
        Component::SharedMemory => "shared-memory",
        Component::GlobalMemory => "global-memory",
        Component::AtomicUnit => "atomic-unit",
    })
}

fn component_from_value(v: &Value) -> Result<Component, ServiceError> {
    match v.as_str()? {
        "instruction-pipeline" => Ok(Component::InstructionPipeline),
        "shared-memory" => Ok(Component::SharedMemory),
        "global-memory" => Ok(Component::GlobalMemory),
        "atomic-unit" => Ok(Component::AtomicUnit),
        other => Err(wire_err(format!("unknown component `{other}`"))),
    }
}

fn mode_to_value(m: TraceMode) -> Value {
    Value::from(match m {
        TraceMode::Homogeneous => "homogeneous",
        TraceMode::PerBlock => "per-block",
        TraceMode::Auto => "auto",
    })
}

fn mode_from_value(v: &Value) -> Result<TraceMode, ServiceError> {
    match v.as_str()? {
        "homogeneous" => Ok(TraceMode::Homogeneous),
        "per-block" => Ok(TraceMode::PerBlock),
        "auto" => Ok(TraceMode::Auto),
        other => Err(wire_err(format!("unknown trace mode `{other}`"))),
    }
}

fn threads_to_value(t: Threads) -> Value {
    match t {
        Threads::Auto => Value::from("auto"),
        // Never emit 0: on the wire `0` is the legacy "auto" encoding,
        // while `Fixed(0)` resolves to one worker — serialize the
        // resolved count so the selection round-trips semantically.
        Threads::Fixed(n) => u64_value(n.max(1) as u64),
    }
}

fn threads_from_value(v: &Value) -> Result<Threads, ServiceError> {
    match v {
        Value::String(s) if s == "auto" => Ok(Threads::Auto),
        // Legacy numeric encoding: 0 = auto, n = exactly n workers.
        Value::Number(_) => Ok(Threads::from(v.as_u64()? as usize)),
        _ => Err(wire_err("threads must be \"auto\" or a worker count")),
    }
}

fn effort_to_value(e: Effort) -> Value {
    Value::from(match e {
        Effort::Quick => "quick",
        Effort::Paper => "paper",
    })
}

fn effort_from_value(v: &Value) -> Result<Effort, ServiceError> {
    match v.as_str()? {
        "quick" => Ok(Effort::Quick),
        "paper" => Ok(Effort::Paper),
        other => Err(wire_err(format!("unknown calibration effort `{other}`"))),
    }
}

fn format_to_value(f: Format) -> Value {
    Value::from(match f {
        Format::Ell => "ell",
        Format::BellIm => "bell-im",
        Format::BellImIv => "bell-im-iv",
    })
}

fn format_from_value(v: &Value) -> Result<Format, ServiceError> {
    match v.as_str()? {
        "ell" => Ok(Format::Ell),
        "bell-im" => Ok(Format::BellIm),
        "bell-im-iv" => Ok(Format::BellImIv),
        other => Err(wire_err(format!("unknown spmv format `{other}`"))),
    }
}

fn what_if_spec_to_value(w: WhatIfSpec) -> Value {
    match w {
        WhatIfSpec::NoBankConflicts => obj(vec![("kind", Value::from("no-bank-conflicts"))]),
        WhatIfSpec::PerfectCoalescing => obj(vec![("kind", Value::from("perfect-coalescing"))]),
        WhatIfSpec::Granularity16 => obj(vec![("kind", Value::from("granularity-16b"))]),
        WhatIfSpec::Granularity4 => obj(vec![("kind", Value::from("granularity-4b"))]),
        WhatIfSpec::PrivatizedAtomics => obj(vec![("kind", Value::from("privatized-atomics"))]),
        WhatIfSpec::MaxBlocks(b) => obj(vec![
            ("kind", Value::from("max-blocks")),
            ("blocks", Value::from(b)),
        ]),
        WhatIfSpec::ResourcesScaled(f) => obj(vec![
            ("kind", Value::from("resources-scaled")),
            ("factor", Value::from(f)),
        ]),
    }
}

fn what_if_spec_from_value(v: &Value) -> Result<WhatIfSpec, ServiceError> {
    match v.get("kind")?.as_str()? {
        "no-bank-conflicts" => Ok(WhatIfSpec::NoBankConflicts),
        "perfect-coalescing" => Ok(WhatIfSpec::PerfectCoalescing),
        "granularity-16b" => Ok(WhatIfSpec::Granularity16),
        "granularity-4b" => Ok(WhatIfSpec::Granularity4),
        "privatized-atomics" => Ok(WhatIfSpec::PrivatizedAtomics),
        "max-blocks" => Ok(WhatIfSpec::MaxBlocks(v.get("blocks")?.as_u32()?)),
        "resources-scaled" => Ok(WhatIfSpec::ResourcesScaled(v.get("factor")?.as_u32()?)),
        other => Err(wire_err(format!("unknown what-if kind `{other}`"))),
    }
}

// ---- custom kernels ----

fn launch_to_value(l: LaunchConfig) -> Value {
    obj(vec![
        (
            "grid",
            Value::Array(vec![Value::from(l.grid.0), Value::from(l.grid.1)]),
        ),
        (
            "block",
            Value::Array(vec![Value::from(l.block.0), Value::from(l.block.1)]),
        ),
    ])
}

/// A launch dimension pair: `[x, y]`, `[x]`, or a bare `x` (1-D).
fn dim2_from_value(v: &Value, what: &str) -> Result<(u32, u32), ServiceError> {
    match v {
        Value::Number(_) => Ok((v.as_u32()?, 1)),
        Value::Array(_) => match v.as_array()? {
            [x] => Ok((x.as_u32()?, 1)),
            [x, y] => Ok((x.as_u32()?, y.as_u32()?)),
            dims => Err(wire_err(format!(
                "{what} has {} dimensions; launches are at most 2-D",
                dims.len()
            ))),
        },
        _ => Err(wire_err(format!("{what} must be a number or an array"))),
    }
}

fn launch_from_value(v: &Value) -> Result<LaunchConfig, ServiceError> {
    Ok(LaunchConfig {
        grid: dim2_from_value(v.get("grid")?, "grid")?,
        block: dim2_from_value(v.get("block")?, "block")?,
    })
}

fn param_to_value(p: &ParamValue) -> Value {
    match p {
        ParamValue::Word(w) => Value::from(*w),
        ParamValue::RegionBase(name) => obj(vec![("region", Value::from(name.as_str()))]),
    }
}

fn param_from_value(v: &Value) -> Result<ParamValue, ServiceError> {
    match v {
        Value::Number(_) => Ok(ParamValue::Word(v.as_u32()?)),
        Value::Object(_) => Ok(ParamValue::RegionBase(
            v.get("region")?.as_str()?.to_owned(),
        )),
        _ => Err(wire_err(
            "parameter must be a 32-bit word or {\"region\": \"name\"}",
        )),
    }
}

fn mem_init_to_value(init: &MemInit) -> Value {
    match init {
        MemInit::Zero => obj(vec![("kind", Value::from("zero"))]),
        MemInit::Fill(word) => obj(vec![
            ("kind", Value::from("fill")),
            ("word", Value::from(*word)),
        ]),
        MemInit::Words(words) => obj(vec![
            ("kind", Value::from("words")),
            (
                "words",
                Value::Array(words.iter().map(|w| Value::from(*w)).collect()),
            ),
        ]),
        MemInit::Pattern { seed } => obj(vec![
            ("kind", Value::from("pattern")),
            ("seed", Value::from(*seed)),
        ]),
    }
}

fn mem_init_from_value(v: &Value) -> Result<MemInit, ServiceError> {
    match v.get("kind")?.as_str()? {
        "zero" => Ok(MemInit::Zero),
        "fill" => Ok(MemInit::Fill(v.get("word")?.as_u32()?)),
        "words" => Ok(MemInit::Words(
            v.get("words")?
                .as_array()?
                .iter()
                .map(gpa_json::Value::as_u32)
                .collect::<Result<_, _>>()?,
        )),
        "pattern" => Ok(MemInit::Pattern {
            seed: v.get("seed")?.as_u32()?,
        }),
        other => Err(wire_err(format!("unknown initializer kind `{other}`"))),
    }
}

fn mem_region_to_value(r: &MemRegionSpec) -> Value {
    let mut fields = vec![
        ("name", Value::from(r.name.as_str())),
        ("len", u64_value(r.len)),
        ("init", mem_init_to_value(&r.init)),
    ];
    if r.texture {
        fields.push(("texture", Value::from(true)));
    }
    if r.readback {
        fields.push(("readback", Value::from(true)));
    }
    obj(fields)
}

fn mem_region_from_value(v: &Value) -> Result<MemRegionSpec, ServiceError> {
    Ok(MemRegionSpec {
        name: v.get("name")?.as_str()?.to_owned(),
        len: v.get("len")?.as_u64()?,
        init: match v.get("init") {
            Ok(init) => mem_init_from_value(init)?,
            Err(_) => MemInit::Zero,
        },
        texture: match v.get("texture") {
            Ok(b) => b.as_bool()?,
            Err(_) => false,
        },
        readback: match v.get("readback") {
            Ok(b) => b.as_bool()?,
            Err(_) => false,
        },
    })
}

fn custom_to_value(c: &CustomKernel) -> Value {
    obj(vec![
        ("case", Value::from("custom")),
        ("asm", Value::from(c.asm.as_str())),
        ("launch", launch_to_value(c.launch)),
        (
            "params",
            Value::Array(c.params.iter().map(param_to_value).collect()),
        ),
        (
            "memory",
            Value::Array(c.memory.iter().map(mem_region_to_value).collect()),
        ),
    ])
}

fn custom_from_value(v: &Value) -> Result<CustomKernel, ServiceError> {
    Ok(CustomKernel {
        asm: v.get("asm")?.as_str()?.to_owned(),
        launch: launch_from_value(v.get("launch")?)?,
        params: match v.get("params") {
            Ok(params) => params
                .as_array()?
                .iter()
                .map(param_from_value)
                .collect::<Result<_, _>>()?,
            Err(_) => Vec::new(),
        },
        memory: match v.get("memory") {
            Ok(memory) => memory
                .as_array()?
                .iter()
                .map(mem_region_from_value)
                .collect::<Result<_, _>>()?,
            Err(_) => Vec::new(),
        },
    })
}

// ---- request ----

fn kernel_spec_to_value(k: &KernelSpec) -> Value {
    match *k {
        KernelSpec::Matmul { n, tile } => obj(vec![
            ("case", Value::from("matmul")),
            ("n", Value::from(n)),
            ("tile", Value::from(tile)),
        ]),
        KernelSpec::Tridiag { n, nsys, padded } => obj(vec![
            ("case", Value::from("tridiag")),
            ("n", Value::from(n)),
            ("nsys", Value::from(nsys)),
            ("padded", Value::from(padded)),
        ]),
        KernelSpec::Spmv {
            l,
            seed,
            format,
            texture,
        } => obj(vec![
            ("case", Value::from("spmv")),
            ("l", Value::from(l)),
            ("seed", Value::from(seed)),
            ("format", format_to_value(format)),
            ("texture", Value::from(texture)),
        ]),
        KernelSpec::Named { ref name, n, seed } => obj(vec![
            ("case", Value::from("named")),
            ("name", Value::from(name.as_str())),
            ("n", Value::from(n)),
            ("seed", Value::from(seed)),
        ]),
        KernelSpec::Custom(ref custom) => custom_to_value(custom),
    }
}

fn kernel_spec_from_value(v: &Value) -> Result<KernelSpec, ServiceError> {
    match v.get("case")?.as_str()? {
        "matmul" => Ok(KernelSpec::Matmul {
            n: v.get("n")?.as_u32()?,
            tile: v.get("tile")?.as_u32()?,
        }),
        "tridiag" => Ok(KernelSpec::Tridiag {
            n: v.get("n")?.as_u32()?,
            nsys: v.get("nsys")?.as_u32()?,
            padded: v.get("padded")?.as_bool()?,
        }),
        "spmv" => Ok(KernelSpec::Spmv {
            l: v.get("l")?.as_u32()?,
            seed: v.get("seed")?.as_u32()?,
            format: format_from_value(v.get("format")?)?,
            texture: v.get("texture")?.as_bool()?,
        }),
        "named" => {
            let name = v.get("name")?.as_str()?.to_owned();
            // `n` and `seed` are optional on the way in: the defaults
            // (the workload's default size, seed 1) keep the common
            // "analyze histogram" request a two-field object.
            let n = match v.get("n") {
                Ok(n) => n.as_u32()?,
                Err(_) => zoo::find(&name).map_or(0, |w| w.default_n),
            };
            let seed = match v.get("seed") {
                Ok(s) => s.as_u32()?,
                Err(_) => 1,
            };
            Ok(KernelSpec::Named { name, n, seed })
        }
        "custom" => Ok(KernelSpec::Custom(Box::new(custom_from_value(v)?))),
        other => Err(wire_err(format!("unknown case `{other}`"))),
    }
}

fn options_to_value(o: &AnalysisOptions) -> Value {
    let mut fields = Vec::new();
    if let Some(mode) = o.mode {
        fields.push(("mode", mode_to_value(mode)));
    }
    fields.push(("threads", threads_to_value(o.threads)));
    if let Some(fuel) = o.fuel {
        fields.push(("fuel", u64_value(fuel)));
    }
    fields.push(("verify", Value::from(o.verify)));
    fields.push((
        "what_ifs",
        Value::Array(
            o.what_ifs
                .iter()
                .copied()
                .map(what_if_spec_to_value)
                .collect(),
        ),
    ));
    fields.push(("calibration", effort_to_value(o.calibration)));
    obj(fields)
}

fn options_from_value(v: &Value) -> Result<AnalysisOptions, ServiceError> {
    let mut o = AnalysisOptions::default();
    if let Ok(mode) = v.get("mode") {
        o.mode = Some(mode_from_value(mode)?);
    }
    if let Ok(threads) = v.get("threads") {
        o.threads = threads_from_value(threads)?;
    }
    if let Ok(fuel) = v.get("fuel") {
        o.fuel = Some(fuel.as_u64()?);
    }
    if let Ok(verify) = v.get("verify") {
        o.verify = verify.as_bool()?;
    }
    if let Ok(what_ifs) = v.get("what_ifs") {
        o.what_ifs = what_ifs
            .as_array()?
            .iter()
            .map(what_if_spec_from_value)
            .collect::<Result<_, _>>()?;
    }
    if let Ok(c) = v.get("calibration") {
        o.calibration = effort_from_value(c)?;
    }
    Ok(o)
}

/// The canonical request JSON the report cache keys on: the wire form
/// of the request with `machine` replaced by the *resolved* machine
/// name (so every selector spelling of one machine shares a key) and
/// the answer-invariant options normalized out — `threads` to `"auto"`
/// (reports are bit-identical at every worker count) and `calibration`
/// to its default (explicitly calibrated analyzers ignore it, and the
/// cache key separately covers the actual calibration identity). See
/// [`crate::report_cache`] for the full contract.
pub(crate) fn canonical_request_json(
    kernel: &KernelSpec,
    machine_name: &str,
    options: &AnalysisOptions,
) -> String {
    let mut options = options.clone();
    options.threads = Threads::Auto;
    options.calibration = Effort::default();
    obj(vec![
        ("kernel", kernel_spec_to_value(kernel)),
        ("machine", Value::from(machine_name)),
        ("options", options_to_value(&options)),
    ])
    .to_string_pretty()
}

impl AnalysisRequest {
    /// The request as a `gpa_json` tree.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("kernel", kernel_spec_to_value(&self.kernel)),
            ("machine", Value::from(self.machine.as_str())),
            ("options", options_to_value(&self.options)),
        ])
    }

    /// Parse a request from a `gpa_json` tree. Missing `options` (or
    /// missing option fields) take their defaults.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] describing the malformed field.
    pub fn from_value(v: &Value) -> Result<AnalysisRequest, ServiceError> {
        let options = match v.get("options") {
            Ok(o) => options_from_value(o)?,
            Err(_) => AnalysisOptions::default(),
        };
        Ok(AnalysisRequest {
            kernel: kernel_spec_from_value(v.get("kernel")?)?,
            machine: v.get("machine")?.as_str()?.to_owned(),
            options,
        })
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    /// Parse from JSON text.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on parse or schema errors.
    pub fn from_json(text: &str) -> Result<AnalysisRequest, ServiceError> {
        AnalysisRequest::from_value(&Value::parse(text)?)
    }
}

// ---- report ----

fn times_to_value(t: &ComponentTimes) -> Value {
    obj(vec![
        ("instr", Value::from(t.instr)),
        ("smem", Value::from(t.smem)),
        ("gmem", Value::from(t.gmem)),
        ("atomic", Value::from(t.atomic)),
    ])
}

fn times_from_value(v: &Value) -> Result<ComponentTimes, ServiceError> {
    Ok(ComponentTimes {
        instr: v.get("instr")?.as_f64()?,
        smem: v.get("smem")?.as_f64()?,
        gmem: v.get("gmem")?.as_f64()?,
        atomic: v.get("atomic")?.as_f64()?,
    })
}

fn cause_to_value(c: &Cause) -> Value {
    match *c {
        Cause::LowComputationalDensity { density } => obj(vec![
            ("kind", Value::from("low-computational-density")),
            ("density", Value::from(density)),
        ]),
        Cause::ExpensiveInstructions { fraction } => obj(vec![
            ("kind", Value::from("expensive-instructions")),
            ("fraction", Value::from(fraction)),
        ]),
        Cause::InsufficientWarpsForPipeline { warps } => obj(vec![
            ("kind", Value::from("insufficient-warps-pipeline")),
            ("warps", Value::from(warps)),
        ]),
        Cause::BankConflicts { factor } => obj(vec![
            ("kind", Value::from("bank-conflicts")),
            ("factor", Value::from(factor)),
        ]),
        Cause::InsufficientWarpsForSharedMemory { warps } => obj(vec![
            ("kind", Value::from("insufficient-warps-smem")),
            ("warps", Value::from(warps)),
        ]),
        Cause::AtomicContention { factor } => obj(vec![
            ("kind", Value::from("atomic-contention")),
            ("factor", Value::from(factor)),
        ]),
        Cause::UncoalescedAccesses { efficiency } => obj(vec![
            ("kind", Value::from("uncoalesced-accesses")),
            ("efficiency", Value::from(efficiency)),
        ]),
        Cause::LargeTransactionGranularity { reduction_at_16b } => obj(vec![
            ("kind", Value::from("large-transaction-granularity")),
            ("reduction_at_16b", Value::from(reduction_at_16b)),
        ]),
        Cause::InsufficientMemoryParallelism { bandwidth_fraction } => obj(vec![
            ("kind", Value::from("insufficient-memory-parallelism")),
            ("bandwidth_fraction", Value::from(bandwidth_fraction)),
        ]),
    }
}

fn cause_from_value(v: &Value) -> Result<Cause, ServiceError> {
    match v.get("kind")?.as_str()? {
        "low-computational-density" => Ok(Cause::LowComputationalDensity {
            density: v.get("density")?.as_f64()?,
        }),
        "expensive-instructions" => Ok(Cause::ExpensiveInstructions {
            fraction: v.get("fraction")?.as_f64()?,
        }),
        "insufficient-warps-pipeline" => Ok(Cause::InsufficientWarpsForPipeline {
            warps: v.get("warps")?.as_u32()?,
        }),
        "bank-conflicts" => Ok(Cause::BankConflicts {
            factor: v.get("factor")?.as_f64()?,
        }),
        "insufficient-warps-smem" => Ok(Cause::InsufficientWarpsForSharedMemory {
            warps: v.get("warps")?.as_u32()?,
        }),
        "atomic-contention" => Ok(Cause::AtomicContention {
            factor: v.get("factor")?.as_f64()?,
        }),
        "uncoalesced-accesses" => Ok(Cause::UncoalescedAccesses {
            efficiency: v.get("efficiency")?.as_f64()?,
        }),
        "large-transaction-granularity" => Ok(Cause::LargeTransactionGranularity {
            reduction_at_16b: v.get("reduction_at_16b")?.as_f64()?,
        }),
        "insufficient-memory-parallelism" => Ok(Cause::InsufficientMemoryParallelism {
            bandwidth_fraction: v.get("bandwidth_fraction")?.as_f64()?,
        }),
        other => Err(wire_err(format!("unknown cause kind `{other}`"))),
    }
}

fn stage_to_value(s: &StageAnalysis) -> Value {
    obj(vec![
        ("stage", u64_value(s.stage as u64)),
        ("times", times_to_value(&s.times)),
        ("bottleneck", component_to_value(s.bottleneck)),
        ("warps_instr", Value::from(s.warps_instr)),
        ("warps_smem", Value::from(s.warps_smem)),
        ("instr_throughput", Value::from(s.instr_throughput)),
        ("smem_bandwidth", Value::from(s.smem_bandwidth)),
        ("gmem_bandwidth", Value::from(s.gmem_bandwidth)),
        (
            "causes",
            Value::Array(s.causes.iter().map(cause_to_value).collect()),
        ),
    ])
}

fn stage_from_value(v: &Value) -> Result<StageAnalysis, ServiceError> {
    Ok(StageAnalysis {
        stage: v.get("stage")?.as_u64()? as usize,
        times: times_from_value(v.get("times")?)?,
        bottleneck: component_from_value(v.get("bottleneck")?)?,
        warps_instr: v.get("warps_instr")?.as_u32()?,
        warps_smem: v.get("warps_smem")?.as_u32()?,
        instr_throughput: v.get("instr_throughput")?.as_f64()?,
        smem_bandwidth: v.get("smem_bandwidth")?.as_f64()?,
        gmem_bandwidth: v.get("gmem_bandwidth")?.as_f64()?,
        causes: v
            .get("causes")?
            .as_array()?
            .iter()
            .map(cause_from_value)
            .collect::<Result<_, _>>()?,
    })
}

fn analysis_to_value(a: &Analysis) -> Value {
    obj(vec![
        ("kernel_name", Value::from(a.kernel_name.as_str())),
        ("machine_name", Value::from(a.machine_name.as_str())),
        ("resident_blocks", Value::from(a.resident_blocks)),
        ("resident_warps", Value::from(a.resident_warps)),
        (
            "stages",
            Value::Array(a.stages.iter().map(stage_to_value).collect()),
        ),
        ("totals", times_to_value(&a.totals)),
        ("serialized_seconds", Value::from(a.serialized_seconds)),
        ("overlapped_seconds", Value::from(a.overlapped_seconds)),
        ("predicted_seconds", Value::from(a.predicted_seconds)),
        (
            "serialized_attribution",
            times_to_value(&a.serialized_attribution),
        ),
        ("bottleneck", component_to_value(a.bottleneck)),
        ("next_bottleneck", component_to_value(a.next_bottleneck)),
        (
            "computational_density",
            Value::from(a.computational_density),
        ),
        ("bank_conflict_factor", Value::from(a.bank_conflict_factor)),
        (
            "coalescing_efficiency",
            Value::from(a.coalescing_efficiency),
        ),
        (
            "atomic_contention_factor",
            Value::from(a.atomic_contention_factor),
        ),
    ])
}

fn analysis_from_value(v: &Value) -> Result<Analysis, ServiceError> {
    Ok(Analysis {
        kernel_name: v.get("kernel_name")?.as_str()?.to_owned(),
        machine_name: v.get("machine_name")?.as_str()?.to_owned(),
        resident_blocks: v.get("resident_blocks")?.as_u32()?,
        resident_warps: v.get("resident_warps")?.as_u32()?,
        stages: v
            .get("stages")?
            .as_array()?
            .iter()
            .map(stage_from_value)
            .collect::<Result<_, _>>()?,
        totals: times_from_value(v.get("totals")?)?,
        serialized_seconds: v.get("serialized_seconds")?.as_f64()?,
        overlapped_seconds: v.get("overlapped_seconds")?.as_f64()?,
        predicted_seconds: v.get("predicted_seconds")?.as_f64()?,
        serialized_attribution: times_from_value(v.get("serialized_attribution")?)?,
        bottleneck: component_from_value(v.get("bottleneck")?)?,
        next_bottleneck: component_from_value(v.get("next_bottleneck")?)?,
        computational_density: v.get("computational_density")?.as_f64()?,
        bank_conflict_factor: v.get("bank_conflict_factor")?.as_f64()?,
        coalescing_efficiency: v.get("coalescing_efficiency")?.as_f64()?,
        atomic_contention_factor: v.get("atomic_contention_factor")?.as_f64()?,
    })
}

fn region_to_value(r: &RegionTraffic) -> Value {
    obj(vec![
        ("name", Value::from(r.name.as_str())),
        ("transactions", u64_value(r.transactions)),
        ("bytes", u64_value(r.bytes)),
        ("requested_bytes", u64_value(r.requested_bytes)),
    ])
}

fn region_from_value(v: &Value) -> Result<RegionTraffic, ServiceError> {
    Ok(RegionTraffic {
        name: v.get("name")?.as_str()?.to_owned(),
        transactions: v.get("transactions")?.as_u64()?,
        bytes: v.get("bytes")?.as_u64()?,
        requested_bytes: v.get("requested_bytes")?.as_u64()?,
    })
}

fn what_if_to_value(w: &WhatIf) -> Value {
    obj(vec![
        ("name", Value::from(w.name.as_str())),
        ("description", Value::from(w.description.as_str())),
        ("baseline_seconds", Value::from(w.baseline_seconds)),
        ("predicted_seconds", Value::from(w.predicted_seconds)),
        ("speedup", Value::from(w.speedup)),
        ("new_bottleneck", component_to_value(w.new_bottleneck)),
    ])
}

fn readback_to_value(r: &RegionReadback) -> Value {
    obj(vec![
        ("name", Value::from(r.name.as_str())),
        (
            "words",
            Value::Array(r.words.iter().map(|w| Value::from(*w)).collect()),
        ),
    ])
}

fn readback_from_value(v: &Value) -> Result<RegionReadback, ServiceError> {
    Ok(RegionReadback {
        name: v.get("name")?.as_str()?.to_owned(),
        words: v
            .get("words")?
            .as_array()?
            .iter()
            .map(gpa_json::Value::as_u32)
            .collect::<Result<_, _>>()?,
    })
}

fn what_if_from_value(v: &Value) -> Result<WhatIf, ServiceError> {
    Ok(WhatIf {
        name: v.get("name")?.as_str()?.to_owned(),
        description: v.get("description")?.as_str()?.to_owned(),
        baseline_seconds: v.get("baseline_seconds")?.as_f64()?,
        predicted_seconds: v.get("predicted_seconds")?.as_f64()?,
        speedup: v.get("speedup")?.as_f64()?,
        new_bottleneck: component_from_value(v.get("new_bottleneck")?)?,
    })
}

impl AnalysisReport {
    /// The report as a `gpa_json` tree.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("kernel", Value::from(self.kernel.as_str())),
            ("machine", Value::from(self.machine.as_str())),
            ("analysis", analysis_to_value(&self.analysis)),
            ("measured_seconds", Value::from(self.measured_seconds)),
            ("measured_cycles", Value::from(self.measured_cycles)),
            ("flops", u64_value(self.flops)),
            (
                "regions",
                Value::Array(self.regions.iter().map(region_to_value).collect()),
            ),
            (
                "what_ifs",
                Value::Array(self.what_ifs.iter().map(what_if_to_value).collect()),
            ),
        ];
        if !self.outputs.is_empty() {
            fields.push((
                "outputs",
                Value::Array(self.outputs.iter().map(readback_to_value).collect()),
            ));
        }
        if let Some(v) = self.verified {
            fields.push(("verified", Value::from(v)));
        }
        obj(fields)
    }

    /// Parse a report from a `gpa_json` tree.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] describing the malformed field.
    pub fn from_value(v: &Value) -> Result<AnalysisReport, ServiceError> {
        Ok(AnalysisReport {
            kernel: v.get("kernel")?.as_str()?.to_owned(),
            machine: v.get("machine")?.as_str()?.to_owned(),
            analysis: analysis_from_value(v.get("analysis")?)?,
            measured_seconds: v.get("measured_seconds")?.as_f64()?,
            measured_cycles: v.get("measured_cycles")?.as_f64()?,
            flops: v.get("flops")?.as_u64()?,
            regions: v
                .get("regions")?
                .as_array()?
                .iter()
                .map(region_from_value)
                .collect::<Result<_, _>>()?,
            what_ifs: v
                .get("what_ifs")?
                .as_array()?
                .iter()
                .map(what_if_from_value)
                .collect::<Result<_, _>>()?,
            outputs: match v.get("outputs") {
                Ok(outputs) => outputs
                    .as_array()?
                    .iter()
                    .map(readback_from_value)
                    .collect::<Result<_, _>>()?,
                Err(_) => Vec::new(),
            },
            verified: match v.get("verified") {
                Ok(b) => Some(b.as_bool()?),
                Err(_) => None,
            },
        })
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    /// Parse from JSON text.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] on parse or schema errors.
    pub fn from_json(text: &str) -> Result<AnalysisReport, ServiceError> {
        AnalysisReport::from_value(&Value::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalysisOptions;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = AnalysisRequest::from_json(
            r#"{"kernel": {"case": "matmul", "n": 256, "tile": 16}, "machine": "gtx285"}"#,
        )
        .unwrap();
        assert_eq!(req.kernel, KernelSpec::Matmul { n: 256, tile: 16 });
        assert_eq!(req.machine, "gtx285");
        assert_eq!(req.options, AnalysisOptions::default());
    }

    #[test]
    fn request_round_trips_all_fields() {
        let req = AnalysisRequest {
            kernel: KernelSpec::Spmv {
                l: 4,
                seed: 42,
                format: Format::BellImIv,
                texture: true,
            },
            machine: "GeForce 8800 GT".into(),
            options: AnalysisOptions {
                mode: Some(TraceMode::Homogeneous),
                threads: Threads::Fixed(3),
                fuel: Some(1_000_000),
                verify: true,
                what_ifs: vec![
                    WhatIfSpec::NoBankConflicts,
                    WhatIfSpec::MaxBlocks(16),
                    WhatIfSpec::Granularity16,
                ],
                calibration: Effort::Paper,
            },
        };
        let json = req.to_json();
        let back = AnalysisRequest::from_json(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn degenerate_thread_selections_round_trip_semantically() {
        // Fixed(0) resolves to one worker; it serializes as 1 (0 is the
        // legacy "auto" wire encoding) and parses back as Fixed(1).
        let mut req = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
        req.options.threads = Threads::Fixed(0);
        let back = AnalysisRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.options.threads, Threads::Fixed(1));
        assert_eq!(back.options.threads.count(), req.options.threads.count());
        // And the explicit auto string plus the legacy 0 both mean Auto.
        for json in [
            r#"{"kernel": {"case": "matmul", "n": 64, "tile": 16}, "machine": "x", "options": {"threads": "auto"}}"#,
            r#"{"kernel": {"case": "matmul", "n": 64, "tile": 16}, "machine": "x", "options": {"threads": 0}}"#,
        ] {
            let parsed = AnalysisRequest::from_json(json).unwrap();
            assert_eq!(parsed.options.threads, Threads::Auto);
        }
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        for bad in [
            "",
            "{",
            r#"{"machine": "gtx285"}"#,
            r#"{"kernel": {"case": "nope"}, "machine": "x"}"#,
            r#"{"kernel": {"case": "matmul", "n": 1.5, "tile": 16}, "machine": "x"}"#,
            r#"{"kernel": {"case": "matmul", "n": 64, "tile": 16}, "machine": "x", "options": {"threads": true}}"#,
            r#"{"kernel": {"case": "matmul", "n": 64, "tile": 16}, "machine": "x", "options": {"what_ifs": [{"kind": "warp-drive"}]}}"#,
        ] {
            assert!(
                matches!(AnalysisRequest::from_json(bad), Err(ServiceError::Wire(_))),
                "accepted: {bad}"
            );
        }
    }
}
