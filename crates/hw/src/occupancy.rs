//! Occupancy calculator: how many blocks and warps fit on one SM.
//!
//! Reproduces paper Table 2. A kernel's per-thread register demand, per-block
//! shared-memory demand, and block size each impose a ceiling on the number
//! of resident blocks; the binding ceiling is the [`Limiter`].

use crate::machine::Machine;
use std::fmt;

/// Static resource demands of a kernel launch, as reported by the compiler
/// (paper Figure 1: "Register, shared memory usage" flows from NVCC into the
/// occupancy computation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelResources {
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Shared-memory bytes per block (including the parameter/bookkeeping
    /// area the driver reserves in shared memory on GT200).
    pub smem_per_block: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl KernelResources {
    /// Convenience constructor.
    pub fn new(regs_per_thread: u32, smem_per_block: u32, threads_per_block: u32) -> Self {
        KernelResources {
            regs_per_thread,
            smem_per_block,
            threads_per_block,
        }
    }
}

/// Which hardware ceiling binds the number of resident blocks (paper §4.1
/// lists the five ceilings: registers, shared memory, threads, blocks, warps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limiter {
    /// The 16384-register file.
    Registers,
    /// The 16 KB shared memory.
    SharedMemory,
    /// The resident-thread ceiling (1024 threads / 32 warps per SM).
    Threads,
    /// The 8-resident-block ceiling.
    Blocks,
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Limiter::Registers => "registers",
            Limiter::SharedMemory => "shared memory",
            Limiter::Threads => "threads/warps",
            Limiter::Blocks => "resident-block limit",
        };
        f.write_str(s)
    }
}

/// Result of the occupancy computation for one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Occupancy {
    /// Ceiling imposed by the register file alone.
    pub blocks_by_regs: u32,
    /// Ceiling imposed by shared memory alone.
    pub blocks_by_smem: u32,
    /// Ceiling imposed by resident threads/warps alone.
    pub blocks_by_threads: u32,
    /// Hardware resident-block ceiling.
    pub blocks_by_limit: u32,
    /// Resident blocks: the minimum of the four ceilings.
    pub blocks: u32,
    /// Warps per block (threads rounded up to whole warps).
    pub warps_per_block: u32,
    /// Active warps per SM = `blocks · warps_per_block`.
    pub active_warps: u32,
    /// The binding ceiling.
    pub limiter: Limiter,
}

impl Occupancy {
    /// Fraction of the SM's warp capacity in use, `0.0..=1.0`.
    pub fn fraction(&self, machine: &Machine) -> f64 {
        f64::from(self.active_warps) / f64::from(machine.max_warps_per_sm)
    }
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} block(s)/SM ({} warps), limited by {}",
            self.blocks, self.active_warps, self.limiter
        )
    }
}

/// Compute how many blocks of a kernel fit on one SM (paper Table 2).
///
/// Register footprints are allocated per block in units of
/// [`Machine::reg_alloc_unit`] registers, as on real GT200 hardware.
///
/// # Panics
///
/// Panics if `res.threads_per_block` is zero or exceeds
/// `machine.max_threads_per_block`.
///
/// # Example
///
/// ```
/// use gpa_hw::{occupancy, KernelResources, Machine};
///
/// // Paper Table 2, 16×16 sub-matrix row: 30 regs, 1088 B smem, 64 threads.
/// let occ = occupancy(&Machine::gtx285(), KernelResources::new(30, 1088, 64));
/// assert_eq!(occ.blocks, 8);
/// assert_eq!(occ.active_warps, 16);
/// ```
pub fn occupancy(machine: &Machine, res: KernelResources) -> Occupancy {
    assert!(res.threads_per_block > 0, "block size must be positive");
    assert!(
        res.threads_per_block <= machine.max_threads_per_block,
        "block size {} exceeds the hardware maximum {}",
        res.threads_per_block,
        machine.max_threads_per_block
    );

    let warps_per_block = machine.warps_for_threads(res.threads_per_block);

    let blocks_by_regs = if res.regs_per_thread == 0 {
        machine.max_blocks_per_sm
    } else {
        let raw = res.regs_per_thread * warps_per_block * machine.warp_size;
        let unit = machine.reg_alloc_unit.max(1);
        let per_block = raw.div_ceil(unit) * unit;
        machine.regs_per_sm / per_block
    };

    let blocks_by_smem = machine
        .smem_per_sm
        .checked_div(res.smem_per_block)
        .unwrap_or(machine.max_blocks_per_sm);

    let blocks_by_threads = (machine.max_threads_per_sm / res.threads_per_block)
        .min(machine.max_warps_per_sm / warps_per_block);

    let blocks_by_limit = machine.max_blocks_per_sm;

    let blocks = blocks_by_regs
        .min(blocks_by_smem)
        .min(blocks_by_threads)
        .min(blocks_by_limit);

    // Report the first binding limiter in the paper's order of discussion.
    let limiter = if blocks == blocks_by_regs && blocks < blocks_by_limit {
        Limiter::Registers
    } else if blocks == blocks_by_smem && blocks < blocks_by_limit {
        Limiter::SharedMemory
    } else if blocks == blocks_by_threads && blocks < blocks_by_limit {
        Limiter::Threads
    } else {
        Limiter::Blocks
    };

    Occupancy {
        blocks_by_regs,
        blocks_by_smem,
        blocks_by_threads,
        blocks_by_limit,
        blocks,
        warps_per_block,
        active_warps: blocks * warps_per_block,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m() -> Machine {
        Machine::gtx285()
    }

    // ---- Paper Table 2 rows (dense matrix multiply, 64-thread blocks) ----

    #[test]
    fn table2_8x8_submatrix() {
        // 16 regs, 348 B smem: min(16, 47, 8) = 8 blocks, 16 warps.
        let occ = occupancy(&m(), KernelResources::new(16, 348, 64));
        assert_eq!(occ.blocks_by_regs, 16);
        assert_eq!(occ.blocks_by_smem, 47);
        assert_eq!(occ.blocks, 8);
        assert_eq!(occ.active_warps, 16);
        assert_eq!(occ.limiter, Limiter::Blocks);
    }

    #[test]
    fn table2_16x16_submatrix() {
        // 30 regs, 1088 B smem: min(8, 15, 8) = 8 blocks, 16 warps.
        let occ = occupancy(&m(), KernelResources::new(30, 1088, 64));
        assert_eq!(occ.blocks_by_regs, 8);
        assert_eq!(occ.blocks_by_smem, 15);
        assert_eq!(occ.blocks, 8);
        assert_eq!(occ.active_warps, 16);
    }

    #[test]
    fn table2_32x32_submatrix() {
        // 58 regs, 4284 B smem. The paper's register column says 3; the
        // standard GT200 allocation rule (512-register units) gives 4, but
        // shared memory also gives 3, so the resulting occupancy — 3 blocks,
        // 6 warps — matches the paper exactly. See EXPERIMENTS.md.
        let occ = occupancy(&m(), KernelResources::new(58, 4284, 64));
        assert_eq!(occ.blocks_by_smem, 3);
        assert_eq!(occ.blocks, 3);
        assert_eq!(occ.active_warps, 6);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    // ---- Tridiagonal solver: one 8 KB block per SM (paper §5.2) ----

    #[test]
    fn cyclic_reduction_fits_one_block() {
        // 512-equation system: 4 arrays × 512 × 4 B = 8 KB, plus the
        // parameter area; only one block fits.
        let occ = occupancy(&m(), KernelResources::new(12, 8192 + 256, 256));
        assert_eq!(occ.blocks, 1);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    // ---- Unit behaviours ----

    #[test]
    fn zero_resource_kernel_is_block_limited() {
        let occ = occupancy(&m(), KernelResources::new(0, 0, 64));
        assert_eq!(occ.blocks, 8);
        assert_eq!(occ.limiter, Limiter::Blocks);
    }

    #[test]
    fn warp_limit_binds_large_blocks() {
        // 512-thread blocks = 16 warps; 1024 threads/SM → 2 blocks.
        let occ = occupancy(&m(), KernelResources::new(8, 16, 512));
        assert_eq!(occ.blocks_by_threads, 2);
        assert_eq!(occ.blocks, 2);
        assert_eq!(occ.active_warps, 32);
        assert_eq!(occ.limiter, Limiter::Threads);
    }

    #[test]
    fn register_rounding_uses_alloc_unit() {
        // 58 regs × 64 threads = 3712, rounded to 4096 → 4 blocks.
        let occ = occupancy(&m(), KernelResources::new(58, 0, 64));
        assert_eq!(occ.blocks_by_regs, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the hardware maximum")]
    fn oversized_block_panics() {
        occupancy(&m(), KernelResources::new(8, 0, 1024));
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn empty_block_panics() {
        occupancy(&m(), KernelResources::new(8, 0, 0));
    }

    #[test]
    fn display_is_informative() {
        let occ = occupancy(&m(), KernelResources::new(30, 1088, 64));
        let s = format!("{occ}");
        assert!(s.contains("8 block"));
        assert!(s.contains("16 warps"));
    }

    // ---- Properties ----

    proptest! {
        /// More registers per thread never increases occupancy.
        #[test]
        fn monotone_in_registers(r1 in 1u32..128, r2 in 1u32..128,
                                 smem in 0u32..16384, threads in 1u32..=512) {
            let (lo, hi) = (r1.min(r2), r1.max(r2));
            let a = occupancy(&m(), KernelResources::new(lo, smem, threads));
            let b = occupancy(&m(), KernelResources::new(hi, smem, threads));
            prop_assert!(b.blocks <= a.blocks);
        }

        /// More shared memory per block never increases occupancy.
        #[test]
        fn monotone_in_smem(regs in 1u32..64, s1 in 0u32..16384, s2 in 0u32..16384,
                            threads in 1u32..=512) {
            let (lo, hi) = (s1.min(s2), s1.max(s2));
            let a = occupancy(&m(), KernelResources::new(regs, lo, threads));
            let b = occupancy(&m(), KernelResources::new(regs, hi, threads));
            prop_assert!(b.blocks <= a.blocks);
        }

        /// The result never exceeds any individual ceiling, and active warps
        /// never exceed the hardware warp limit.
        #[test]
        fn respects_all_ceilings(regs in 0u32..256, smem in 0u32..32768,
                                 threads in 1u32..=512) {
            let occ = occupancy(&m(), KernelResources::new(regs, smem, threads));
            prop_assert!(occ.blocks <= occ.blocks_by_regs);
            prop_assert!(occ.blocks <= occ.blocks_by_smem);
            prop_assert!(occ.blocks <= occ.blocks_by_threads);
            prop_assert!(occ.blocks <= m().max_blocks_per_sm);
            prop_assert!(occ.active_warps <= m().max_warps_per_sm);
            prop_assert!(occ.fraction(&m()) <= 1.0);
        }
    }
}

#[cfg(test)]
mod sku_tests {
    //! Occupancy sanity per paper-Table-3 SKU: the G92 parts differ from
    //! the GTX 285 in register file (8192, 256-unit allocation) and
    //! residency ceilings (768 threads / 24 warps), so the same kernel
    //! footprint occupies them differently.

    use super::*;

    #[test]
    fn matmul_16x16_footprint_across_skus() {
        // Paper Table 2's 16×16 row: 30 regs, 1088 B, 64 threads.
        let res = KernelResources::new(30, 1088, 64);
        let on_gt200 = occupancy(&Machine::gtx285(), res);
        assert_eq!(on_gt200.blocks, 8);
        assert_eq!(on_gt200.active_warps, 16);
        // G92: 30 regs × 2 warps × 32 lanes = 1920 → 2048 in 256-register
        // units → 8192 / 2048 = 4 blocks; registers bind.
        for g92 in [Machine::geforce_8800gt(), Machine::geforce_9800gtx()] {
            let occ = occupancy(&g92, res);
            assert_eq!(occ.blocks_by_regs, 4, "{}", g92.name);
            assert_eq!(occ.blocks, 4, "{}", g92.name);
            assert_eq!(occ.active_warps, 8, "{}", g92.name);
            assert_eq!(occ.limiter, Limiter::Registers, "{}", g92.name);
        }
    }

    #[test]
    fn g92_warp_ceiling_binds_at_24_warps() {
        // 256-thread blocks, tiny footprint: GTX 285 fits 4 blocks
        // (32 warps); G92 only 3 (768-thread / 24-warp ceiling).
        let res = KernelResources::new(4, 0, 256);
        assert_eq!(occupancy(&Machine::gtx285(), res).active_warps, 32);
        for g92 in [Machine::geforce_8800gt(), Machine::geforce_9800gtx()] {
            let occ = occupancy(&g92, res);
            assert_eq!(occ.blocks, 3, "{}", g92.name);
            assert_eq!(occ.active_warps, 24, "{}", g92.name);
            assert_eq!(occ.limiter, Limiter::Threads, "{}", g92.name);
            assert!((occ.fraction(&g92) - 1.0).abs() < 1e-12, "{}", g92.name);
        }
    }

    #[test]
    fn every_sku_respects_its_own_ceilings() {
        for m in Machine::paper_table3() {
            for (regs, smem, threads) in
                [(0, 0, 64), (16, 2048, 128), (32, 8448, 256), (60, 4284, 64)]
            {
                let occ = occupancy(&m, KernelResources::new(regs, smem, threads));
                assert!(occ.blocks <= m.max_blocks_per_sm, "{}", m.name);
                assert!(occ.active_warps <= m.max_warps_per_sm, "{}", m.name);
                assert!(
                    occ.blocks * threads <= m.max_threads_per_sm || occ.blocks == 0,
                    "{}",
                    m.name
                );
                assert!(occ.fraction(&m) <= 1.0, "{}", m.name);
            }
        }
    }

    #[test]
    fn g92_register_file_cliff() {
        // 8192 registers: a 512-thread block at 16 regs/thread consumes
        // exactly the G92 file (16 × 16 warps × 32 = 8192) → one block.
        let res = KernelResources::new(16, 0, 512);
        let occ = occupancy(&Machine::geforce_8800gt(), res);
        assert_eq!(occ.blocks_by_regs, 1);
        assert_eq!(occ.blocks, 1);
        // One more register per thread and nothing fits.
        let over = occupancy(&Machine::geforce_8800gt(), KernelResources::new(17, 0, 512));
        assert_eq!(over.blocks, 0);
        // The same footprint fits two blocks on GT200's 16384-register file.
        assert_eq!(occupancy(&Machine::gtx285(), res).blocks_by_regs, 2);
    }
}

#[cfg(test)]
mod boundary_tests {
    //! Exact-boundary behaviour of each ceiling: the register allocation
    //! cliff at the 512-register unit, shared memory at and just past an
    //! exact divisor of the 16 KB SM budget, the thread/warp ceiling, and
    //! the 8-resident-block hardware limit.

    use super::*;

    fn m() -> Machine {
        Machine::gtx285()
    }

    #[test]
    fn register_alloc_unit_cliff() {
        // 64-thread blocks = 2 warps: the per-block footprint is
        // regs × 2 × 32, rounded up to a 512-register unit.
        // 8 regs → exactly 512 → 32 blocks by registers.
        let at_unit = occupancy(&m(), KernelResources::new(8, 0, 64));
        assert_eq!(at_unit.blocks_by_regs, 32);
        // One more register crosses into the next unit: 576 → 1024 → 16.
        let past_unit = occupancy(&m(), KernelResources::new(9, 0, 64));
        assert_eq!(past_unit.blocks_by_regs, 16);
    }

    #[test]
    fn register_file_exactly_consumed_by_one_block() {
        // 512-thread block, 32 regs/thread: 32 × 16 warps × 32 lanes =
        // 16384 = the whole file → exactly one block.
        let fits = occupancy(&m(), KernelResources::new(32, 0, 512));
        assert_eq!(fits.blocks_by_regs, 1);
        assert_eq!(fits.blocks, 1);
        assert_eq!(fits.limiter, Limiter::Registers);
        // One more register and no block fits at all.
        let too_big = occupancy(&m(), KernelResources::new(33, 0, 512));
        assert_eq!(too_big.blocks_by_regs, 0);
        assert_eq!(too_big.blocks, 0);
        assert_eq!(too_big.active_warps, 0);
    }

    #[test]
    fn smem_boundary_at_exact_divisor() {
        // 2048 B divides 16 KB exactly 8 ways — the block limit binds, not
        // shared memory.
        let exact = occupancy(&m(), KernelResources::new(4, 2048, 64));
        assert_eq!(exact.blocks_by_smem, 8);
        assert_eq!(exact.blocks, 8);
        assert_eq!(exact.limiter, Limiter::Blocks);
        // One byte more drops the smem ceiling to 7 and makes it binding.
        let over = occupancy(&m(), KernelResources::new(4, 2049, 64));
        assert_eq!(over.blocks_by_smem, 7);
        assert_eq!(over.blocks, 7);
        assert_eq!(over.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn smem_larger_than_sm_fits_no_block() {
        let occ = occupancy(&m(), KernelResources::new(4, 16_385, 64));
        assert_eq!(occ.blocks, 0);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn thread_ceiling_binds_exactly_at_sm_capacity() {
        // 128-thread blocks: 8 × 128 = 1024 threads — the thread ceiling
        // equals the block limit, which is reported as the limiter.
        let exact = occupancy(&m(), KernelResources::new(4, 0, 128));
        assert_eq!(exact.blocks_by_threads, 8);
        assert_eq!(exact.blocks, 8);
        assert_eq!(exact.active_warps, 32);
        assert_eq!(exact.limiter, Limiter::Blocks);
        // 256-thread blocks: only 4 fit → threads become the limiter.
        let bound = occupancy(&m(), KernelResources::new(4, 0, 256));
        assert_eq!(bound.blocks_by_threads, 4);
        assert_eq!(bound.blocks, 4);
        assert_eq!(bound.limiter, Limiter::Threads);
    }

    #[test]
    fn partial_warps_round_up() {
        // 33 threads occupy two warps; 8 resident blocks → 16 warps.
        let occ = occupancy(&m(), KernelResources::new(4, 0, 33));
        assert_eq!(occ.warps_per_block, 2);
        assert_eq!(occ.blocks, 8);
        assert_eq!(occ.active_warps, 16);
    }

    #[test]
    fn fraction_matches_table2_rows() {
        // Paper Table 2 occupancy column: 16, 16, and 6 warps of 32.
        let m = m();
        let rows = [
            (KernelResources::new(16, 348, 64), 0.5),
            (KernelResources::new(30, 1088, 64), 0.5),
            (KernelResources::new(58, 4284, 64), 0.1875),
        ];
        for (res, expected) in rows {
            let occ = occupancy(&m, res);
            assert!(
                (occ.fraction(&m) - expected).abs() < 1e-12,
                "{res:?}: {}",
                occ.fraction(&m)
            );
        }
    }
}
