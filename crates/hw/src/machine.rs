//! The machine description: an NVIDIA GTX 285 (GT200) and its peak rates.

use std::fmt;

/// Instruction classes of paper Table 1, grouped by how many functional
/// units per streaming multiprocessor can execute the instruction.
///
/// | Class | FUs/SM | Example instructions |
/// |-------|--------|----------------------|
/// | I     | 10     | `mul` (8 FPUs + 2 SFU multipliers) |
/// | II    | 8      | `mov`, `add`, `mad` |
/// | III   | 4      | `sin`, `cos`, `lg2`, `rcp` |
/// | IV    | 1      | double-precision floating point |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Single-precision multiply: 10 functional units (8 FPU + 2 SFU).
    TypeI,
    /// The common case (`mov`/`add`/`mad`, integer and logic): 8 FPUs.
    TypeII,
    /// Transcendentals on the special-function units: 4 lanes.
    TypeIII,
    /// Double precision: a single unit per SM.
    TypeIV,
}

impl InstrClass {
    /// All four classes, in Table 1 order.
    pub const ALL: [InstrClass; 4] = [
        InstrClass::TypeI,
        InstrClass::TypeII,
        InstrClass::TypeIII,
        InstrClass::TypeIV,
    ];

    /// Index 0..4, usable for dense per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            InstrClass::TypeI => 0,
            InstrClass::TypeII => 1,
            InstrClass::TypeIII => 2,
            InstrClass::TypeIV => 3,
        }
    }

    /// Inverse of [`InstrClass::index`]. Returns `None` for `i >= 4`.
    pub fn from_index(i: usize) -> Option<InstrClass> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::TypeI => "Type I",
            InstrClass::TypeII => "Type II",
            InstrClass::TypeIII => "Type III",
            InstrClass::TypeIV => "Type IV",
        };
        f.write_str(s)
    }
}

/// Identifier of a streaming multiprocessor, `0..machine.num_sms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmId(pub u32);

/// Identifier of a TPC cluster (3 SMs sharing one memory pipeline on GT200),
/// `0..machine.num_clusters`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TPC{}", self.0)
    }
}

/// Description of a GT200-class GPU.
///
/// All fields are public: this is a passive record of hardware facts, and
/// experiments deliberately construct perturbed machines (e.g. "what if the
/// SM allowed 16 resident blocks?", paper §5.1) by mutating a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Marketing name, e.g. `"GeForce GTX 285"`.
    pub name: String,
    /// Shader (core) clock in Hz. GTX 285: 1.476 GHz; the paper rounds to
    /// 1.48 GHz and so do we, to reproduce its arithmetic exactly.
    pub clock_hz: f64,
    /// Number of streaming multiprocessors. GTX 285: 30.
    pub num_sms: u32,
    /// SMs per TPC cluster sharing one memory pipeline. GT200: 3.
    pub sms_per_cluster: u32,
    /// Threads per warp. 32 on all CUDA hardware of this era.
    pub warp_size: u32,
    /// Threads per half-warp: the granularity at which shared- and
    /// global-memory transactions are issued on GT200 (paper §4.3).
    pub half_warp: u32,
    /// Functional units per SM able to run each [`InstrClass`]
    /// (paper Table 1): `[10, 8, 4, 1]`.
    pub fus_per_class: [u32; 4],
    /// 32-bit registers per SM. GT200: 16384.
    pub regs_per_sm: u32,
    /// Register-file allocation granularity in registers per block.
    /// GT200 allocates block register footprints in 512-register chunks.
    pub reg_alloc_unit: u32,
    /// Bytes of shared memory per SM. GT200: 16 KiB.
    pub smem_per_sm: u32,
    /// Shared memory banks per SM. GT200: 16.
    pub smem_banks: u32,
    /// Width of one shared-memory bank in bytes. GT200: 4.
    pub smem_bank_width: u32,
    /// Maximum threads per block. GT200: 512.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM. GT200: 1024.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM. GT200: 8.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM. GT200: 32.
    pub max_warps_per_sm: u32,
    /// Effective DRAM clock in Hz. GTX 285: 2.484 GHz (GDDR3 data rate).
    pub mem_clock_hz: f64,
    /// DRAM bus width in bits. GTX 285: 512.
    pub mem_bus_bits: u32,
    /// Global-memory transaction sizes supported by the coalescer, bytes,
    /// ascending. GT200: 32, 64, 128 (paper §4.3: minimum segment 32 B).
    pub gmem_segment_sizes: [u32; 3],
}

impl Machine {
    /// The machine studied by the paper: an NVIDIA GeForce GTX 285.
    pub fn gtx285() -> Machine {
        Machine {
            name: "GeForce GTX 285".to_owned(),
            clock_hz: 1.48e9,
            num_sms: 30,
            sms_per_cluster: 3,
            warp_size: 32,
            half_warp: 16,
            fus_per_class: [10, 8, 4, 1],
            regs_per_sm: 16_384,
            reg_alloc_unit: 512,
            smem_per_sm: 16_384,
            smem_banks: 16,
            smem_bank_width: 4,
            max_threads_per_block: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 32,
            mem_clock_hz: 2.484e9,
            mem_bus_bits: 512,
            gmem_segment_sizes: [32, 64, 128],
        }
    }

    /// The GeForce 8800 GT (G92, 112 SPs = 14 SMs) of paper Table 3.
    ///
    /// G92 differences from GT200 that matter to the model: two SMs per
    /// TPC cluster, an 8192-register file allocated in 256-register
    /// units, a 768-thread / 24-warp residency ceiling, and a 256-bit
    /// GDDR3 bus. G92 has no dedicated double-precision unit; Type IV is
    /// kept at one notional unit so double-precision estimates stay
    /// finite (real G92 software-emulates doubles far slower still).
    pub fn geforce_8800gt() -> Machine {
        Machine {
            name: "GeForce 8800 GT".to_owned(),
            clock_hz: 1.5e9,
            num_sms: 14,
            sms_per_cluster: 2,
            warp_size: 32,
            half_warp: 16,
            fus_per_class: [10, 8, 4, 1],
            regs_per_sm: 8192,
            reg_alloc_unit: 256,
            smem_per_sm: 16_384,
            smem_banks: 16,
            smem_bank_width: 4,
            max_threads_per_block: 512,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 24,
            mem_clock_hz: 1.8e9,
            mem_bus_bits: 256,
            gmem_segment_sizes: [32, 64, 128],
        }
    }

    /// The GeForce 9800 GTX (G92, 128 SPs = 16 SMs) of paper Table 3:
    /// the same G92 architecture as [`Machine::geforce_8800gt`] with two
    /// more SMs, a faster shader clock, and faster GDDR3.
    pub fn geforce_9800gtx() -> Machine {
        Machine {
            num_sms: 16,
            clock_hz: 1.688e9,
            mem_clock_hz: 2.2e9,
            name: "GeForce 9800 GTX".to_owned(),
            ..Machine::geforce_8800gt()
        }
    }

    /// The three SKUs of paper Table 3, flagship first — the sweep list
    /// for cross-GPU validation runs.
    pub fn paper_table3() -> [Machine; 3] {
        [
            Machine::gtx285(),
            Machine::geforce_9800gtx(),
            Machine::geforce_8800gt(),
        ]
    }

    /// Number of TPC clusters (`num_sms / sms_per_cluster`). GTX 285: 10.
    #[inline]
    pub fn num_clusters(&self) -> u32 {
        self.num_sms / self.sms_per_cluster
    }

    /// Cluster that a given SM belongs to. Blocks are scheduled to clusters
    /// round-robin (paper Figure 3's sawtooth has period `num_clusters`).
    #[inline]
    pub fn cluster_of(&self, sm: SmId) -> ClusterId {
        ClusterId(sm.0 / self.sms_per_cluster)
    }

    /// Number of functional units per SM for an instruction class.
    #[inline]
    pub fn fus(&self, class: InstrClass) -> u32 {
        self.fus_per_class[class.index()]
    }

    /// Theoretical peak *warp-level* instruction throughput for a class,
    /// in instructions per second over the whole GPU (paper §4.1):
    ///
    /// ```text
    /// numberFunctionalUnits · frequency · numberSM / warpSize
    /// ```
    ///
    /// For Type II (MAD) on the GTX 285 this is 11.1 G warp-instructions/s.
    pub fn peak_warp_instruction_throughput(&self, class: InstrClass) -> f64 {
        self.fus(class) as f64 * self.clock_hz * self.num_sms as f64 / self.warp_size as f64
    }

    /// Theoretical peak single-precision rate via MAD, in FLOP/s
    /// (paper §4.1: 11.1 G · 32 · 2 = 710.4 GFLOPS on the GTX 285).
    pub fn peak_flops_sp(&self) -> f64 {
        self.peak_warp_instruction_throughput(InstrClass::TypeII) * self.warp_size as f64 * 2.0
    }

    /// Theoretical peak shared-memory bandwidth in bytes/s (paper §4.2):
    ///
    /// ```text
    /// numberSP · numberSM · frequency · 4 B  =  1420 GB/s on the GTX 285
    /// ```
    pub fn peak_shared_bandwidth(&self) -> f64 {
        self.fus(InstrClass::TypeII) as f64
            * self.num_sms as f64
            * self.clock_hz
            * self.smem_bank_width as f64
    }

    /// Theoretical peak global-memory bandwidth in bytes/s (paper §4.3):
    ///
    /// ```text
    /// memoryFrequency · busWidth / 8  =  159 GB/s on the GTX 285
    /// ```
    pub fn peak_global_bandwidth(&self) -> f64 {
        self.mem_clock_hz * self.mem_bus_bits as f64 / 8.0
    }

    /// Bytes moved by one conflict-free warp-wide shared-memory access
    /// (32 lanes × 4 B = 128 B). This is the unit in which the paper
    /// counts shared-memory transactions.
    #[inline]
    pub fn warp_access_bytes(&self) -> u32 {
        self.warp_size * self.smem_bank_width
    }

    /// Warps needed to hold `threads` threads (rounded up; a partial warp
    /// still occupies a whole warp — paper §2).
    #[inline]
    pub fn warps_for_threads(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::gtx285()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs @ {:.2} GHz, {:.1} GB/s DRAM)",
            self.name,
            self.num_sms,
            self.clock_hz / 1e9,
            self.peak_global_bandwidth() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_functional_unit_counts() {
        let m = Machine::gtx285();
        assert_eq!(m.fus(InstrClass::TypeI), 10);
        assert_eq!(m.fus(InstrClass::TypeII), 8);
        assert_eq!(m.fus(InstrClass::TypeIII), 4);
        assert_eq!(m.fus(InstrClass::TypeIV), 1);
    }

    #[test]
    fn paper_peak_mad_throughput_is_11_1_ginstr() {
        // §4.1: 8 · 1.48 GHz · 30 / 32 = 11.1 Giga instructions/s.
        let m = Machine::gtx285();
        let peak = m.peak_warp_instruction_throughput(InstrClass::TypeII);
        assert!((peak - 11.1e9).abs() < 1e7, "got {peak}");
    }

    #[test]
    fn paper_peak_flops_is_710_4_gflops() {
        // §4.1: 11.1 · 32 · 2 = 710.4 GFLOPS.
        let m = Machine::gtx285();
        assert!((m.peak_flops_sp() - 710.4e9).abs() < 1e8);
    }

    #[test]
    fn paper_peak_shared_bandwidth_is_1420_gb() {
        // §4.2: 1.48 GHz · 8 · 30 · 4 B = 1420.8 GB/s.
        let m = Machine::gtx285();
        assert!((m.peak_shared_bandwidth() - 1420.8e9).abs() < 1e8);
    }

    #[test]
    fn paper_peak_global_bandwidth_is_160_gb() {
        // §4.3: 2.484 GHz · 512 bits / 8 = 158.976 GB/s (the paper says "160").
        let m = Machine::gtx285();
        assert!((m.peak_global_bandwidth() - 158.976e9).abs() < 1e6);
    }

    #[test]
    fn table3_skus_have_the_published_peaks() {
        // 8800 GT: 8 · 1.5 GHz · 14 / 32 · 32 · 2 = 336 GFLOPS (MAD),
        // 1.8 GHz · 256 bit / 8 = 57.6 GB/s.
        let gt = Machine::geforce_8800gt();
        assert!(
            (gt.peak_flops_sp() - 336.0e9).abs() < 1e8,
            "{}",
            gt.peak_flops_sp()
        );
        assert!((gt.peak_global_bandwidth() - 57.6e9).abs() < 1e6);
        assert_eq!(gt.num_clusters(), 7);
        // 9800 GTX: 8 · 1.688 GHz · 16 / 32 · 32 · 2 = 432.1 GFLOPS,
        // 2.2 GHz · 256 bit / 8 = 70.4 GB/s.
        let gtx = Machine::geforce_9800gtx();
        assert!(
            (gtx.peak_flops_sp() - 432.1e9).abs() < 1e8,
            "{}",
            gtx.peak_flops_sp()
        );
        assert!((gtx.peak_global_bandwidth() - 70.4e9).abs() < 1e6);
        assert_eq!(gtx.num_clusters(), 8);
    }

    #[test]
    fn table3_ordering_and_identity() {
        let [flagship, mid, low] = Machine::paper_table3();
        assert_eq!(flagship.name, "GeForce GTX 285");
        assert_eq!(mid.name, "GeForce 9800 GTX");
        assert_eq!(low.name, "GeForce 8800 GT");
        // Flagship dominates on every headline rate.
        assert!(flagship.peak_flops_sp() > mid.peak_flops_sp());
        assert!(mid.peak_flops_sp() > low.peak_flops_sp());
        assert!(flagship.peak_global_bandwidth() > mid.peak_global_bandwidth());
        assert!(mid.peak_global_bandwidth() > low.peak_global_bandwidth());
        // G92 SKUs share the architecture, differing only in SM count
        // and clocks.
        let mut mid_as_low = mid.clone();
        mid_as_low.name = low.name.clone();
        mid_as_low.num_sms = low.num_sms;
        mid_as_low.clock_hz = low.clock_hz;
        mid_as_low.mem_clock_hz = low.mem_clock_hz;
        assert_eq!(mid_as_low, low);
    }

    #[test]
    fn class_index_round_trips() {
        for c in InstrClass::ALL {
            assert_eq!(InstrClass::from_index(c.index()), Some(c));
        }
        assert_eq!(InstrClass::from_index(4), None);
    }

    #[test]
    fn clusters() {
        let m = Machine::gtx285();
        assert_eq!(m.num_clusters(), 10);
        assert_eq!(m.cluster_of(SmId(0)), ClusterId(0));
        assert_eq!(m.cluster_of(SmId(2)), ClusterId(0));
        assert_eq!(m.cluster_of(SmId(3)), ClusterId(1));
        assert_eq!(m.cluster_of(SmId(29)), ClusterId(9));
    }

    #[test]
    fn warp_rounding() {
        let m = Machine::gtx285();
        assert_eq!(m.warps_for_threads(1), 1);
        assert_eq!(m.warps_for_threads(32), 1);
        assert_eq!(m.warps_for_threads(33), 2);
        assert_eq!(m.warps_for_threads(512), 16);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Machine::gtx285();
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
        assert_eq!(format!("{}", SmId(4)), "SM4");
        assert_eq!(format!("{}", ClusterId(2)), "TPC2");
        assert_eq!(format!("{}", InstrClass::TypeIII), "Type III");
    }
}
