#![warn(missing_docs)]

//! GT200-class GPU machine description and resource arithmetic.
//!
//! This crate is the bottom layer of the `gpa` workspace. It captures the
//! hardware facts the paper's model depends on:
//!
//! * the **machine description** ([`Machine`]) — clocks, functional-unit
//!   counts, memory-system geometry, and per-SM resource ceilings of an
//!   NVIDIA GTX 285 (GeForce 200 series);
//! * the **instruction classification** ([`InstrClass`]) of paper Table 1 —
//!   instructions are grouped by how many functional units per SM can
//!   execute them;
//! * the **peak-rate formulas** of paper §4 (instruction throughput, shared
//!   memory bandwidth, global memory bandwidth, peak GFLOPS);
//! * the **occupancy calculator** ([`occupancy()`]) reproducing paper Table 2:
//!   given a kernel's register/shared-memory/thread usage, how many blocks
//!   (and therefore warps) fit on one streaming multiprocessor.
//!
//! # Example
//!
//! ```
//! use gpa_hw::{InstrClass, Machine};
//!
//! let m = Machine::gtx285();
//! // Paper §4.1: peak MAD throughput is 8 · 1.48 GHz · 30 / 32 = 11.1 Ginstr/s.
//! let peak = m.peak_warp_instruction_throughput(InstrClass::TypeII);
//! assert!((peak / 1e9 - 11.1).abs() < 0.01);
//! ```

pub mod machine;
pub mod occupancy;

pub use machine::{ClusterId, InstrClass, Machine, SmId};
pub use occupancy::{occupancy, KernelResources, Limiter, Occupancy};
