//! Shared-memory bank-conflict calculator (paper §4.2).
//!
//! GT200 shared memory has 16 banks of 4-byte words; adjacent words live in
//! adjacent banks. A half-warp access in which multiple lanes touch
//! *different words of the same bank* serializes: the access costs as many
//! transactions as the most-contended bank has distinct words. Lanes reading
//! the *same* word broadcast and do not conflict.
//!
//! The paper counts shared-memory traffic in **warp-equivalent
//! transactions**: a conflict-free full-warp access (two conflict-free
//! half-warps) counts as 1. [`warp_bank_transactions`] returns half-warp
//! transactions; divide by 2 for the paper's unit (the simulator's
//! statistics do this normalization).

/// Shared-memory geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankConfig {
    /// Number of banks. GT200: 16.
    pub banks: u32,
    /// Bank word width in bytes. GT200: 4.
    pub width: u32,
    /// Lanes per half-warp (the conflict-resolution granularity). GT200: 16.
    pub half_warp: usize,
}

impl BankConfig {
    /// The GT200 configuration: 16 banks × 4 bytes, 16-lane half-warps.
    pub fn gt200() -> BankConfig {
        BankConfig {
            banks: 16,
            width: 4,
            half_warp: 16,
        }
    }

    /// A hypothetical prime-bank configuration (the paper's §5.2
    /// architectural suggestion: "change the number of shared memory banks
    /// from 16 to a prime number to avoid bank conflicts").
    pub fn with_banks(banks: u32) -> BankConfig {
        BankConfig {
            banks,
            width: 4,
            half_warp: 16,
        }
    }
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig::gt200()
    }
}

/// Number of serialized transactions needed for one **half-warp** access.
///
/// `addrs[i]` is lane *i*'s byte address into shared memory, `None` for
/// inactive lanes. Returns 0 when no lane is active, 1 for a conflict-free
/// or broadcast access, and up to `banks` for the worst case.
pub fn bank_transactions(addrs: &[Option<u64>], cfg: BankConfig) -> u32 {
    debug_assert!(cfg.banks > 0 && cfg.width > 0);
    // Distinct words per bank; same word in the same bank broadcasts.
    // Half-warps are small (16 lanes), so the distinct-word set fits on
    // the stack — this function runs twice per shared-memory instruction
    // in the functional simulator and must not allocate.
    const STACK_LANES: usize = 32;
    if addrs.len() <= STACK_LANES {
        let mut words = [0u64; STACK_LANES];
        let mut banks = [0u64; STACK_LANES];
        let mut n = 0usize;
        for addr in addrs.iter().flatten() {
            let word = addr / u64::from(cfg.width);
            if !words[..n].contains(&word) {
                words[n] = word;
                banks[n] = word % u64::from(cfg.banks);
                n += 1;
            }
        }
        let mut worst = 0u32;
        for i in 0..n {
            let mut depth = 0u32;
            for b in &banks[..n] {
                if *b == banks[i] {
                    depth += 1;
                }
            }
            worst = worst.max(depth);
        }
        return worst;
    }
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); cfg.banks as usize];
    for addr in addrs.iter().flatten() {
        let word = addr / u64::from(cfg.width);
        let bank = (word % u64::from(cfg.banks)) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank.iter().map(|v| v.len() as u32).max().unwrap_or(0)
}

/// Number of serialized transactions for one **half-warp** of shared-memory
/// *atomic* read-modify-write accesses.
///
/// Unlike plain loads ([`bank_transactions`]), same-word lanes do **not**
/// broadcast: every lane performs its own read-modify-write, so lanes
/// hitting the same word — or different words of the same bank — serialize
/// lane by lane. The degree is therefore the deepest bank's *lane* count,
/// reaching the active-lane count when every lane hammers one address (the
/// `atomic_hotspot` worst case).
pub fn atomic_bank_transactions(addrs: &[Option<u64>], cfg: BankConfig) -> u32 {
    debug_assert!(cfg.banks > 0 && cfg.width > 0);
    const STACK_BANKS: usize = 64;
    if (cfg.banks as usize) <= STACK_BANKS {
        let mut depth = [0u32; STACK_BANKS];
        for addr in addrs.iter().flatten() {
            let word = addr / u64::from(cfg.width);
            depth[(word % u64::from(cfg.banks)) as usize] += 1;
        }
        return depth.iter().copied().max().unwrap_or(0);
    }
    let mut depth = vec![0u32; cfg.banks as usize];
    for addr in addrs.iter().flatten() {
        let word = addr / u64::from(cfg.width);
        depth[(word % u64::from(cfg.banks)) as usize] += 1;
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Number of serialized **half-warp** transactions for a full-warp access:
/// the sum of both half-warps' serialization degrees.
///
/// A conflict-free full warp returns 2 (= 1 warp-equivalent transaction in
/// the paper's unit).
pub fn warp_bank_transactions(addrs: &[Option<u64>], cfg: BankConfig) -> u32 {
    addrs
        .chunks(cfg.half_warp.max(1))
        .map(|hw| bank_transactions(hw, cfg))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hw(addrs: &[u64]) -> Vec<Option<u64>> {
        addrs.iter().copied().map(Some).collect()
    }

    fn stride_access(stride: u64, lanes: u64) -> Vec<Option<u64>> {
        hw(&(0..lanes).map(|i| i * stride * 4).collect::<Vec<_>>())
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(
            bank_transactions(&stride_access(1, 16), BankConfig::gt200()),
            1
        );
    }

    #[test]
    fn stride_two_is_two_way() {
        // Cyclic reduction step 1 (paper Figure 5): stride-2 → 2-way.
        assert_eq!(
            bank_transactions(&stride_access(2, 16), BankConfig::gt200()),
            2
        );
    }

    #[test]
    fn power_of_two_strides_double_conflicts() {
        // Paper §5.2: conflicts double every CR step until the 16-way cap.
        let cfg = BankConfig::gt200();
        assert_eq!(bank_transactions(&stride_access(4, 16), cfg), 4);
        assert_eq!(bank_transactions(&stride_access(8, 16), cfg), 8);
        assert_eq!(bank_transactions(&stride_access(16, 16), cfg), 16);
        assert_eq!(bank_transactions(&stride_access(32, 16), cfg), 16);
    }

    #[test]
    fn broadcast_is_free() {
        assert_eq!(bank_transactions(&hw(&[64; 16]), BankConfig::gt200()), 1);
    }

    #[test]
    fn same_bank_different_words_serialize() {
        // Paper §4.2's example: 3 threads reading different words of one
        // bank → 3 transactions.
        let addrs = hw(&[0, 64, 128]);
        assert_eq!(bank_transactions(&addrs, BankConfig::gt200()), 3);
    }

    #[test]
    fn odd_stride_is_conflict_free() {
        let cfg = BankConfig::gt200();
        for stride in [1u64, 3, 5, 7, 9, 11, 13, 15] {
            assert_eq!(
                bank_transactions(&stride_access(stride, 16), cfg),
                1,
                "stride {stride}"
            );
        }
    }

    #[test]
    fn padding_removes_power_of_two_conflicts() {
        // The paper's CR-NBC fix: pad one word per 16. Element i lives at
        // word i + i/16. Stride-2^k accesses become conflict-free for all
        // strides up to the bank count.
        let cfg = BankConfig::gt200();
        for k in 1..=4u32 {
            let stride = 1u64 << k;
            let addrs: Vec<Option<u64>> = (0..16u64)
                .map(|i| {
                    let elem = i * stride;
                    Some((elem + elem / 16) * 4)
                })
                .collect();
            assert_eq!(bank_transactions(&addrs, cfg), 1, "stride {stride}");
        }
    }

    #[test]
    fn padding_leaves_small_residual_beyond_bank_count() {
        // For strides beyond 16 the simple per-16 padding leaves a 2-way
        // residual (padded stride 34 ≡ 2 mod 16) — still an 8× improvement
        // over the unpadded 16-way serialization.
        let cfg = BankConfig::gt200();
        let addrs: Vec<Option<u64>> = (0..16u64)
            .map(|i| {
                let elem = i * 32;
                Some((elem + elem / 16) * 4)
            })
            .collect();
        assert_eq!(bank_transactions(&addrs, cfg), 2);
    }

    #[test]
    fn prime_banks_remove_power_of_two_conflicts() {
        // The paper's architectural suggestion: 17 banks.
        let cfg = BankConfig::with_banks(17);
        for k in 1..=4u32 {
            assert_eq!(bank_transactions(&stride_access(1 << k, 16), cfg), 1);
        }
    }

    #[test]
    fn inactive_lanes_do_not_conflict() {
        let mut addrs = stride_access(2, 16);
        for slot in addrs.iter_mut().skip(8) {
            *slot = None;
        }
        assert_eq!(bank_transactions(&addrs, BankConfig::gt200()), 1);
        assert_eq!(bank_transactions(&[None; 16], BankConfig::gt200()), 0);
    }

    #[test]
    fn atomic_same_word_serializes_instead_of_broadcasting() {
        let cfg = BankConfig::gt200();
        // 16 lanes on one word: a load broadcasts (1 txn), an atomic
        // serializes lane by lane (16 txns).
        assert_eq!(bank_transactions(&hw(&[64; 16]), cfg), 1);
        assert_eq!(atomic_bank_transactions(&hw(&[64; 16]), cfg), 16);
        // Conflict-free stride-1 atomics behave like loads.
        assert_eq!(atomic_bank_transactions(&stride_access(1, 16), cfg), 1);
        // Two lanes per word, 8 words across 8 banks: depth 2.
        let addrs: Vec<Option<u64>> = (0..16u64).map(|i| Some((i / 2) * 4)).collect();
        assert_eq!(atomic_bank_transactions(&addrs, cfg), 2);
        assert_eq!(atomic_bank_transactions(&[None; 16], cfg), 0);
    }

    #[test]
    fn warp_level_sums_half_warps() {
        let cfg = BankConfig::gt200();
        // Conflict-free full warp: 2 half-warp transactions.
        let addrs: Vec<Option<u64>> = (0..32u64).map(|i| Some(i * 4)).collect();
        assert_eq!(warp_bank_transactions(&addrs, cfg), 2);
        // Stride-2 full warp: 2 + 2.
        let addrs: Vec<Option<u64>> = (0..32u64).map(|i| Some(i * 8)).collect();
        assert_eq!(warp_bank_transactions(&addrs, cfg), 4);
    }

    // ---- Properties ----

    fn arb_addrs() -> impl Strategy<Value = Vec<Option<u64>>> {
        proptest::collection::vec(proptest::option::of((0u64..4096).prop_map(|w| w * 4)), 16)
    }

    proptest! {
        /// Degree is bounded by active lanes and by the bank count.
        #[test]
        fn degree_bounds(addrs in arb_addrs()) {
            let cfg = BankConfig::gt200();
            let d = bank_transactions(&addrs, cfg);
            let active = addrs.iter().flatten().count() as u32;
            prop_assert!(d <= active);
            prop_assert!(d <= cfg.banks);
            prop_assert_eq!(d == 0, active == 0);
        }

        /// Atomics serialize at least as much as loads on the same address
        /// pattern, and never beyond the active-lane count.
        #[test]
        fn atomic_degree_dominates_load_degree(addrs in arb_addrs()) {
            let cfg = BankConfig::gt200();
            let load = bank_transactions(&addrs, cfg);
            let atomic = atomic_bank_transactions(&addrs, cfg);
            let active = addrs.iter().flatten().count() as u32;
            prop_assert!(atomic >= load);
            prop_assert!(atomic <= active);
            prop_assert_eq!(atomic == 0, active == 0);
        }

        /// Lane permutation never changes the serialization degree.
        #[test]
        fn permutation_invariant(addrs in arb_addrs(), seed in 0usize..100) {
            let cfg = BankConfig::gt200();
            let d = bank_transactions(&addrs, cfg);
            let mut p = addrs.clone();
            let n = p.len();
            for i in 0..n {
                p.swap(i, (seed + i * 5) % n);
            }
            prop_assert_eq!(bank_transactions(&p, cfg), d);
        }

        /// Duplicating an already-present address (broadcast) never
        /// increases the degree.
        #[test]
        fn broadcast_never_hurts(addrs in arb_addrs(), lane in 0usize..16) {
            let cfg = BankConfig::gt200();
            let d = bank_transactions(&addrs, cfg);
            if let Some(existing) = addrs.iter().flatten().next().copied() {
                let mut dup = addrs.clone();
                dup[lane] = Some(existing);
                prop_assert!(bank_transactions(&dup, cfg) <= d + 1);
                // If the lane was inactive, degree cannot increase at all
                // beyond broadcast on an existing word.
                if addrs[lane].is_none() {
                    prop_assert!(bank_transactions(&dup, cfg) <= d.max(1));
                }
            }
        }
    }
}
