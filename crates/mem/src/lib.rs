#![warn(missing_docs)]

//! GPU memory-system models: global-memory coalescing, shared-memory bank
//! conflicts, and a small read-only (texture) cache.
//!
//! These are the paper's two memory-side tools plus one extension:
//!
//! * [`coalesce`] — the **memory transaction simulator** of paper §4.3:
//!   implements the CUDA compute-1.2/1.3 coalescing protocol at half-warp
//!   granularity, with a configurable minimum segment size so the paper's
//!   Figure 11 "what if transactions were 16 B / 4 B?" sweeps can be run.
//! * [`bank`] — the **bank-conflict calculator** of §4.2: given the
//!   per-lane shared-memory addresses of an access, how many serialized
//!   transactions does the 16-bank shared memory need?
//! * [`texcache`] — a small set-associative read-only cache used to
//!   reproduce the `+Cache` variants of Figure 12 (the paper measured these
//!   on hardware; we model them, documented as an extension in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use gpa_mem::coalesce::{coalesce_half_warp, CoalesceConfig};
//!
//! // 16 lanes reading consecutive floats: one 64-byte transaction.
//! let accesses: Vec<Option<(u64, u32)>> =
//!     (0..16).map(|i| Some((i * 4, 4))).collect();
//! let txs = coalesce_half_warp(&accesses, CoalesceConfig::gt200());
//! assert_eq!(txs.len(), 1);
//! assert_eq!(txs[0].size, 64);
//! ```

pub mod bank;
pub mod coalesce;
pub mod texcache;

pub use bank::{bank_transactions, warp_bank_transactions, BankConfig};
pub use coalesce::{coalesce_half_warp, coalesce_warp, CoalesceConfig, Transaction};
pub use texcache::TexCache;
