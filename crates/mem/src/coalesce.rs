//! The memory transaction simulator: CUDA compute-1.2/1.3 coalescing.
//!
//! Paper §4.3 states the protocol the GT200 coalescer uses for each
//! half-warp:
//!
//! 1. find the memory segment that contains the address requested by the
//!    lowest-numbered (pending) thread;
//! 2. find all other threads whose requested address is in this segment;
//! 3. reduce the segment size if possible;
//! 4. repeat until all threads in the half-warp are served.
//!
//! The minimum segment CUDA supports for floats is 32 bytes; the paper's
//! Figure 11 additionally simulates hypothetical 16-byte and 4-byte
//! granularities, which [`CoalesceConfig::min_segment`] exposes.

use std::fmt;

/// Coalescer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoalesceConfig {
    /// Smallest transaction the memory system can issue, bytes
    /// (power of two). GT200: 32. Paper Figure 11 also uses 16 and 4.
    pub min_segment: u32,
    /// Largest transaction / initial segment size, bytes (power of two).
    /// GT200: 128 for 4-byte and wider words.
    pub max_segment: u32,
}

impl CoalesceConfig {
    /// The real GT200 coalescer: 128-byte segments, 32-byte minimum.
    pub fn gt200() -> CoalesceConfig {
        CoalesceConfig {
            min_segment: 32,
            max_segment: 128,
        }
    }

    /// GT200 segments with a hypothetical smaller minimum transaction
    /// (paper Figure 11's 16-byte and 4-byte experiments).
    ///
    /// # Panics
    ///
    /// Panics if `min_segment` is not a power of two or exceeds
    /// `max_segment`.
    pub fn with_min_segment(min_segment: u32) -> CoalesceConfig {
        let cfg = CoalesceConfig {
            min_segment,
            max_segment: 128,
        };
        cfg.check();
        cfg
    }

    fn check(self) {
        assert!(
            self.min_segment.is_power_of_two() && self.max_segment.is_power_of_two(),
            "segment sizes must be powers of two"
        );
        assert!(
            self.min_segment <= self.max_segment,
            "min_segment must not exceed max_segment"
        );
    }
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig::gt200()
    }
}

/// One hardware memory transaction: an aligned power-of-two segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Segment base address (aligned to `size`).
    pub base: u64,
    /// Segment size in bytes (power of two).
    pub size: u32,
}

impl Transaction {
    /// Returns `true` if the byte range `[addr, addr + len)` lies inside
    /// this segment.
    pub fn contains(&self, addr: u64, len: u32) -> bool {
        addr >= self.base && addr + u64::from(len) <= self.base + u64::from(self.size)
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}; {} B]", self.base, self.size)
    }
}

/// Run the coalescing protocol for one half-warp.
///
/// `accesses[i]` is lane *i*'s request as `(byte_address, width_bytes)`,
/// or `None` for an inactive lane. Typically 16 entries; fewer or more are
/// accepted (the protocol itself is size-agnostic).
///
/// Returns the hardware transactions in issue order.
///
/// # Panics
///
/// Panics if an access is wider than `cfg.max_segment` or not naturally
/// aligned — the GT200 requires natural alignment for global accesses, and
/// the functional simulator enforces it before calling here.
pub fn coalesce_half_warp(
    accesses: &[Option<(u64, u32)>],
    cfg: CoalesceConfig,
) -> Vec<Transaction> {
    let mut out = Vec::new();
    coalesce_half_warp_with(accesses, cfg, &mut |t| out.push(t));
    out
}

/// [`coalesce_half_warp`] without the return-vector allocation: `emit` is
/// invoked once per transaction, in issue order.
///
/// This is the functional simulator's form — it runs the protocol three
/// times (one per granularity) per global warp-instruction, so the half-warp
/// working set lives on the stack.
///
/// # Panics
///
/// Same contract as [`coalesce_half_warp`].
pub fn coalesce_half_warp_with(
    accesses: &[Option<(u64, u32)>],
    cfg: CoalesceConfig,
    emit: &mut dyn FnMut(Transaction),
) {
    cfg.check();
    const STACK_LANES: usize = 32;
    let mut stack = [(0u64, 0u32); STACK_LANES];
    let mut heap: Vec<(u64, u32)>;
    let pending: &mut [(u64, u32)] = if accesses.len() <= STACK_LANES {
        let mut n = 0usize;
        for a in accesses.iter().flatten() {
            stack[n] = *a;
            n += 1;
        }
        &mut stack[..n]
    } else {
        heap = accesses.iter().flatten().copied().collect();
        &mut heap[..]
    };
    for &(addr, len) in pending.iter() {
        assert!(
            len > 0 && len <= cfg.max_segment,
            "access width {len} unsupported"
        );
        assert!(
            len.is_power_of_two() && addr % u64::from(len) == 0,
            "access at {addr:#x} is not naturally aligned to {len}"
        );
    }

    let mut n = pending.len();
    while n > 0 {
        // 1. Aligned max-size segment containing the lowest lane's address.
        let seg_size = u64::from(cfg.max_segment);
        let mut base = pending[0].0 / seg_size * seg_size;
        let mut size = cfg.max_segment;

        // 2. Serve every pending access that fits entirely in the segment,
        //    compacting the unserved ones in place (order preserved).
        let seg = Transaction { base, size };
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut kept = 0usize;
        for i in 0..n {
            let (a, l) = pending[i];
            if seg.contains(a, l) {
                lo = lo.min(a);
                hi = hi.max(a + u64::from(l));
            } else {
                pending[kept] = (a, l);
                kept += 1;
            }
        }
        debug_assert!(kept < n);
        n = kept;

        // 3. Reduce the segment while the used bytes fit in an aligned half.
        while size > cfg.min_segment {
            let half = size / 2;
            let lower = Transaction { base, size: half };
            let upper = Transaction {
                base: base + u64::from(half),
                size: half,
            };
            if lower.contains(lo, (hi - lo) as u32) {
                size = half;
            } else if upper.contains(lo, (hi - lo) as u32) {
                base += u64::from(half);
                size = half;
            } else {
                break;
            }
        }
        emit(Transaction { base, size });
    }
}

/// Coalesce a full warp as two half-warps (the GT200 transaction issue
/// granularity, paper §4.3) and return all transactions.
pub fn coalesce_warp(
    accesses: &[Option<(u64, u32)>],
    half_warp: usize,
    cfg: CoalesceConfig,
) -> Vec<Transaction> {
    let mut out = Vec::new();
    for chunk in accesses.chunks(half_warp.max(1)) {
        out.extend(coalesce_half_warp(chunk, cfg));
    }
    out
}

/// Total bytes moved by a transaction list.
pub fn total_bytes(txs: &[Transaction]) -> u64 {
    txs.iter().map(|t| u64::from(t.size)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lanes(addrs: &[u64]) -> Vec<Option<(u64, u32)>> {
        addrs.iter().map(|&a| Some((a, 4))).collect()
    }

    #[test]
    fn contiguous_floats_coalesce_to_one_64b_transaction() {
        let acc = lanes(&(0..16).map(|i| i * 4).collect::<Vec<_>>());
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs, vec![Transaction { base: 0, size: 64 }]);
    }

    #[test]
    fn contiguous_floats_with_offset_still_one_transaction() {
        // Half-warp at byte 64: aligned 64-byte chunk of the 128-byte segment.
        let acc = lanes(&(0..16).map(|i| 64 + i * 4).collect::<Vec<_>>());
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs, vec![Transaction { base: 64, size: 64 }]);
    }

    #[test]
    fn misaligned_block_needs_full_segment() {
        // 16 floats starting at byte 32: spans bytes 32..96 — fits in the
        // 128-byte segment but in neither aligned half exclusively → one
        // 128-byte transaction.
        let acc = lanes(&(0..16).map(|i| 32 + i * 4).collect::<Vec<_>>());
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs, vec![Transaction { base: 0, size: 128 }]);
    }

    #[test]
    fn broadcast_reduces_to_minimum_segment() {
        let acc = lanes(&[400; 16]);
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(
            txs,
            vec![Transaction {
                base: 384,
                size: 32
            }]
        );
    }

    #[test]
    fn broadcast_with_4b_granularity_reduces_further() {
        let acc = lanes(&[400; 16]);
        let txs = coalesce_half_warp(&acc, CoalesceConfig::with_min_segment(4));
        assert_eq!(txs, vec![Transaction { base: 400, size: 4 }]);
    }

    #[test]
    fn stride_two_uses_one_wasteful_128b_transaction() {
        // Stride-2 floats span the whole 128-byte segment (compute 1.2
        // behaviour: one transaction, half the bytes wasted).
        let acc = lanes(&(0..16).map(|i| i * 8).collect::<Vec<_>>());
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs, vec![Transaction { base: 0, size: 128 }]);
    }

    #[test]
    fn large_stride_serializes_per_lane() {
        // Stride 128: every lane in its own segment → 16 transactions of 32 B.
        let acc = lanes(&(0..16).map(|i| i * 128).collect::<Vec<_>>());
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs.len(), 16);
        assert!(txs.iter().all(|t| t.size == 32));
    }

    #[test]
    fn reversed_order_is_equally_coalesced() {
        let fwd = lanes(&(0..16).map(|i| i * 4).collect::<Vec<_>>());
        let rev = lanes(&(0..16).rev().map(|i| i * 4).collect::<Vec<_>>());
        let cfg = CoalesceConfig::gt200();
        assert_eq!(
            total_bytes(&coalesce_half_warp(&fwd, cfg)),
            total_bytes(&coalesce_half_warp(&rev, cfg))
        );
    }

    #[test]
    fn inactive_lanes_are_skipped() {
        let mut acc = lanes(&(0..16).map(|i| i * 4).collect::<Vec<_>>());
        for slot in acc.iter_mut().skip(8) {
            *slot = None;
        }
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(txs, vec![Transaction { base: 0, size: 32 }]);
    }

    #[test]
    fn no_active_lanes_no_transactions() {
        let acc = vec![None; 16];
        assert!(coalesce_half_warp(&acc, CoalesceConfig::gt200()).is_empty());
    }

    #[test]
    fn wide_accesses_count_their_full_footprint() {
        // 16 lanes × 16-byte vectors = 256 bytes → two 128-byte transactions.
        let acc: Vec<_> = (0..16u64).map(|i| Some((i * 16, 16u32))).collect();
        let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
        assert_eq!(
            txs,
            vec![
                Transaction { base: 0, size: 128 },
                Transaction {
                    base: 128,
                    size: 128
                }
            ]
        );
    }

    #[test]
    fn warp_level_is_two_half_warps() {
        let acc: Vec<_> = (0..32u64).map(|i| Some((i * 4, 4u32))).collect();
        let txs = coalesce_warp(&acc, 16, CoalesceConfig::gt200());
        assert_eq!(txs.len(), 2);
        assert_eq!(total_bytes(&txs), 128);
    }

    #[test]
    #[should_panic(expected = "not naturally aligned")]
    fn misaligned_access_rejected() {
        coalesce_half_warp(&[Some((2, 4))], CoalesceConfig::gt200());
    }

    // ---- Properties ----

    fn arb_access() -> impl Strategy<Value = Option<(u64, u32)>> {
        proptest::option::of(
            (0u64..4096, prop_oneof![Just(4u32), Just(8), Just(16)]).prop_map(|(word, w)| {
                // Natural alignment.
                (word / u64::from(w) * u64::from(w) * 4 % 16384, w)
            }),
        )
        .prop_map(|o| o.map(|(a, w)| (a / u64::from(w) * u64::from(w), w)))
    }

    fn arb_half_warp() -> impl Strategy<Value = Vec<Option<(u64, u32)>>> {
        proptest::collection::vec(arb_access(), 16)
    }

    proptest! {
        /// Every requested byte is covered by some transaction.
        #[test]
        fn coverage(acc in arb_half_warp()) {
            let txs = coalesce_half_warp(&acc, CoalesceConfig::gt200());
            for (a, l) in acc.iter().flatten() {
                prop_assert!(
                    txs.iter().any(|t| t.contains(*a, *l)),
                    "access {a:#x}+{l} not covered by {txs:?}"
                );
            }
        }

        /// Transactions are aligned powers of two within configured bounds,
        /// and there are at most as many as active lanes.
        #[test]
        fn well_formed(acc in arb_half_warp(),
                       min_seg in prop_oneof![Just(4u32), Just(16), Just(32)]) {
            let cfg = CoalesceConfig::with_min_segment(min_seg);
            let txs = coalesce_half_warp(&acc, cfg);
            let active = acc.iter().flatten().count();
            prop_assert!(txs.len() <= active.max(1));
            for t in &txs {
                prop_assert!(t.size.is_power_of_two());
                prop_assert!(t.size >= cfg.min_segment && t.size <= cfg.max_segment);
                prop_assert_eq!(t.base % u64::from(t.size), 0);
            }
        }

        /// A finer minimum granularity never moves more bytes (the mechanism
        /// behind the paper's Figure 11 improvement).
        #[test]
        fn monotone_in_granularity(acc in arb_half_warp()) {
            let b32 = total_bytes(&coalesce_half_warp(&acc, CoalesceConfig::with_min_segment(32)));
            let b16 = total_bytes(&coalesce_half_warp(&acc, CoalesceConfig::with_min_segment(16)));
            let b4 = total_bytes(&coalesce_half_warp(&acc, CoalesceConfig::with_min_segment(4)));
            prop_assert!(b4 <= b16 && b16 <= b32);
        }

        /// The per-lane access order within the half-warp does not change
        /// the total bytes moved.
        #[test]
        fn permutation_invariant_bytes(acc in arb_half_warp(), seed in 0u64..1000) {
            let cfg = CoalesceConfig::gt200();
            let base_bytes = total_bytes(&coalesce_half_warp(&acc, cfg));
            let mut shuffled = acc.clone();
            // Cheap deterministic shuffle.
            let n = shuffled.len();
            for i in 0..n {
                let j = (seed as usize + i * 7) % n;
                shuffled.swap(i, j);
            }
            prop_assert_eq!(total_bytes(&coalesce_half_warp(&shuffled, cfg)), base_bytes);
        }
    }
}
