//! A small set-associative read-only cache (texture-cache model).
//!
//! The paper's SpMV study binds the gathered vector `x` to the texture unit
//! ("+Cache" bars of Figure 12) but explicitly does *not* model the cache —
//! it measures. To regenerate that figure end-to-end we provide a simple
//! LRU set-associative model of the GT200 per-TPC texture L1 and attach it
//! to the timing simulator's vector loads. DESIGN.md documents this as an
//! extension.

/// A set-associative, LRU, read-only cache.
///
/// Addresses are byte addresses; a lookup touches the line containing the
/// address. There is no write path — GT200 texture caches are read-only and
/// unsnooped within a kernel launch.
#[derive(Debug, Clone)]
pub struct TexCache {
    line_bytes: u32,
    num_sets: u32,
    assoc: u32,
    /// `sets[s]` holds up to `assoc` tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl TexCache {
    /// Create a cache of `size_bytes` with `line_bytes` lines and `assoc`
    /// ways. The GT200 per-TPC texture L1 is approximately 8 KB with 32-byte
    /// lines; see [`TexCache::gt200_tpc`].
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is divisible by `line_bytes * assoc` and
    /// the line size and set count are powers of two.
    pub fn new(size_bytes: u32, line_bytes: u32, assoc: u32) -> TexCache {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        assert_eq!(
            size_bytes % (line_bytes * assoc),
            0,
            "size must be a whole number of sets"
        );
        let num_sets = size_bytes / (line_bytes * assoc);
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        TexCache {
            line_bytes,
            num_sets,
            assoc,
            sets: vec![Vec::new(); num_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// The GT200 per-TPC texture L1: 8 KB, 32-byte lines, 8-way.
    pub fn gt200_tpc() -> TexCache {
        TexCache::new(8 * 1024, 32, 8)
    }

    /// Look up the line containing `addr`; returns `true` on hit. Misses
    /// fill the line (LRU eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / u64::from(self.line_bytes);
        let set = (line % u64::from(self.num_sets)) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            self.hits += 1;
            true
        } else {
            ways.insert(0, line);
            ways.truncate(self.assoc as usize);
            self.misses += 1;
            false
        }
    }

    /// Forget all contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `0.0..=1.0` (0 when no accesses were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = TexCache::gt200_tpc();
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(96)); // same 32-byte line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn distinct_lines_miss_independently() {
        let mut c = TexCache::gt200_tpc();
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0));
        assert!(c.access(32));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // 2 sets × 2 ways × 32 B lines = 128 B cache.
        let mut c = TexCache::new(128, 32, 2);
        // These three lines map to the same set (stride = 2 lines).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256)); // evicts line 0
        assert!(!c.access(0)); // line 0 gone
        assert!(c.access(256)); // still resident
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = TexCache::gt200_tpc();
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn hit_rate_of_streaming_reuse() {
        let mut c = TexCache::gt200_tpc();
        // 1 KB working set fits comfortably: second pass is all hits.
        for pass in 0..2 {
            for a in (0..1024u64).step_by(4) {
                let hit = c.access(a);
                if pass == 1 {
                    assert!(hit);
                }
            }
        }
        assert!(c.hit_rate() > 0.8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        TexCache::new(96, 24, 2);
    }

    proptest! {
        /// Accessing the same address twice in a row always hits the second
        /// time, regardless of history.
        #[test]
        fn immediate_rereference_hits(addrs in proptest::collection::vec(0u64..65536, 1..200)) {
            let mut c = TexCache::gt200_tpc();
            for a in addrs {
                c.access(a);
                prop_assert!(c.access(a));
            }
        }

        /// hits + misses equals the number of accesses.
        #[test]
        fn accounting(addrs in proptest::collection::vec(0u64..65536, 0..200)) {
            let mut c = TexCache::gt200_tpc();
            for &a in &addrs {
                c.access(a);
            }
            prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        }
    }
}
