//! Figure 5: the cyclic-reduction communication pattern — stride, active
//! threads, and bank-conflict degree per forward-reduction step.

use gpa_bench::rule;
use gpa_mem::bank::{bank_transactions, BankConfig};

fn main() {
    let n: u32 = 512;
    println!("Figure 5: CR forward reduction on a {n}-equation system");
    rule(66);
    println!(
        "{:>6} {:>8} {:>15} {:>15} {:>12}",
        "step", "stride", "active threads", "conflict (way)", "padded (way)"
    );
    rule(66);
    let cfg = BankConfig::gt200();
    for s in 1..=n.trailing_zeros() {
        let stride = 1u64 << (s - 1);
        let active = n >> s;
        // Half-warp of accesses at the step's stride (wrapped like the kernel).
        let addrs: Vec<Option<u64>> = (0..16u64)
            .map(|i| Some((((i + 1) << s) - 1) % u64::from(n) * 4))
            .collect();
        let way = bank_transactions(&addrs, cfg);
        let padded: Vec<Option<u64>> = addrs
            .iter()
            .map(|a| a.map(|b| (b / 4 + b / 4 / 16) * 4))
            .collect();
        let pway = bank_transactions(&padded, cfg);
        println!("{s:>6} {stride:>8} {active:>15} {way:>15} {pway:>12}");
    }
    rule(66);
    println!("paper: conflicts double each step (2-way, 4-way, 8-way, ...) until the");
    println!("16-bank cap; padding one word per 16 (CR-NBC) redirects them to free banks.");
}
