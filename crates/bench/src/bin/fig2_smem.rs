//! Figure 2 (right): shared-memory bandwidth vs warps per SM.

use gpa_bench::{curves, rule, vs_paper};
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let c = curves(&m);
    println!("Figure 2 (right): shared-memory bandwidth (GB/s) vs warps/SM");
    rule(40);
    println!("{:>6} {:>14}", "warps", "bandwidth");
    rule(40);
    for &w in &c.warps {
        println!("{w:>6} {:>14.0}", c.shared_bandwidth(w) / 1e9);
    }
    rule(40);
    println!("paper reference points (§5.1/§5.2):");
    for (w, paper) in [(6u32, 870.0), (8, 1029.0), (16, 1112.0), (32, 1165.0)] {
        let ours = c.shared_bandwidth(w) / 1e9;
        println!(
            "  {w:>2} warps: ours {ours:>6.0} GB/s, paper {paper:>6.0} GB/s ({})",
            vs_paper(ours, paper)
        );
    }
    println!(
        "theoretical peak: {:.0} GB/s (paper: 1420)",
        m.peak_shared_bandwidth() / 1e9
    );
}
