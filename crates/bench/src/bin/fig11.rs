//! Figure 11: SpMV bytes per matrix entry by region and transaction
//! granularity (a), and measured vs simulated breakdown (b).

use gpa_apps::spmv::{self, Format};
use gpa_bench::{curves, ms, paper_scale, rule};
use gpa_core::Model;
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let l = if paper_scale() { 12 } else { 8 };
    let mat = spmv::qcd_like(l, 0xACDC);
    println!(
        "Figure 11: SpMV on the QCD-like operator, L = {l} ({} rows, {} nnz)",
        mat.rows(),
        mat.nnz()
    );

    println!("\n(a) average bytes per matrix entry (32 / 16 / 4 B granularity)");
    rule(86);
    println!(
        "{:>10} | {:>21} | {:>21} | {:>21}",
        "format", "matrix entry", "column index", "vector entry"
    );
    rule(86);
    let mut runs = Vec::new();
    for format in Format::ALL {
        let r = spmv::run(&m, &mut model, &mat, format, false, false).expect("spmv runs");
        let row = |region: &str| -> String {
            format!(
                "{:>6.2} {:>6.2} {:>6.2}",
                spmv::bytes_per_entry(&r, &mat, region, 0),
                spmv::bytes_per_entry(&r, &mat, region, 1),
                spmv::bytes_per_entry(&r, &mat, region, 2)
            )
        };
        println!(
            "{:>10} | {:>21} | {:>21} | {:>21}",
            format.name(),
            row("matrix"),
            row("colidx"),
            row("vector")
        );
        runs.push(r);
    }
    rule(86);
    println!("paper (QCD): matrix 4.00 everywhere; colidx 4.00 (ELL) vs 0.44 (BELL);");
    println!("vector: ELL 6.69/4.55/4.00, interleaving and finer granularity both cut bytes.");

    println!("\n(b) measured vs simulated breakdown");
    rule(86);
    println!(
        "{:>10} {:>12} {:>12} {:>9} | {:>10} {:>10} {:>10}",
        "format", "measured ms", "simul. ms", "error", "instr ms", "shared ms", "global ms"
    );
    rule(86);
    for (format, r) in Format::ALL.iter().zip(&runs) {
        println!(
            "{:>10} {:>12} {:>12} {:>8.1}% | {:>10} {:>10} {:>10}",
            format.name(),
            ms(r.measured_seconds()),
            ms(r.predicted_seconds()),
            r.model_error() * 100.0,
            ms(r.analysis.totals.instr),
            ms(r.analysis.totals.smem),
            ms(r.analysis.totals.gmem)
        );
        assert_eq!(r.analysis.bottleneck, gpa_core::Component::GlobalMemory);
    }
    rule(86);
    println!("paper: all three formats are global-memory-bound (error within 5%);");
    println!("with 16 B transactions performance would improve further (granularity");
    println!("what-if below).");
    let w = model.what_if_granularity(&runs[0].input, 1);
    println!("what-if 16 B granularity on ELL: x{:.2}", w.speedup);
}
