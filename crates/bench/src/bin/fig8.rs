//! Figure 8: CR vs CR-NBC — measured and simulated totals.

use gpa_apps::tridiag;
use gpa_bench::{curves, ms, paper_scale, rule, vs_paper};
use gpa_core::Model;
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let nsys = if paper_scale() { 512 } else { 128 };
    println!("Figure 8: CR vs CR-NBC, {nsys} systems x 512 equations (paper: 512)");
    rule(88);
    println!(
        "{:>8} {:>12} {:>12} {:>9} | {:>11} {:>11} {:>11}",
        "solver", "measured ms", "simul. ms", "error", "instr ms", "shared ms", "global ms"
    );
    rule(88);
    let mut results = Vec::new();
    for padded in [false, true] {
        let r = tridiag::run(&m, &mut model, 512, nsys, padded, true).expect("solvers run");
        let at = r.analysis.serialized_attribution;
        println!(
            "{:>8} {:>12} {:>12} {:>8.1}% | {:>11} {:>11} {:>11}",
            if padded { "CR-NBC" } else { "CR" },
            ms(r.measured_seconds()),
            ms(r.predicted_seconds()),
            r.model_error() * 100.0,
            ms(at.instr),
            ms(at.smem),
            ms(at.gmem)
        );
        results.push(r);
    }
    rule(88);
    let speedup = results[0].measured_seconds() / results[1].measured_seconds();
    let what_if = model.what_if_no_bank_conflicts(&results[0].input);
    println!(
        "measured speedup CR → CR-NBC: x{speedup:.2} (paper: x1.62, {})",
        vs_paper(speedup, 1.62)
    );
    println!(
        "model's a-priori estimate of removing conflicts: x{:.2} (paper model: x1.83)",
        what_if.speedup
    );
    println!("paper: CR dominated by shared-memory time, CR-NBC by instruction time;");
    println!("measured vs simulated within 7% (paper), see error column for ours.");
}
