//! Figure 12: SpMV GFLOPS for the six optimization combinations.

use gpa_apps::spmv::{self, Format};
use gpa_bench::{curves, paper_scale, rule, threads_arg, vs_paper};
use gpa_core::Model;
use gpa_hw::Machine;
use std::time::Instant;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let l = if paper_scale() { 12 } else { 8 };
    let threads = threads_arg();
    let start = Instant::now();
    let mat = spmv::qcd_like(l, 0xACDC);
    println!(
        "Figure 12: SpMV GFLOPS, QCD-like operator, L = {l} ({} nnz; paper matrix: 1.9M nnz)",
        mat.nnz()
    );
    if threads != 1 {
        println!("(simulating with --threads {threads}; results are thread-count-invariant)");
    }
    rule(64);
    println!("{:>18} {:>12} {:>14}", "variant", "GFLOPS", "paper GFLOPS");
    rule(64);
    // Paper's bars: ELL 15.9, BELL+IM 23.4, ELL+Cache 23.4,
    // BELL+IM+Cache 32.0, BELL+IMIV 33.7, BELL+IMIV+Cache 37.7.
    let variants: [(Format, bool, f64); 6] = [
        (Format::Ell, false, 15.9),
        (Format::BellIm, false, 23.4),
        (Format::Ell, true, 23.4),
        (Format::BellIm, true, 32.0),
        (Format::BellImIv, false, 33.7),
        (Format::BellImIv, true, 37.7),
    ];
    let mut seconds = std::collections::HashMap::new();
    for (format, cache, paper) in variants {
        let r = spmv::run_with_threads(&m, &mut model, &mat, format, cache, false, threads)
            .expect("spmv runs");
        let gflops = r.measured_gflops(mat.flops());
        let name = format!("{}{}", format.name(), if cache { "+Cache" } else { "" });
        println!("{name:>18} {gflops:>12.1} {paper:>14.1}");
        seconds.insert((format, cache), r.measured_seconds());
    }
    rule(64);
    let best = seconds[&(Format::BellImIv, true)];
    let prior = seconds[&(Format::BellIm, true)];
    let gain = prior / best - 1.0;
    println!(
        "BELL+IMIV+Cache vs prior best BELL+IM+Cache: {:+.0}% (paper: +18%, {})",
        gain * 100.0,
        vs_paper(1.0 + gain, 1.18)
    );
    println!("paper: vector interleaving wins even without the texture cache.");
    eprintln!(
        "[fig12] simulated in {:.2}s with --threads {threads} (try --par)",
        start.elapsed().as_secs_f64()
    );
}
