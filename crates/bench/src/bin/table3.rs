//! Table 3: the paper's cross-GPU validation — run the three case
//! studies on every Table 3 SKU (GTX 285 flagship, 9800 GTX, 8800 GT)
//! through one `Analyzer` session holding all three calibrated profiles,
//! and print the per-SKU predictions side by side.
//!
//! Default sizes keep the sweep quick; `--paper` selects the paper-scale
//! problems (and full-resolution calibration). `--threads N`/`--par`
//! shards both the calibration and the batch. Calibrations are cached
//! under `results/` like every other exhibit.

use gpa_bench::{curves_with, paper_scale, rule, threads_arg, vs_paper};
use gpa_hw::Machine;
use gpa_service::{AnalysisRequest, Analyzer, Effort, KernelSpec};
use gpa_sim::Threads;

fn main() {
    let paper = paper_scale();
    let threads = threads_arg();
    let effort = if paper { Effort::Paper } else { Effort::Quick };

    let skus = Machine::paper_table3();
    let mut analyzer = Analyzer::new();
    for sku in &skus {
        analyzer
            .install(
                sku.clone(),
                curves_with(sku, effort.measure_opts().with_threads(threads)),
            )
            .expect("cached curves match the machine");
    }

    let (mm_n, cr_nsys, spmv_l) = if paper { (1024, 256, 8) } else { (256, 64, 4) };
    let cases = [
        (
            format!("matmul 16x16 n={mm_n}"),
            KernelSpec::Matmul { n: mm_n, tile: 16 },
        ),
        (
            format!("CR n=512 nsys={cr_nsys}"),
            KernelSpec::Tridiag {
                n: 512,
                nsys: cr_nsys,
                padded: false,
            },
        ),
        (
            format!("SpMV BELL+IMIV l={spmv_l}"),
            KernelSpec::Spmv {
                l: spmv_l,
                seed: 42,
                format: gpa_apps::spmv::Format::BellImIv,
                texture: true,
            },
        ),
    ];

    // One batch over the whole SKU × case grid.
    let requests: Vec<AnalysisRequest> = skus
        .iter()
        .flat_map(|sku| {
            cases
                .iter()
                .map(|(_, spec)| AnalysisRequest::new(spec.clone(), &sku.name))
        })
        .collect();
    let reports = analyzer.analyze_batch_with(&requests, Threads::from(threads));

    println!("Table 3: per-SKU model predictions (ms, measured = timing simulator)");
    rule(30 + 26 * skus.len());
    print!("{:<30}", "case");
    for sku in &skus {
        print!(" {:>25}", sku.name.replace("GeForce ", ""));
    }
    println!();
    rule(30 + 26 * skus.len());
    let mut it = reports.iter();
    let mut rows: Vec<Vec<&gpa_service::AnalysisReport>> = vec![Vec::new(); cases.len()];
    for _ in &skus {
        for row in rows.iter_mut() {
            row.push(it.next().unwrap().as_ref().expect("case analyzes"));
        }
    }
    for ((label, _), row) in cases.iter().zip(&rows) {
        print!("{label:<30}");
        for report in row {
            print!(
                " {:>11} pred {:>4} err",
                format!(
                    "{:.3}/{:.3}",
                    report.analysis.predicted_seconds * 1e3,
                    report.measured_seconds * 1e3
                ),
                vs_paper(report.analysis.predicted_seconds, report.measured_seconds),
            );
        }
        println!();
    }
    rule(30 + 26 * skus.len());
    println!("columns per SKU: predicted/measured ms, signed model error.");
    println!("paper Table 3 reports 5-15% magnitudes across these GPUs; the G92 SKUs");
    println!("differ from the flagship in SM count, clocks, residency, and bus width.");
    for (sku, row) in skus.iter().zip(rows_by_sku(&rows, skus.len())) {
        let worst = row
            .iter()
            .map(|r| (r.model_error().abs() * 100.0).round() as i64)
            .max()
            .unwrap_or(0);
        println!("  {:<18} worst-case |error| {worst}%", sku.name);
    }
}

/// Transpose the case-major rows into SKU-major rows.
fn rows_by_sku<'a>(
    rows: &'a [Vec<&'a gpa_service::AnalysisReport>],
    skus: usize,
) -> Vec<Vec<&'a gpa_service::AnalysisReport>> {
    (0..skus)
        .map(|s| rows.iter().map(|row| row[s]).collect())
        .collect()
}
