//! Figure 7: sustained shared-memory bandwidth per CR step (a) and the
//! per-step transaction counts with and without bank conflicts (b).

use gpa_apps::tridiag;
use gpa_bench::{curves, paper_scale, rule};
use gpa_core::Model;
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let nsys = if paper_scale() { 512 } else { 128 };
    let r = tridiag::run(&m, &mut model, 512, nsys, false, false).expect("CR runs");

    println!("Figure 7a: sustained shared bandwidth per forward step ({nsys} systems)");
    rule(72);
    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "step", "warps", "ours (GB/s)", "paper (GB/s)"
    );
    rule(72);
    let paper = [
        (1usize, 8u32, 1029.0),
        (2, 4, 723.0),
        (3, 2, 470.0),
        (4, 1, 330.0),
    ];
    for (step, pwarps, pbw) in paper {
        let s = &r.analysis.stages[tridiag::FIRST_FORWARD_STAGE + step - 1];
        println!(
            "{:>8} {:>12} {:>16.0} {:>16.0}",
            step,
            s.warps_smem,
            s.smem_bandwidth / 1e9,
            pbw
        );
        assert_eq!(s.warps_smem, pwarps, "warp count should match the paper");
    }
    rule(72);

    println!("\nFigure 7b: shared transactions per forward step (warp-equivalents)");
    rule(72);
    println!(
        "{:>8} {:>18} {:>18}  paper (512 sys): 139264 flat vs halving",
        "step", "with conflicts", "conflict-free"
    );
    rule(72);
    let scale = 512.0 / f64::from(nsys); // report at the paper's 512 systems
    for k in 0..6 {
        let s = &r.input.stats.stages[tridiag::FIRST_FORWARD_STAGE + k];
        println!(
            "{:>8} {:>18.0} {:>18.0}",
            k + 1,
            s.smem_warp_equiv() * scale,
            s.smem_warp_equiv_no_conflicts() * scale
        );
    }
    rule(72);
    println!("paper: with conflicts the count stays ~constant (halving work x doubling");
    println!("conflicts); without conflicts it halves each step to the 1-warp floor.");
}
