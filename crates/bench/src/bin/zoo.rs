//! Workload-zoo sweep: every named zoo workload on every Table 3 SKU,
//! through one batched `Analyzer` call, printed as a bottleneck/GFLOPS
//! grid. The zoo spans the model's diagnosis space — coalesced and
//! strided streaming, shared-memory staging, bank conflicts, contended
//! atomics, divergence — so this exhibit is a one-page portrait of what
//! each machine is limited by on each pattern.
//!
//! Default sizes keep the sweep quick; `--paper` selects each
//! workload's default (larger) size and full-resolution calibration.
//! `--threads N`/`--par` shards calibration and the batch.

use gpa_bench::{curves_with, paper_scale, rule, threads_arg};
use gpa_core::Component;
use gpa_hw::Machine;
use gpa_service::{zoo, AnalysisRequest, Analyzer, Effort, KernelSpec};
use gpa_sim::Threads;

fn main() {
    let paper = paper_scale();
    let threads = threads_arg();
    let effort = if paper { Effort::Paper } else { Effort::Quick };

    let skus = Machine::paper_table3();
    let mut analyzer = Analyzer::new();
    for sku in &skus {
        analyzer
            .install(
                sku.clone(),
                curves_with(sku, effort.measure_opts().with_threads(threads)),
            )
            .expect("cached curves match the machine");
    }

    let size = |w: &zoo::Workload| -> u32 {
        if paper {
            w.default_n
        } else {
            match w.name {
                "naive_transpose" | "shared_transpose" => 64,
                _ => 1024,
            }
        }
    };

    // One batch over the whole workload × SKU grid.
    let requests: Vec<AnalysisRequest> = zoo::WORKLOADS
        .iter()
        .flat_map(|w| {
            skus.iter().map(|sku| {
                AnalysisRequest::new(
                    KernelSpec::Named {
                        name: w.name.to_owned(),
                        n: size(w),
                        seed: 1,
                    },
                    &sku.name,
                )
            })
        })
        .collect();
    let reports = analyzer.analyze_batch_with(&requests, Threads::from(threads));
    let mut it = reports.into_iter();

    println!("Workload zoo: bottleneck and GFLOPS per Table 3 SKU");
    let width = 28 + 22 * skus.len();
    rule(width);
    print!("{:<28}", "workload");
    for sku in &skus {
        print!(" {:>21}", sku.name.replace("GeForce ", ""));
    }
    println!();
    rule(width);
    for w in &zoo::WORKLOADS {
        print!("{:<28}", format!("{} n={}", w.name, size(w)));
        for _ in &skus {
            let report = it.next().expect("grid answer").expect("workload analyzes");
            let gflops = if report.flops > 0 {
                format!("{:.1}", report.flops as f64 / report.measured_seconds / 1e9)
            } else {
                "-".into()
            };
            print!(" {:>13} {:>7}", short(report.analysis.bottleneck), gflops);
        }
        println!();
    }
    rule(width);
    println!("columns per SKU: bottleneck component, GFLOPS from the timing simulator");
    println!("(`-` = no floating-point work). Atomic workloads should pin the atomic");
    println!("unit, the conflict workload shared memory, the strided/gather/transpose");
    println!("workloads global memory.");
}

fn short(c: Component) -> &'static str {
    match c {
        Component::InstructionPipeline => "instr",
        Component::SharedMemory => "smem",
        Component::GlobalMemory => "gmem",
        Component::AtomicUnit => "atomic",
    }
}
