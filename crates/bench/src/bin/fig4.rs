//! Figure 4: matmul program statistics and performance per tile size.
//!
//! (a) dynamic counts: total instructions, MADs, shared transactions,
//!     global transactions; (b) measured time vs simulated component
//!     breakdown and GFLOPS.

use gpa_apps::matmul;
use gpa_bench::{curves, ms, paper_scale, rule};
use gpa_core::Model;
use gpa_hw::Machine;
use gpa_sim::stats::GRAN_GT200;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let n = if paper_scale() { 1024 } else { 512 };
    println!("Figure 4: dense matmul, n = {n} (paper: 1024)");

    // Paper values for n = 1024, in millions (Figure 4a) and ms (4b).
    let paper_counts = [
        (47.02, 33.55, 34.43, 4.75),
        (41.71, 33.55, 34.28, 2.65),
        (38.81, 33.55, 34.17, 1.61),
    ];
    let paper_times = [
        (6.0, 5.2, 4.0, 4.4),
        (5.4, 4.6, 3.9, 2.5),
        (5.6, 4.6, 5.0, 1.5),
    ];
    let paper_gflops = [356.0, 399.0, 397.0];

    rule(100);
    println!(
        "{:>7} {:>11} {:>9} {:>11} {:>11} | {:>9} {:>9} {:>9} {:>9} {:>8}",
        "tile",
        "instr(M)",
        "MAD(M)",
        "shared(M)",
        "global(M)",
        "meas ms",
        "instr ms",
        "shrd ms",
        "glob ms",
        "GFLOPS"
    );
    rule(100);
    for (i, tile) in matmul::TILES.into_iter().enumerate() {
        let r = matmul::run(&m, &mut model, n, tile, false).expect("matmul runs");
        let t = r.input.stats.total();
        let a = &r.analysis;
        let gflops = r.measured_gflops(matmul::flops(n));
        println!(
            "{:>7} {:>11.2} {:>9.2} {:>11.2} {:>11.2} | {:>9} {:>9} {:>9} {:>9} {:>8.0}",
            format!("{tile}x{tile}"),
            t.instr_total() as f64 / 1e6,
            t.fmad as f64 / 1e6,
            t.smem_warp_equiv() / 1e6,
            t.gmem[GRAN_GT200].transactions as f64 / 1e6,
            ms(r.measured_seconds()),
            ms(a.totals.instr),
            ms(a.totals.smem),
            ms(a.totals.gmem),
            gflops
        );
        let (pi, pm, ps, pg) = paper_counts[i];
        let (pt, pti, pts, ptg) = paper_times[i];
        println!(
            "{:>7} {:>11.2} {:>9.2} {:>11.2} {:>11.2} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.0}   <- paper (n=1024)",
            "", pi, pm, ps, pg, pt, pti, pts, ptg, paper_gflops[i]
        );
        println!(
            "{:>7} bottleneck: {} (next: {}); density {:.0}%",
            "",
            a.bottleneck,
            a.next_bottleneck,
            a.computational_density * 100.0
        );
    }
    rule(100);
    println!("paper findings: MAD count constant; totals fall with tile size; global");
    println!("transactions drop ~45%/40%; 16x16 fastest; 32x32 turns shared-memory-bound.");
}
