//! Figure 2 (left): instruction throughput per class vs warps per SM.

use gpa_bench::{curves, rule};
use gpa_hw::{InstrClass, Machine};

fn main() {
    let m = Machine::gtx285();
    let c = curves(&m);
    println!("Figure 2 (left): instruction throughput (Ginstr/s) vs warps/SM");
    rule(64);
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "warps", "Type I", "Type II", "Type III", "Type IV"
    );
    rule(64);
    for &w in &c.warps {
        print!("{w:>6}");
        for class in InstrClass::ALL {
            print!(" {:>12.2}", c.instruction_throughput(class, w) / 1e9);
        }
        println!();
    }
    rule(64);
    println!("paper landmarks: Type II saturates at ~6 warps (pipeline ~6 stages);");
    println!("sustained Type II ≈ 9.3 of 11.1 Ginstr/s theoretical (84%).");
    let knee = c
        .warps
        .iter()
        .find(|&&w| {
            c.instruction_throughput(InstrClass::TypeII, w)
                > 0.95 * c.instruction_throughput(InstrClass::TypeII, 32)
        })
        .copied()
        .unwrap_or(0);
    println!(
        "ours: Type II reaches 95% of plateau at {} warps; plateau {:.2} Ginstr/s",
        knee,
        c.instruction_throughput(InstrClass::TypeII, 32) / 1e9
    );
}
