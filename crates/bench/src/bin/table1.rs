//! Table 1: instruction classes, functional units, and peak throughputs,
//! plus our measured saturated throughput for each class — read from an
//! `Analyzer` session holding the (disk-cached) calibration.

use gpa_bench::{curves, rule};
use gpa_hw::{InstrClass, Machine};
use gpa_service::Analyzer;

fn main() {
    let m = Machine::gtx285();
    let mut analyzer = Analyzer::new();
    analyzer
        .install(m.clone(), curves(&m))
        .expect("cached curves match the machine");
    let c = analyzer.curves("gtx285").expect("calibrated");
    println!("Table 1: instruction types ({})", m.name);
    rule(78);
    println!(
        "{:<10} {:>8} {:>22} {:>18} {:>12}",
        "type", "FUs/SM", "examples", "peak (Ginstr/s)", "measured"
    );
    rule(78);
    let examples = [
        "mul",
        "mov, add, mad",
        "sin, cos, lg2, rcp",
        "double precision",
    ];
    for class in InstrClass::ALL {
        let peak = m.peak_warp_instruction_throughput(class) / 1e9;
        let meas = c.instruction_throughput(class, 32) / 1e9;
        println!(
            "{:<10} {:>8} {:>22} {:>18.2} {:>12.2}",
            class.to_string(),
            m.fus(class),
            examples[class.index()],
            peak,
            meas
        );
    }
    rule(78);
    println!(
        "peak MAD throughput:      {:>8.1} Ginstr/s (paper: 11.1)",
        m.peak_warp_instruction_throughput(InstrClass::TypeII) / 1e9
    );
    println!(
        "peak single-precision:    {:>8.1} GFLOPS   (paper: 710.4)",
        m.peak_flops_sp() / 1e9
    );
    println!(
        "peak shared bandwidth:    {:>8.1} GB/s     (paper: 1420)",
        m.peak_shared_bandwidth() / 1e9
    );
    println!(
        "peak global bandwidth:    {:>8.1} GB/s     (paper: 160)",
        m.peak_global_bandwidth() / 1e9
    );
}
