//! Figure 3: global-memory bandwidth vs number of blocks for the paper's
//! eight (threads, transactions-per-thread) configurations.

use gpa_bench::{paper_scale, rule};
use gpa_hw::Machine;
use gpa_ubench::gmem::{measure, GmemConfig};

fn main() {
    let m = Machine::gtx285();
    // The paper's legend: T = threads/block, M = 4-byte transactions/thread.
    let configs: [(u32, u32); 8] = [
        (512, 256),
        (256, 256),
        (256, 128),
        (128, 256),
        (128, 128),
        (64, 256),
        (512, 2),
        (256, 2),
    ];
    let max_blocks = if paper_scale() { 60 } else { 40 };
    println!("Figure 3: global bandwidth (GB/s) vs blocks");
    print!("{:>7}", "blocks");
    for (t, mm) in configs {
        print!(" {:>9}", format!("{t}T,{mm}M"));
    }
    println!();
    rule(7 + 10 * configs.len());
    for blocks in (1..=max_blocks).step_by(if paper_scale() { 1 } else { 3 }) {
        print!("{blocks:>7}");
        for (t, mm) in configs {
            let bw = measure(&m, GmemConfig::new(blocks, t, mm)) / 1e9;
            print!(" {bw:>9.1}");
        }
        println!();
    }
    rule(7 + 10 * configs.len());
    println!(
        "theoretical peak {:.0} GB/s; paper observes ~125 GB/s sustained,",
        m.peak_global_bandwidth() / 1e9
    );
    println!("a sawtooth of period 10 (blocks should be a multiple of 10), and");
    println!("near-linear growth while transactions are too few to cover latency.");
}
