//! Figure 6: simulated per-step component breakdown for CR and CR-NBC
//! (forward reduction phase, as in the paper).

use gpa_apps::tridiag;
use gpa_bench::{curves, paper_scale, rule};
use gpa_core::Model;
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    let nsys = if paper_scale() { 512 } else { 128 };
    for padded in [false, true] {
        let name = if padded {
            "CR-NBC (Figure 6b)"
        } else {
            "CR (Figure 6a)"
        };
        let r = tridiag::run(&m, &mut model, 512, nsys, padded, false).expect("CR runs");
        println!("{name}: {nsys} systems x 512 equations (paper: 512)");
        rule(76);
        println!(
            "{:>10} {:>11} {:>11} {:>11}  {:<20}",
            "step", "instr us", "shared us", "global us", "bottleneck"
        );
        rule(76);
        for (i, s) in r.analysis.stages.iter().enumerate().take(10) {
            let label = match i {
                0 => "load".to_owned(),
                k => format!("fwd {k}"),
            };
            println!(
                "{:>10} {:>11.3} {:>11.3} {:>11.3}  {:<20}",
                label,
                s.times.instr * 1e6,
                s.times.smem * 1e6,
                s.times.gmem * 1e6,
                s.bottleneck.to_string()
            );
        }
        rule(76);
        println!(
            "totals: measured {:.3} ms, predicted {:.3} ms (error {:+.1}%)\n",
            r.measured_seconds() * 1e3,
            r.predicted_seconds() * 1e3,
            r.model_error() * 100.0
        );
    }
    println!("paper: CR is global-bound in step 0, instruction-bound in step 1, and");
    println!("shared-memory-bound beyond; CR-NBC is instruction-bound throughout.");
}
