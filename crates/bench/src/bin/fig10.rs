//! Figure 10: why interleaving the vector helps — transaction grouping
//! under the paper's simplified issue model (2-thread granularity, 8-byte
//! transactions) for a small blocked gather.

use gpa_bench::rule;
use gpa_mem::coalesce::{coalesce_half_warp, CoalesceConfig};

/// Four threads, each owning one block-row of a 4-block-row matrix whose
/// slots reference the diagonal and the right neighbour (periodic) — the
/// 1-D skeleton of the QCD-like operator. `bcol(t, j)` is the block column
/// thread `t` gathers in slot `j`.
fn bcol(t: u64, j: u64) -> u64 {
    (t + j) % 4
}

fn total_bytes(addr_of: impl Fn(u64, u64) -> u64) -> u64 {
    // Paper's simplified model: transactions issue for 2 threads at a time
    // and are 8 bytes long.
    let cfg = CoalesceConfig {
        min_segment: 8,
        max_segment: 8,
    };
    let mut bytes = 0;
    for j in 0..2u64 {
        for p in 0..3u64 {
            for pair in [[0u64, 1], [2, 3]] {
                let accesses: Vec<Option<(u64, u32)>> = pair
                    .iter()
                    .map(|t| Some((addr_of(bcol(*t, j), p) * 4, 4u32)))
                    .collect();
                bytes += coalesce_half_warp(&accesses, cfg)
                    .iter()
                    .map(|t| u64::from(t.size))
                    .sum::<u64>();
            }
        }
    }
    bytes
}

fn main() {
    println!("Figure 10: vector storage vs memory-transaction grouping");
    println!("(4 threads gather x[3c..3c+3] for their block columns; 2-thread");
    println!(" transaction issue, 8-byte transactions — the paper's toy model)");
    rule(68);
    // Straightforward: x[3c + p] lives at position 3c + p.
    let straight = total_bytes(|c, p| 3 * c + p);
    // Interleaved: plane p holds x[3c + p] at position p·4 + c.
    let inter = total_bytes(|c, p| p * 4 + c);
    let useful = 2 * 3 * 4 * 4; // slots × planes × threads × 4 B
    println!("{:>28} {:>10} {:>16}", "storage", "bytes", "useful bytes");
    rule(68);
    println!("{:>28} {straight:>10} {useful:>16}", "straightforward");
    println!("{:>28} {inter:>10} {useful:>16}", "interleaved");
    rule(68);
    println!(
        "interleaving cuts gather traffic x{:.2}: neighbouring threads' entries",
        straight as f64 / inter as f64
    );
    println!("of the same plane are adjacent, so they share transactions - the");
    println!("paper's Figure 10(b) effect, measured at scale in fig11/fig12.");
}
