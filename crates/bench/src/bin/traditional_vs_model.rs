//! The paper's motivating contrast (§3): the traditional algorithmic-level
//! model cannot explain the case studies; the quantitative model can.
//!
//! For each case study we feed the traditional model the *algorithmic*
//! FLOP and byte counts and the measured time, and print its verdict next
//! to the quantitative model's bottleneck diagnosis.

use gpa_apps::{matmul, spmv, tridiag};
use gpa_bench::{curves, rule};
use gpa_core::{traditional_analysis, Model};
use gpa_hw::Machine;

fn main() {
    let m = Machine::gtx285();
    let mut model = Model::new(&m, curves(&m));
    println!("Traditional (algorithmic) model vs the paper's quantitative model");
    rule(100);

    // ---- dense matmul 16x16, n = 512 ----
    let n = 512u64;
    let mm = matmul::run(&m, &mut model, n as u32, 16, false).unwrap();
    // Algorithmic counts: 2n^3 flops; 3 n^2 matrix elements moved once.
    let trad = traditional_analysis(&m, 2 * n * n * n, 3 * n * n * 4, mm.measured_seconds(), 0.5);
    println!("matmul 16x16 (n={n}):");
    println!("  traditional:  {trad}");
    println!(
        "  quantitative: bottleneck {} (density {:.0}%)",
        mm.analysis.bottleneck,
        mm.analysis.computational_density * 100.0
    );

    // ---- cyclic reduction, 128 systems ----
    let nsys = 128u64;
    let cr = tridiag::run(&m, &mut model, 512, nsys as u32, false, false).unwrap();
    // Algorithmic counts per system of size 512: forward ~12 flops per
    // eliminated equation + backward ~5 per solved equation; bytes: load
    // 4 arrays, store x.
    let eqs = 512u64;
    let flops = nsys * (12 * (eqs - 1) + 5 * eqs);
    let bytes = nsys * (4 * eqs * 4 + eqs * 4);
    let trad = traditional_analysis(&m, flops, bytes, cr.measured_seconds(), 0.5);
    println!("cyclic reduction ({nsys} x 512 systems):");
    println!("  traditional:  {trad}");
    println!(
        "  quantitative: bottleneck {} (bank-conflict factor x{:.2})",
        cr.analysis.bottleneck, cr.analysis.bank_conflict_factor
    );
    println!("  paper: \"neither computation-bound nor memory-bound ... 6 GFLOPS and 7 GB/s\";");
    println!("         the quantitative model finds the shared-memory wall the roofline hides.");

    // ---- SpMV, ELL, L = 8 ----
    let qcd = spmv::qcd_like(8, 9);
    let sp = spmv::run(&m, &mut model, &qcd, spmv::Format::Ell, false, false).unwrap();
    // Algorithmic: 2 flops/nnz; 12 bytes/nnz (value + index + vector).
    let trad = traditional_analysis(
        &m,
        sp_flops(&qcd),
        qcd.nnz() * 12,
        sp.measured_seconds(),
        0.5,
    );
    println!("SpMV ELL (L=8):");
    println!("  traditional:  {trad}");
    println!(
        "  quantitative: bottleneck {} (coalescing {:.0}%)",
        sp.analysis.bottleneck,
        sp.analysis.coalescing_efficiency * 100.0
    );
    rule(100);
    println!("the traditional model sees low fractions everywhere and explains nothing;");
    println!("the quantitative model names the wall and prices its removal (paper §3).");
}

fn sp_flops(m: &gpa_apps::spmv::BlockSparse) -> u64 {
    m.flops()
}
