//! Table 2: matmul resource usage and occupancy per sub-matrix size.

use gpa_apps::matmul;
use gpa_bench::rule;
use gpa_hw::{occupancy, Machine};

fn main() {
    let m = Machine::gtx285();
    println!("Table 2: dense matmul occupancy (64-thread blocks)");
    rule(86);
    println!(
        "{:>9} {:>9} {:>9} {:>14} {:>10} {:>8} {:>13}",
        "tile", "regs", "smem B", "blocks(regs)", "blocks(sm)", "blocks", "active warps"
    );
    rule(86);
    for tile in matmul::TILES {
        let r = matmul::paper_resources(tile);
        let o = occupancy(&m, r);
        println!(
            "{:>9} {:>9} {:>9} {:>14} {:>10} {:>8} {:>13}",
            format!("{tile}x{tile}"),
            r.regs_per_thread,
            r.smem_per_block,
            o.blocks_by_regs,
            o.blocks_by_smem,
            o.blocks,
            o.active_warps
        );
    }
    rule(86);
    println!("paper rows: 8x8: min(16,47,8)=8 blocks, 16 warps; 16x16: min(8,15,8)=8, 16;");
    println!("            32x32: min(3,3,8)=3 blocks, 6 warps.");
    println!("(our register column shows 4 where the paper lists 3 for 32x32; the shared-");
    println!(" memory ceiling binds either way, so occupancy matches. See EXPERIMENTS.md.)");
}
