//! Table 2: matmul resource usage and occupancy per sub-matrix size —
//! the static occupancy calculation side by side with the occupancy an
//! `Analyzer` run actually reports.

use gpa_bench::{curves_with, rule, threads_arg};
use gpa_hw::{occupancy, Machine};
use gpa_service::{AnalysisRequest, Analyzer, KernelSpec};
use gpa_ubench::MeasureOpts;

fn main() {
    let m = Machine::gtx285();
    let mut analyzer = Analyzer::new();
    analyzer
        .install(
            m.clone(),
            curves_with(&m, MeasureOpts::quick().with_threads(threads_arg())),
        )
        .expect("cached curves match the machine");

    // n = 384 is the smallest grid valid for every tile size (multiple
    // of 8, 16, 32, and 64); occupancy is independent of n.
    let requests: Vec<AnalysisRequest> = gpa_apps::matmul::TILES
        .iter()
        .map(|&tile| AnalysisRequest::new(KernelSpec::Matmul { n: 384, tile }, "gtx285"))
        .collect();
    let reports = analyzer.analyze_batch(&requests);

    println!("Table 2: dense matmul occupancy (64-thread blocks)");
    rule(100);
    println!(
        "{:>9} {:>9} {:>9} {:>14} {:>10} {:>8} {:>13} {:>14}",
        "tile",
        "regs",
        "smem B",
        "blocks(regs)",
        "blocks(sm)",
        "blocks",
        "active warps",
        "analyzer b/w"
    );
    rule(100);
    for (tile, report) in gpa_apps::matmul::TILES.iter().zip(&reports) {
        let r = gpa_apps::matmul::paper_resources(*tile);
        let o = occupancy(&m, r);
        let report = report.as_ref().expect("matmul analyzes");
        assert_eq!(report.analysis.resident_blocks, o.blocks, "tile {tile}");
        assert_eq!(
            report.analysis.resident_warps, o.active_warps,
            "tile {tile}"
        );
        println!(
            "{:>9} {:>9} {:>9} {:>14} {:>10} {:>8} {:>13} {:>14}",
            format!("{tile}x{tile}"),
            r.regs_per_thread,
            r.smem_per_block,
            o.blocks_by_regs,
            o.blocks_by_smem,
            o.blocks,
            o.active_warps,
            format!(
                "{}/{}",
                report.analysis.resident_blocks, report.analysis.resident_warps
            ),
        );
    }
    rule(100);
    println!("paper rows: 8x8: min(16,47,8)=8 blocks, 16 warps; 16x16: min(8,15,8)=8, 16;");
    println!("            32x32: min(3,3,8)=3 blocks, 6 warps.");
    println!("(our register column shows 4 where the paper lists 3 for 32x32; the shared-");
    println!(" memory ceiling binds either way, so occupancy matches. See EXPERIMENTS.md.)");
}
