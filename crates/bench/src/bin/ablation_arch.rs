//! Architectural ablations: the hardware improvements the paper *suggests*
//! from its analysis, actually simulated.
//!
//! * §5.1: raise the resident-block ceiling from 8 to 16 so small-block
//!   kernels (matmul's 64-thread blocks) reach 32 warps/SM.
//! * §5.1: double the per-SM register file and shared memory so the 32×32
//!   tile keeps its computational-density advantage at full occupancy.
//! * §5.2: make the number of shared-memory banks prime (17) to remove
//!   power-of-two-stride conflicts without code changes.

use gpa_apps::{matmul, tridiag};
use gpa_bench::{curves, ms, rule};
use gpa_core::Model;
use gpa_hw::Machine;

fn main() {
    let base = Machine::gtx285();
    let shared_curves = curves(&base);
    let n = 512;
    let nsys = 128;

    println!("Architectural ablations (the paper's §5 suggestions, simulated)");
    rule(78);
    println!(
        "{:<44} {:>12} {:>10} {:>8}",
        "configuration", "measured ms", "baseline", "speedup"
    );
    rule(78);

    // ---- §5.1: 16 resident blocks for the 16×16 matmul ----
    let mut model = Model::new(&base, shared_curves.clone());
    let mm_base = matmul::run(&base, &mut model, n, 16, false).unwrap();
    let mut m16 = base.clone();
    m16.max_blocks_per_sm = 16;
    let mut model16 = Model::new(&m16, shared_curves.clone());
    let mm_16 = matmul::run(&m16, &mut model16, n, 16, false).unwrap();
    println!(
        "{:<44} {:>12} {:>10} {:>7.2}x",
        "matmul 16x16, 16 resident blocks (32 warps)",
        ms(mm_16.measured_seconds()),
        ms(mm_base.measured_seconds()),
        mm_base.measured_seconds() / mm_16.measured_seconds()
    );

    // ---- §5.1: double registers + shared memory for the 32×32 tile ----
    let mm32_base = matmul::run(&base, &mut model, n, 32, false).unwrap();
    let mut big = base.clone();
    big.regs_per_sm *= 2;
    big.smem_per_sm *= 2;
    let mut model_big = Model::new(&big, shared_curves.clone());
    let mm32_big = matmul::run(&big, &mut model_big, n, 32, false).unwrap();
    println!(
        "{:<44} {:>12} {:>10} {:>7.2}x",
        "matmul 32x32, 2x registers & shared memory",
        ms(mm32_big.measured_seconds()),
        ms(mm32_base.measured_seconds()),
        mm32_base.measured_seconds() / mm32_big.measured_seconds()
    );

    // ---- §5.2: 17 shared-memory banks for plain CR ----
    let cr_base = tridiag::run(&base, &mut model, 512, nsys, false, false).unwrap();
    let mut prime = base.clone();
    prime.smem_banks = 17;
    let mut model_p = Model::new(&prime, shared_curves.clone());
    let cr_prime = tridiag::run(&prime, &mut model_p, 512, nsys, false, true).unwrap();
    println!(
        "{:<44} {:>12} {:>10} {:>7.2}x",
        "plain CR, 17 (prime) shared-memory banks",
        ms(cr_prime.measured_seconds()),
        ms(cr_base.measured_seconds()),
        cr_base.measured_seconds() / cr_prime.measured_seconds()
    );
    println!(
        "{:<44} conflict factor {:.2} -> {:.2}",
        "", cr_base.analysis.bank_conflict_factor, cr_prime.analysis.bank_conflict_factor
    );

    // Software fix for comparison.
    let nbc = tridiag::run(&base, &mut model, 512, nsys, true, false).unwrap();
    println!(
        "{:<44} {:>12} {:>10} {:>7.2}x",
        "  (software fix for comparison: CR-NBC)",
        ms(nbc.measured_seconds()),
        ms(cr_base.measured_seconds()),
        cr_base.measured_seconds() / nbc.measured_seconds()
    );
    rule(78);
    println!("paper: more resident blocks would raise instruction and shared throughput");
    println!("for small-block kernels; prime banks would remove CR's conflicts entirely.");
}
