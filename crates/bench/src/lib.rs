#![warn(missing_docs)]

//! Regeneration harness for every table and figure of the paper.
//!
//! Each `src/bin/*.rs` binary reproduces one exhibit:
//!
//! | Binary | Paper exhibit |
//! |--------|---------------|
//! | `table1` | Table 1: instruction classes, functional units, peaks |
//! | `fig2_instr` | Figure 2 (left): instruction throughput vs warps/SM |
//! | `fig2_smem` | Figure 2 (right): shared-memory bandwidth vs warps/SM |
//! | `fig3_gmem` | Figure 3: global bandwidth vs blocks, eight configs |
//! | `table2` | Table 2: matmul occupancy |
//! | `fig4` | Figure 4: matmul counts, breakdown, GFLOPS |
//! | `fig5` | Figure 5: CR communication pattern / conflict degrees |
//! | `fig6` | Figure 6: CR and CR-NBC per-step breakdown |
//! | `fig7` | Figure 7: per-step bandwidth and transaction counts |
//! | `fig8` | Figure 8: CR vs CR-NBC, measured vs simulated |
//! | `fig10` | Figure 10: vector-interleaving transaction grouping |
//! | `fig11` | Figure 11: SpMV bytes/entry and breakdown |
//! | `fig12` | Figure 12: SpMV GFLOPS, six variants |
//!
//! Binaries print the paper's reported values next to ours; run them in
//! release mode (`cargo run --release -p gpa-bench --bin fig4`). Passing
//! `--paper` selects the paper's full problem sizes. `EXPERIMENTS.md`
//! records a full transcript.
//!
//! `benches/primitives.rs` holds Criterion microbenchmarks of the
//! simulator substrate itself (coalescer, bank conflicts, functional and
//! timing simulation, model analysis).

use gpa_hw::Machine;
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::fs;
use std::path::PathBuf;

/// Where figure outputs and cached measurements live.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Load the full-resolution throughput curves, measuring and caching them
/// on first use (`results/curves.json`).
pub fn curves(machine: &Machine) -> ThroughputCurves {
    let path = results_dir().join("curves.json");
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(c) = ThroughputCurves::from_json(&text) {
            if c.machine_name == machine.name {
                return c;
            }
        }
    }
    eprintln!(
        "measuring throughput curves (cached at {})...",
        path.display()
    );
    let c = ThroughputCurves::measure_with(machine, MeasureOpts::paper());
    if let Ok(json) = c.to_json() {
        let _ = fs::write(&path, json);
    }
    c
}

/// `true` when the binary was invoked with `--paper` (full problem sizes).
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Print a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Relative difference `ours` vs `paper` in percent, signed.
pub fn vs_paper(ours: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "n/a".into();
    }
    format!("{:+.0}%", (ours - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(0.0123), "12.300");
        assert_eq!(vs_paper(1.1, 1.0), "+10%");
        assert_eq!(vs_paper(1.0, 0.0), "n/a");
    }
}
