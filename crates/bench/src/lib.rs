#![warn(missing_docs)]

//! Regeneration harness for every table and figure of the paper.
//!
//! Each `src/bin/*.rs` binary reproduces one exhibit:
//!
//! | Binary | Paper exhibit |
//! |--------|---------------|
//! | `table1` | Table 1: instruction classes, functional units, peaks |
//! | `fig2_instr` | Figure 2 (left): instruction throughput vs warps/SM |
//! | `fig2_smem` | Figure 2 (right): shared-memory bandwidth vs warps/SM |
//! | `fig3_gmem` | Figure 3: global bandwidth vs blocks, eight configs |
//! | `table2` | Table 2: matmul occupancy |
//! | `table3` | Table 3: case studies across all three SKUs via `gpa_service::Analyzer` |
//! | `fig4` | Figure 4: matmul counts, breakdown, GFLOPS |
//! | `fig5` | Figure 5: CR communication pattern / conflict degrees |
//! | `fig6` | Figure 6: CR and CR-NBC per-step breakdown |
//! | `fig7` | Figure 7: per-step bandwidth and transaction counts |
//! | `fig8` | Figure 8: CR vs CR-NBC, measured vs simulated |
//! | `fig10` | Figure 10: vector-interleaving transaction grouping |
//! | `fig11` | Figure 11: SpMV bytes/entry and breakdown |
//! | `fig12` | Figure 12: SpMV GFLOPS, six variants |
//!
//! Binaries print the paper's reported values next to ours; run them in
//! release mode (`cargo run --release -p gpa-bench --bin fig4`). Passing
//! `--paper` selects the paper's full problem sizes; `--threads N` (or
//! `--par`) shards block simulation across worker threads with
//! bit-identical output. `EXPERIMENTS.md` records a full transcript.
//!
//! `benches/primitives.rs` holds Criterion microbenchmarks of the
//! simulator substrate itself (coalescer, bank conflicts, functional and
//! timing simulation, parallel engine sharding, model analysis).

use gpa_hw::Machine;
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::fs;
use std::path::PathBuf;

/// Where figure outputs and cached measurements live — the same
/// `results/` directory `gpa-analyze` and `gpa-serve` use
/// ([`gpa_ubench::cache::default_dir`] is the single definition, so the
/// three surfaces can never drift apart and stop sharing calibration).
pub fn results_dir() -> PathBuf {
    let dir = gpa_ubench::cache::default_dir();
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Content-hashed cache file for one `(machine, effort)` combination:
/// `results/curves-<name-slug>-<hash>.json`.
///
/// Delegates to [`gpa_ubench::cache::cache_path`] (the shared cache the
/// `gpa-analyze` CLI and the `gpa-serve` HTTP server also read): the key
/// covers every [`Machine`] field and the effort knobs of
/// [`MeasureOpts`] (`unroll`, `iters`, `dense`), so per-SKU and
/// per-effort curves never collide. The `threads` selection is
/// deliberately excluded: it changes wall-clock, not results.
pub fn curves_cache_path(machine: &Machine, opts: &MeasureOpts) -> PathBuf {
    gpa_ubench::cache::cache_path(&results_dir(), machine, opts)
}

/// Load the full-resolution throughput curves for `machine`, measuring
/// and caching them on first use. Honors the `--threads`/`--par` CLI
/// flag ([`threads_arg`]) for the measurement itself — sample points are
/// independent, so the curves (and the cache key) are identical at any
/// thread count.
pub fn curves(machine: &Machine) -> ThroughputCurves {
    curves_with(machine, MeasureOpts::paper().with_threads(threads_arg()))
}

/// Load throughput curves at explicit effort, measuring and caching on
/// first use under a content-hashed key ([`curves_cache_path`]).
///
/// Entries are written atomically (temp file + rename) and a torn or
/// unparseable entry falls back to recalibration, so concurrent
/// `gpa-bench` / `gpa-analyze` / `gpa-serve` processes can share
/// `results/` safely — see [`gpa_ubench::cache`].
pub fn curves_with(machine: &Machine, opts: MeasureOpts) -> ThroughputCurves {
    gpa_ubench::cache::load_or_measure(&results_dir(), machine, opts)
}

/// `true` when the binary was invoked with `--paper` (full problem sizes).
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Worker threads requested on the command line: `--threads N`
/// (`0` = auto, one per CPU core) or `--par` as shorthand for auto.
/// Defaults to `1` (sequential). Exhibits produce bit-identical numbers
/// for every thread count; only wall-clock changes.
pub fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let bad = || -> ! {
        eprintln!("error: --threads requires a count (0 = one worker per core)");
        std::process::exit(2);
    };
    for (i, arg) in args.iter().enumerate() {
        if arg == "--threads" {
            match args.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => return n,
                None => bad(),
            }
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse() {
                Ok(n) => return n,
                Err(_) => bad(),
            }
        }
    }
    if args.iter().any(|a| a == "--par") {
        0
    } else {
        1
    }
}

/// Print a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Relative difference `ours` vs `paper` in percent, signed.
pub fn vs_paper(ours: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "n/a".into();
    }
    format!("{:+.0}%", (ours - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn cache_keys_separate_skus_and_efforts() {
        let gtx285 = Machine::gtx285();
        let paper = MeasureOpts::paper();
        let base = curves_cache_path(&gtx285, &paper);
        assert!(base
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("curves-geforce-gtx-285-"));
        // Different SKU → different key.
        assert_ne!(base, curves_cache_path(&Machine::geforce_8800gt(), &paper));
        // Same SKU, different effort → different key.
        assert_ne!(base, curves_cache_path(&gtx285, &MeasureOpts::quick()));
        // A perturbed machine (what-if experiments) → different key.
        let mut perturbed = gtx285.clone();
        perturbed.max_blocks_per_sm = 16;
        assert_ne!(base, curves_cache_path(&perturbed, &paper));
        // Thread count does not affect results, so it shares the key.
        assert_eq!(base, curves_cache_path(&gtx285, &paper.with_threads(8)));
        // Stable across calls.
        assert_eq!(
            base,
            curves_cache_path(&Machine::gtx285(), &MeasureOpts::paper())
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(0.0123), "12.300");
        assert_eq!(vs_paper(1.1, 1.0), "+10%");
        assert_eq!(vs_paper(1.0, 0.0), "n/a");
    }
}
