//! Criterion microbenchmarks of the simulator substrate: the pieces every
//! figure regeneration exercises (coalescer, bank-conflict calculator,
//! functional simulation, timing replay, and a full model analysis).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpa_apps::{matmul, spmv, tridiag};
use gpa_core::{extract, Model};
use gpa_hw::{KernelResources, Machine};
use gpa_mem::bank::{bank_transactions, BankConfig};
use gpa_mem::coalesce::{coalesce_half_warp, CoalesceConfig};
use gpa_sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::hint::black_box;
use std::sync::Arc;

fn bench_coalescer(c: &mut Criterion) {
    let strided: Vec<Option<(u64, u32)>> = (0..16u64)
        .map(|i| Some((i * 36 % 4096 / 4 * 4, 4)))
        .collect();
    let unit: Vec<Option<(u64, u32)>> = (0..16u64).map(|i| Some((i * 4, 4))).collect();
    let cfg = CoalesceConfig::gt200();
    c.bench_function("coalesce/unit_stride", |b| {
        b.iter(|| coalesce_half_warp(black_box(&unit), cfg))
    });
    c.bench_function("coalesce/scattered", |b| {
        b.iter(|| coalesce_half_warp(black_box(&strided), cfg))
    });
}

fn bench_bank_conflicts(c: &mut Criterion) {
    let cfg = BankConfig::gt200();
    let stride2: Vec<Option<u64>> = (0..16u64).map(|i| Some(i * 8)).collect();
    c.bench_function("bank/stride2", |b| {
        b.iter(|| bank_transactions(black_box(&stride2), cfg))
    });
}

fn bench_functional_sim(c: &mut Criterion) {
    let machine = Machine::gtx285();
    let kernel = matmul::kernel(128, 16).unwrap();
    c.bench_function("func_sim/matmul128_block", |b| {
        b.iter_batched(
            || {
                let mut gmem = GlobalMemory::new();
                let data = matmul::setup(&mut gmem, 128);
                (
                    gmem,
                    [data.a_dev as u32, data.b_dev as u32, data.c_dev as u32],
                )
            },
            |(mut gmem, params)| {
                let mut sim =
                    FunctionalSim::new(&machine, &kernel, LaunchConfig::new_2d((8, 2), (64, 1)))
                        .unwrap();
                sim.set_params(&params);
                let mut stats = sim.fresh_stats();
                sim.run_block(&mut gmem, 0, &mut stats).unwrap();
                stats
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_engine_sharding(c: &mut Criterion) {
    // The SimEngine speedup exhibit: one large homogeneous grid
    // (matmul 256², 64 blocks of 64 threads), executed sequentially vs
    // sharded across all cores. Outputs are bit-identical; only
    // wall-clock differs.
    let machine = Machine::gtx285();
    let kernel = matmul::kernel(256, 16).unwrap();
    let launch = LaunchConfig::new_2d((16, 4), (64, 1));
    let mut gmem0 = GlobalMemory::new();
    let data = matmul::setup(&mut gmem0, 256);
    let params = [data.a_dev as u32, data.b_dev as u32, data.c_dev as u32];
    for (name, threads) in [
        ("engine/matmul256_seq", 1usize),
        ("engine/matmul256_par", 0),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || gmem0.clone(),
                |mut gmem| {
                    let mut sim = FunctionalSim::new(&machine, &kernel, launch).unwrap();
                    sim.set_params(&params).set_num_threads(threads);
                    sim.run(&mut gmem).unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
}

fn bench_timing_sim(c: &mut Criterion) {
    let machine = Machine::gtx285();
    let kernel = matmul::kernel(128, 16).unwrap();
    let mut gmem = GlobalMemory::new();
    let data = matmul::setup(&mut gmem, 128);
    let mut sim =
        FunctionalSim::new(&machine, &kernel, LaunchConfig::new_2d((8, 2), (64, 1))).unwrap();
    sim.set_params(&[data.a_dev as u32, data.b_dev as u32, data.c_dev as u32]);
    sim.collect_traces(true);
    let mut stats = sim.fresh_stats();
    let trace = Arc::new(sim.run_block(&mut gmem, 0, &mut stats).unwrap().unwrap());
    c.bench_function("timing_sim/matmul128", |b| {
        b.iter(|| {
            let mut timing = TimingSim::new(&machine);
            timing.assume_uniform_clusters(true);
            let mut src = TraceSource::Homogeneous(Arc::clone(&trace));
            timing.run(
                &mut src,
                &LaunchConfig::new_2d((8, 2), (64, 1)),
                KernelResources::new(30, 1088, 64),
            )
        })
    });
}

fn bench_model(c: &mut Criterion) {
    let machine = Machine::gtx285();
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let kernel = tridiag::kernel(512, false).unwrap();
    let mut gmem = GlobalMemory::new();
    let data = tridiag::setup(&mut gmem, 512, 8, 1);
    let launch = LaunchConfig::new_1d(8, 256);
    let mut sim = FunctionalSim::new(&machine, &kernel, launch).unwrap();
    let params: Vec<u32> = data.dev.iter().map(|d| *d as u32).collect();
    sim.set_params(&params);
    let out = sim.run(&mut gmem).unwrap();
    let input = extract(&machine, "cr", launch, kernel.resources, out.stats)
        .expect("statistics match the launch");
    c.bench_function("model/analyze_cr", |b| {
        let mut model = Model::new(&machine, curves.clone());
        b.iter(|| model.analyze(black_box(&input)))
    });
}

fn bench_spmv_generation(c: &mut Criterion) {
    c.bench_function("workload/qcd_like_l4", |b| b.iter(|| spmv::qcd_like(4, 7)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coalescer, bench_bank_conflicts, bench_functional_sim,
              bench_engine_sharding, bench_timing_sim, bench_model,
              bench_spmv_generation
}
criterion_main!(benches);
