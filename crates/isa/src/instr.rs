//! The instruction set: registers, operands, and operations.
//!
//! The ISA is deliberately GT200-flavoured: scalar 32-bit registers, four
//! predicate registers, ALU instructions that may take **one** operand
//! directly from shared memory (the idiom Volkov's matrix multiply relies
//! on: `mad.f32 r4, s[r2], r5, r4`), per-half-warp memory transactions, and
//! a `bar.sync` barrier. Every operation maps to one of the paper's Table 1
//! instruction classes via [`Op::class`].

use gpa_hw::InstrClass;
use std::fmt;

/// A 32-bit general-purpose register, `r0..r127`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of addressable registers per thread.
    pub const COUNT: u8 = 128;

    /// Returns `true` if the register index is addressable.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 < Self::COUNT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A predicate register, `p0..p3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(pub u8);

impl Pred {
    /// Number of predicate registers per thread.
    pub const COUNT: u8 = 4;

    /// Returns `true` if the predicate index is addressable.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 < Self::COUNT
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Guard on an instruction: execute only in lanes where the predicate holds
/// (`@p0`) or does not (`@!p0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredGuard {
    /// The predicate register tested.
    pub pred: Pred,
    /// `true` → execute where the predicate is **false** (`@!pN`).
    pub negate: bool,
}

impl fmt::Display for PredGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// Per-lane special registers readable with `s2r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block, x dimension.
    TidX,
    /// Thread index within the block, y dimension.
    TidY,
    /// Block index within the grid, x dimension.
    CtaIdX,
    /// Block index within the grid, y dimension.
    CtaIdY,
    /// Block size (threads), x dimension.
    NTidX,
    /// Block size (threads), y dimension.
    NTidY,
    /// Grid size (blocks), x dimension.
    NCtaIdX,
    /// Grid size (blocks), y dimension.
    NCtaIdY,
}

impl SpecialReg {
    /// All special registers, in encoding order.
    pub const ALL: [SpecialReg; 8] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::CtaIdX,
        SpecialReg::CtaIdY,
        SpecialReg::NTidX,
        SpecialReg::NTidY,
        SpecialReg::NCtaIdX,
        SpecialReg::NCtaIdY,
    ];

    /// Dense index, stable across releases (used by the binary encoding).
    pub fn index(self) -> u8 {
        Self::ALL.iter().position(|s| *s == self).unwrap() as u8
    }

    /// Inverse of [`SpecialReg::index`].
    pub fn from_index(i: u8) -> Option<SpecialReg> {
        Self::ALL.get(usize::from(i)).copied()
    }

    /// Assembly mnemonic, e.g. `%tid.x`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
        }
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A memory address expression `[base + offset]`.
///
/// With `base == None` the address is absolute (`offset` only). Offsets are
/// byte offsets; the binary encoding limits them to 18 signed bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Optional base register (per-lane value).
    pub base: Option<Reg>,
    /// Byte offset added to the base.
    pub offset: i32,
}

impl MemAddr {
    /// Maximum encodable offset magnitude (18-bit signed field).
    pub const MAX_OFFSET: i32 = (1 << 17) - 1;
    /// Minimum encodable offset.
    pub const MIN_OFFSET: i32 = -(1 << 17);

    /// Address with a base register and byte offset.
    pub fn new(base: Option<Reg>, offset: i32) -> MemAddr {
        MemAddr { base, offset }
    }

    /// Returns `true` if the offset fits the binary encoding.
    pub fn offset_encodable(self) -> bool {
        (Self::MIN_OFFSET..=Self::MAX_OFFSET).contains(&self.offset)
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, mag) = if self.offset < 0 {
            ("-", self.offset.unsigned_abs())
        } else {
            ("+", self.offset as u32)
        };
        match self.base {
            Some(r) if self.offset != 0 => write!(f, "{r}{sign}{mag:#x}"),
            Some(r) => write!(f, "{r}"),
            None if self.offset < 0 => write!(f, "-{mag:#x}"),
            None => write!(f, "{mag:#x}"),
        }
    }
}

/// An ALU source operand: a register, a small immediate, or a shared-memory
/// word (`s[base+off]`, the GT200 shared-operand idiom).
///
/// At most one `Imm` **or** one `SMem` operand may appear per instruction
/// (they share the immediate field of the binary encoding); this is checked
/// by [`crate::kernel::Kernel::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A general-purpose register.
    Reg(Reg),
    /// A signed immediate; must fit in 14 bits for the binary encoding.
    /// Full 32-bit constants are materialized with [`Op::MovImm`].
    Imm(i32),
    /// A 4-byte shared-memory operand.
    SMem(MemAddr),
}

impl Src {
    /// Maximum encodable inline immediate (14-bit signed field).
    pub const MAX_IMM: i32 = (1 << 13) - 1;
    /// Minimum encodable inline immediate.
    pub const MIN_IMM: i32 = -(1 << 13);

    /// Shorthand for a shared-memory operand.
    pub fn smem(base: Option<Reg>, offset: i32) -> Src {
        Src::SMem(MemAddr::new(base, offset))
    }

    /// The register read by this operand, if any (the address base for
    /// `SMem`).
    pub fn read_reg(self) -> Option<Reg> {
        match self {
            Src::Reg(r) => Some(r),
            Src::SMem(a) => a.base,
            Src::Imm(_) => None,
        }
    }

    /// Returns `true` for a shared-memory operand.
    pub fn is_smem(self) -> bool {
        matches!(self, Src::SMem(_))
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{v}"),
            Src::SMem(a) => write!(f, "s[{a}]"),
        }
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators, in encoding order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Assembly suffix (`eq`, `ne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Evaluate on signed 32-bit integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluate on `f32` (IEEE semantics; all comparisons with NaN are
    /// false except `Ne`).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Scalar type selector for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumTy {
    /// Signed 32-bit integer.
    S32,
    /// IEEE single precision.
    F32,
}

impl NumTy {
    /// Assembly suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            NumTy::S32 => "s32",
            NumTy::F32 => "f32",
        }
    }
}

/// Memory access width per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 4 bytes (one register).
    B32,
    /// 8 bytes (an aligned register pair).
    B64,
    /// 16 bytes (an aligned register quad).
    B128,
}

impl Width {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::B32 => 4,
            Width::B64 => 8,
            Width::B128 => 16,
        }
    }

    /// Number of consecutive registers moved.
    pub fn regs(self) -> u8 {
        (self.bytes() / 4) as u8
    }

    /// Assembly suffix (`b32`, `b64`, `b128`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Width::B32 => "b32",
            Width::B64 => "b64",
            Width::B128 => "b128",
        }
    }
}

/// The operation performed by an instruction.
///
/// Operand conventions: `d` is the destination register, `a`/`b`/`c` are
/// sources. Double-precision operations treat `d`/sources as the low
/// register of an aligned pair.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields follow the conventions above
pub enum Op {
    // ---- Type I ----
    /// `d = a * b` (f32). Ten functional units can run this (Table 1).
    FMul { d: Reg, a: Src, b: Src },

    // ---- Type II ----
    /// `d = a + b` (f32).
    FAdd { d: Reg, a: Src, b: Src },
    /// `d = a * b + c` (f32 fused multiply-add, the workhorse).
    FMad { d: Reg, a: Src, b: Src, c: Src },
    /// `d = a + b` (s32, wrapping).
    IAdd { d: Reg, a: Src, b: Src },
    /// `d = a - b` (s32, wrapping).
    ISub { d: Reg, a: Src, b: Src },
    /// `d = a * b` (s32 low 32 bits, wrapping).
    IMul { d: Reg, a: Src, b: Src },
    /// `d = a * b + c` (s32, wrapping).
    IMad { d: Reg, a: Src, b: Src, c: Src },
    /// `d = min(a, b)` (s32).
    IMin { d: Reg, a: Src, b: Src },
    /// `d = max(a, b)` (s32).
    IMax { d: Reg, a: Src, b: Src },
    /// `d = a << (b & 31)`.
    Shl { d: Reg, a: Src, b: Src },
    /// `d = ((u32)a) >> (b & 31)` (logical).
    Shr { d: Reg, a: Src, b: Src },
    /// `d = a & b`.
    And { d: Reg, a: Src, b: Src },
    /// `d = a | b`.
    Or { d: Reg, a: Src, b: Src },
    /// `d = a ^ b`.
    Xor { d: Reg, a: Src, b: Src },
    /// `d = a` (register/immediate/shared-operand move).
    Mov { d: Reg, a: Src },
    /// `d = imm` (full 32-bit immediate; the only way to materialize f32
    /// constants).
    MovImm { d: Reg, imm: u32 },
    /// `d = special register` (`%tid.x` etc.).
    S2R { d: Reg, sr: SpecialReg },
    /// `p = a <cmp> b` on `ty`.
    SetP {
        p: Pred,
        cmp: CmpOp,
        ty: NumTy,
        a: Src,
        b: Src,
    },
    /// `d = p ? a : b`.
    Sel { d: Reg, p: Pred, a: Src, b: Src },
    /// `d = (f32)(s32)a`.
    I2F { d: Reg, a: Src },
    /// `d = (s32)truncate(f32 a)`.
    F2I { d: Reg, a: Src },

    // ---- Type III (special-function unit) ----
    /// `d = 1 / a` (f32 approximate reciprocal).
    Rcp { d: Reg, a: Src },
    /// `d = 1 / sqrt(a)` (f32).
    Rsq { d: Reg, a: Src },
    /// `d = sin(a)` (f32).
    Sin { d: Reg, a: Src },
    /// `d = cos(a)` (f32).
    Cos { d: Reg, a: Src },
    /// `d = log2(a)` (f32).
    Lg2 { d: Reg, a: Src },
    /// `d = 2^a` (f32).
    Ex2 { d: Reg, a: Src },

    // ---- Type IV (double precision; registers are aligned pairs) ----
    /// `d:d+1 = a:a+1 + b:b+1` (f64).
    DAdd { d: Reg, a: Reg, b: Reg },
    /// `d:d+1 = a:a+1 * b:b+1` (f64).
    DMul { d: Reg, a: Reg, b: Reg },
    /// `d:d+1 = a:a+1 * b:b+1 + c:c+1` (f64 fused).
    DFma { d: Reg, a: Reg, b: Reg, c: Reg },

    // ---- Memory ----
    /// Load `width` bytes from shared memory into `d..` .
    LdShared { d: Reg, addr: MemAddr, width: Width },
    /// Store `width` bytes from `src..` to shared memory.
    StShared {
        addr: MemAddr,
        src: Reg,
        width: Width,
    },
    /// Load `width` bytes from global memory into `d..` .
    LdGlobal { d: Reg, addr: MemAddr, width: Width },
    /// Store `width` bytes from `src..` to global memory.
    StGlobal {
        addr: MemAddr,
        src: Reg,
        width: Width,
    },
    /// Load a 32-bit kernel parameter word (byte `offset` into the
    /// parameter block).
    LdParam { d: Reg, offset: u16 },
    /// Atomic read-modify-write add on a shared-memory word:
    /// `d = [addr]; [addr] = d + src` (s32, wrapping). Lanes of a warp
    /// hitting the same word serialize in lane order, so the returned old
    /// values are deterministic.
    AtomSharedAdd { d: Reg, addr: MemAddr, src: Reg },
    /// Atomic compare-and-swap on a shared-memory word:
    /// `d = [addr]; if d == cmp then [addr] = src`. Same-word lanes
    /// serialize in lane order.
    AtomSharedCas {
        d: Reg,
        addr: MemAddr,
        cmp: Reg,
        src: Reg,
    },

    // ---- Control ----
    /// Block-wide barrier (`bar.sync`). Splits the program into the stages
    /// the model analyzes (paper §3).
    Bar,
    /// Branch to absolute instruction index `target`. Conditional when the
    /// instruction carries a [`PredGuard`].
    Bra { target: u32 },
    /// Terminate the thread.
    Exit,
    /// No operation (padding; still occupies an issue slot).
    Nop,
}

impl Op {
    /// The paper Table 1 class of this operation.
    ///
    /// Memory and control instructions occupy an issue slot like a Type II
    /// instruction: the GT200 issue unit treats them uniformly; their
    /// *memory* cost is modeled separately by the shared/global components.
    pub fn class(&self) -> InstrClass {
        match self {
            Op::FMul { .. } => InstrClass::TypeI,
            Op::Rcp { .. }
            | Op::Rsq { .. }
            | Op::Sin { .. }
            | Op::Cos { .. }
            | Op::Lg2 { .. }
            | Op::Ex2 { .. } => InstrClass::TypeIII,
            Op::DAdd { .. } | Op::DMul { .. } | Op::DFma { .. } => InstrClass::TypeIV,
            _ => InstrClass::TypeII,
        }
    }

    /// Destination register and the number of consecutive registers written
    /// starting there, if the op writes registers.
    pub fn dst(&self) -> Option<(Reg, u8)> {
        match *self {
            Op::FMul { d, .. }
            | Op::FAdd { d, .. }
            | Op::FMad { d, .. }
            | Op::IAdd { d, .. }
            | Op::ISub { d, .. }
            | Op::IMul { d, .. }
            | Op::IMad { d, .. }
            | Op::IMin { d, .. }
            | Op::IMax { d, .. }
            | Op::Shl { d, .. }
            | Op::Shr { d, .. }
            | Op::And { d, .. }
            | Op::Or { d, .. }
            | Op::Xor { d, .. }
            | Op::Mov { d, .. }
            | Op::MovImm { d, .. }
            | Op::S2R { d, .. }
            | Op::Sel { d, .. }
            | Op::I2F { d, .. }
            | Op::F2I { d, .. }
            | Op::Rcp { d, .. }
            | Op::Rsq { d, .. }
            | Op::Sin { d, .. }
            | Op::Cos { d, .. }
            | Op::Lg2 { d, .. }
            | Op::Ex2 { d, .. }
            | Op::LdParam { d, .. }
            | Op::AtomSharedAdd { d, .. }
            | Op::AtomSharedCas { d, .. } => Some((d, 1)),
            Op::DAdd { d, .. } | Op::DMul { d, .. } | Op::DFma { d, .. } => Some((d, 2)),
            Op::LdShared { d, width, .. } | Op::LdGlobal { d, width, .. } => {
                Some((d, width.regs()))
            }
            _ => None,
        }
    }

    /// Registers read by this operation (including address bases and store
    /// sources), expanded for multi-register operands.
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(4);
        let mut push_src = |s: &Src| {
            if let Some(r) = s.read_reg() {
                out.push(r);
            }
        };
        match self {
            Op::FMul { a, b, .. }
            | Op::FAdd { a, b, .. }
            | Op::IAdd { a, b, .. }
            | Op::ISub { a, b, .. }
            | Op::IMul { a, b, .. }
            | Op::IMin { a, b, .. }
            | Op::IMax { a, b, .. }
            | Op::Shl { a, b, .. }
            | Op::Shr { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::SetP { a, b, .. }
            | Op::Sel { a, b, .. } => {
                push_src(a);
                push_src(b);
            }
            Op::FMad { a, b, c, .. } | Op::IMad { a, b, c, .. } => {
                push_src(a);
                push_src(b);
                push_src(c);
            }
            Op::Mov { a, .. }
            | Op::I2F { a, .. }
            | Op::F2I { a, .. }
            | Op::Rcp { a, .. }
            | Op::Rsq { a, .. }
            | Op::Sin { a, .. }
            | Op::Cos { a, .. }
            | Op::Lg2 { a, .. }
            | Op::Ex2 { a, .. } => push_src(a),
            Op::DAdd { a, b, .. } | Op::DMul { a, b, .. } => {
                out.extend([*a, Reg(a.0 + 1), *b, Reg(b.0 + 1)]);
            }
            Op::DFma { a, b, c, .. } => {
                out.extend([*a, Reg(a.0 + 1), *b, Reg(b.0 + 1), *c, Reg(c.0 + 1)]);
            }
            Op::LdShared { addr, .. } | Op::LdGlobal { addr, .. } => {
                out.extend(addr.base);
            }
            Op::StShared { addr, src, width } | Op::StGlobal { addr, src, width } => {
                out.extend(addr.base);
                for i in 0..width.regs() {
                    out.push(Reg(src.0 + i));
                }
            }
            Op::AtomSharedAdd { addr, src, .. } => {
                out.extend(addr.base);
                out.push(*src);
            }
            Op::AtomSharedCas { addr, cmp, src, .. } => {
                out.extend(addr.base);
                out.extend([*cmp, *src]);
            }
            Op::MovImm { .. }
            | Op::S2R { .. }
            | Op::LdParam { .. }
            | Op::Bar
            | Op::Bra { .. }
            | Op::Exit
            | Op::Nop => {}
        }
        out
    }

    /// The shared-memory operand of an ALU instruction, if present.
    ///
    /// Allocation-free (the functional simulator asks this once per
    /// executed warp-instruction); equivalent to scanning
    /// [`Op::operands`] in order for the first [`Src::SMem`].
    pub fn smem_operand(&self) -> Option<MemAddr> {
        fn pick(s: &Src) -> Option<MemAddr> {
            match s {
                Src::SMem(a) => Some(*a),
                _ => None,
            }
        }
        match self {
            Op::FMul { a, b, .. }
            | Op::FAdd { a, b, .. }
            | Op::IAdd { a, b, .. }
            | Op::ISub { a, b, .. }
            | Op::IMul { a, b, .. }
            | Op::IMin { a, b, .. }
            | Op::IMax { a, b, .. }
            | Op::Shl { a, b, .. }
            | Op::Shr { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::SetP { a, b, .. }
            | Op::Sel { a, b, .. } => pick(a).or_else(|| pick(b)),
            Op::FMad { a, b, c, .. } | Op::IMad { a, b, c, .. } => {
                pick(a).or_else(|| pick(b)).or_else(|| pick(c))
            }
            Op::Mov { a, .. }
            | Op::I2F { a, .. }
            | Op::F2I { a, .. }
            | Op::Rcp { a, .. }
            | Op::Rsq { a, .. }
            | Op::Sin { a, .. }
            | Op::Cos { a, .. }
            | Op::Lg2 { a, .. }
            | Op::Ex2 { a, .. } => pick(a),
            _ => None,
        }
    }

    /// All `Src` operands of an ALU-style instruction (empty for memory and
    /// control ops).
    pub fn operands(&self) -> Vec<Src> {
        match self {
            Op::FMul { a, b, .. }
            | Op::FAdd { a, b, .. }
            | Op::IAdd { a, b, .. }
            | Op::ISub { a, b, .. }
            | Op::IMul { a, b, .. }
            | Op::IMin { a, b, .. }
            | Op::IMax { a, b, .. }
            | Op::Shl { a, b, .. }
            | Op::Shr { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::SetP { a, b, .. }
            | Op::Sel { a, b, .. } => vec![*a, *b],
            Op::FMad { a, b, c, .. } | Op::IMad { a, b, c, .. } => vec![*a, *b, *c],
            Op::Mov { a, .. }
            | Op::I2F { a, .. }
            | Op::F2I { a, .. }
            | Op::Rcp { a, .. }
            | Op::Rsq { a, .. }
            | Op::Sin { a, .. }
            | Op::Cos { a, .. }
            | Op::Lg2 { a, .. }
            | Op::Ex2 { a, .. } => vec![*a],
            _ => Vec::new(),
        }
    }

    /// Returns `true` if this op touches shared memory (explicit `ld/st`,
    /// an atomic, or an ALU shared operand).
    pub fn touches_shared(&self) -> bool {
        matches!(
            self,
            Op::LdShared { .. }
                | Op::StShared { .. }
                | Op::AtomSharedAdd { .. }
                | Op::AtomSharedCas { .. }
        ) || self.smem_operand().is_some()
    }

    /// Returns `true` for shared-memory atomic read-modify-write ops.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Op::AtomSharedAdd { .. } | Op::AtomSharedCas { .. })
    }

    /// Returns `true` if this op touches global memory.
    pub fn touches_global(&self) -> bool {
        matches!(self, Op::LdGlobal { .. } | Op::StGlobal { .. })
    }

    /// Returns `true` for control-flow operations (`bra`, `exit`, `bar`).
    pub fn is_control(&self) -> bool {
        matches!(self, Op::Bra { .. } | Op::Exit | Op::Bar)
    }
}

/// A complete instruction: an optional predicate guard plus the operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Lane guard; `None` executes in all active lanes.
    pub guard: Option<PredGuard>,
    /// The operation.
    pub op: Op,
}

impl Instruction {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Instruction {
        Instruction { guard: None, op }
    }

    /// A guarded instruction (`@p` / `@!p`).
    pub fn guarded(pred: Pred, negate: bool, op: Op) -> Instruction {
        Instruction {
            guard: Some(PredGuard { pred, negate }),
            op,
        }
    }
}

impl From<Op> for Instruction {
    fn from(op: Op) -> Instruction {
        Instruction::new(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_table1() {
        let r = Reg(0);
        let s = Src::Reg(Reg(1));
        assert_eq!(Op::FMul { d: r, a: s, b: s }.class(), InstrClass::TypeI);
        assert_eq!(
            Op::FMad {
                d: r,
                a: s,
                b: s,
                c: s
            }
            .class(),
            InstrClass::TypeII
        );
        assert_eq!(Op::Mov { d: r, a: s }.class(), InstrClass::TypeII);
        assert_eq!(Op::IAdd { d: r, a: s, b: s }.class(), InstrClass::TypeII);
        assert_eq!(Op::Rcp { d: r, a: s }.class(), InstrClass::TypeIII);
        assert_eq!(Op::Sin { d: r, a: s }.class(), InstrClass::TypeIII);
        assert_eq!(
            Op::DFma {
                d: Reg(0),
                a: Reg(2),
                b: Reg(4),
                c: Reg(6)
            }
            .class(),
            InstrClass::TypeIV
        );
        // Memory and control occupy a Type II issue slot.
        assert_eq!(Op::Bar.class(), InstrClass::TypeII);
        assert_eq!(
            Op::LdGlobal {
                d: r,
                addr: MemAddr::new(None, 0),
                width: Width::B32
            }
            .class(),
            InstrClass::TypeII
        );
    }

    #[test]
    fn dst_and_srcs_account_for_widths() {
        let op = Op::LdGlobal {
            d: Reg(4),
            addr: MemAddr::new(Some(Reg(2)), 16),
            width: Width::B128,
        };
        assert_eq!(op.dst(), Some((Reg(4), 4)));
        assert_eq!(op.src_regs(), vec![Reg(2)]);

        let st = Op::StShared {
            addr: MemAddr::new(Some(Reg(1)), 0),
            src: Reg(8),
            width: Width::B64,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.src_regs(), vec![Reg(1), Reg(8), Reg(9)]);
    }

    #[test]
    fn smem_operand_detection() {
        let mad = Op::FMad {
            d: Reg(0),
            a: Src::smem(Some(Reg(3)), 8),
            b: Src::Reg(Reg(1)),
            c: Src::Reg(Reg(0)),
        };
        assert!(mad.touches_shared());
        assert_eq!(mad.smem_operand(), Some(MemAddr::new(Some(Reg(3)), 8)));
        assert!(!mad.touches_global());

        let add = Op::IAdd {
            d: Reg(0),
            a: Src::Reg(Reg(1)),
            b: Src::Imm(4),
        };
        assert!(!add.touches_shared());
        assert_eq!(add.smem_operand(), None);
    }

    #[test]
    fn atomic_ops_account_operands() {
        let add = Op::AtomSharedAdd {
            d: Reg(0),
            addr: MemAddr::new(Some(Reg(1)), 4),
            src: Reg(2),
        };
        assert!(add.touches_shared() && add.is_atomic());
        assert_eq!(add.dst(), Some((Reg(0), 1)));
        assert_eq!(add.src_regs(), vec![Reg(1), Reg(2)]);
        assert_eq!(add.class(), InstrClass::TypeII);
        let cas = Op::AtomSharedCas {
            d: Reg(0),
            addr: MemAddr::new(None, 8),
            cmp: Reg(3),
            src: Reg(4),
        };
        assert_eq!(cas.src_regs(), vec![Reg(3), Reg(4)]);
        assert!(
            cas.smem_operand().is_none(),
            "atomics are not ALU shared operands"
        );
        assert!(!add.touches_global() && !add.is_control());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(!CmpOp::Lt.eval_i32(0, 0));
        assert!(CmpOp::Ge.eval_f32(2.0, 2.0));
        assert!(CmpOp::Ne.eval_f32(f32::NAN, 0.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Reg(7)), "r7");
        assert_eq!(format!("{}", Pred(2)), "p2");
        assert_eq!(format!("{}", Src::smem(Some(Reg(2)), 16)), "s[r2+0x10]");
        assert_eq!(format!("{}", Src::smem(None, 0)), "s[0x0]");
        assert_eq!(format!("{}", Src::Imm(-3)), "-3");
        assert_eq!(
            format!(
                "{}",
                PredGuard {
                    pred: Pred(1),
                    negate: true
                }
            ),
            "@!p1"
        );
        assert_eq!(SpecialReg::TidX.mnemonic(), "%tid.x");
    }

    #[test]
    fn special_reg_index_round_trips() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_index(sr.index()), Some(sr));
        }
        assert_eq!(SpecialReg::from_index(8), None);
    }

    #[test]
    fn width_sizes() {
        assert_eq!(Width::B32.bytes(), 4);
        assert_eq!(Width::B64.regs(), 2);
        assert_eq!(Width::B128.regs(), 4);
    }
}
