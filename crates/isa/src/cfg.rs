//! Control-flow analysis: basic blocks and postdominators.
//!
//! The functional simulator handles branch divergence with the classic SIMT
//! reconvergence-stack scheme: when a warp diverges at a conditional branch,
//! the two lane subsets execute one after the other and reconverge at the
//! branch's **immediate postdominator**. This module computes those points
//! once per kernel.

use crate::instr::{Instruction, Op};

/// A maximal straight-line instruction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// Past-the-end instruction index.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// Control-flow graph of a kernel with postdominator information.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to its block index.
    pub block_of_instr: Vec<usize>,
    /// Immediate postdominator of each block (`None` when only the kernel
    /// exit postdominates it).
    ipdom: Vec<Option<usize>>,
}

impl Cfg {
    /// Build the CFG and postdominator tree for an instruction stream.
    ///
    /// Blocks are split at branch targets and after control instructions.
    /// The analysis is purely structural — it does not require the kernel
    /// to have passed [`crate::kernel::Kernel::validate`], but out-of-range
    /// branch targets are treated as kernel exits.
    pub fn build(instrs: &[Instruction]) -> Cfg {
        let n = instrs.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of_instr: Vec::new(),
                ipdom: Vec::new(),
            };
        }

        // Leaders: entry, branch targets, fall-throughs after control flow.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, ins) in instrs.iter().enumerate() {
            match ins.op {
                Op::Bra { target } => {
                    if (target as usize) < n {
                        leader[target as usize] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Op::Exit if i + 1 < n => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }

        let mut blocks = Vec::new();
        let mut block_of_instr = vec![0usize; n];
        let mut start = 0usize;
        for (i, &lead) in leader.iter().enumerate() {
            if i > start && lead {
                blocks.push(BasicBlock {
                    start,
                    end: i,
                    succs: Vec::new(),
                });
                start = i;
            }
        }
        blocks.push(BasicBlock {
            start,
            end: n,
            succs: Vec::new(),
        });
        for (bi, b) in blocks.iter().enumerate() {
            block_of_instr[b.start..b.end].fill(bi);
        }

        // Successors.
        let nb = blocks.len();
        let succ_lists: Vec<Vec<usize>> = blocks
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                let last = b.end - 1;
                match instrs[last] {
                    Instruction {
                        guard,
                        op: Op::Bra { target },
                    } => {
                        let mut s = Vec::new();
                        if (target as usize) < n {
                            s.push(block_of_instr[target as usize]);
                        }
                        // A guarded branch can fall through.
                        if guard.is_some() && bi + 1 < nb {
                            s.push(bi + 1);
                        }
                        s
                    }
                    Instruction {
                        guard: None,
                        op: Op::Exit,
                    } => Vec::new(),
                    Instruction {
                        guard: Some(_),
                        op: Op::Exit,
                    } => {
                        // Guarded exit: some lanes fall through.
                        if bi + 1 < nb {
                            vec![bi + 1]
                        } else {
                            Vec::new()
                        }
                    }
                    _ => {
                        if bi + 1 < nb {
                            vec![bi + 1]
                        } else {
                            Vec::new()
                        }
                    }
                }
            })
            .collect();
        for (b, succs) in blocks.iter_mut().zip(succ_lists) {
            b.succs = succs;
        }

        let ipdom = compute_ipdom(&blocks);
        Cfg {
            blocks,
            block_of_instr,
            ipdom,
        }
    }

    /// Immediate postdominator of block `b`, or `None` when only the kernel
    /// exit postdominates it.
    pub fn ipdom_block(&self, b: usize) -> Option<usize> {
        self.ipdom.get(b).copied().flatten()
    }

    /// The instruction index at which the divergent paths of the (guarded)
    /// branch at `branch_pc` reconverge, or `None` to reconverge at kernel
    /// exit.
    pub fn reconvergence_pc(&self, branch_pc: usize) -> Option<usize> {
        let b = *self.block_of_instr.get(branch_pc)?;
        self.ipdom_block(b).map(|p| self.blocks[p].start)
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Set-based iterative postdominator computation with a virtual exit node.
///
/// Kernels are small (at most a few thousand instructions, tens of blocks),
/// so the O(n²) bitset fixpoint is plenty fast and easy to audit.
fn compute_ipdom(blocks: &[BasicBlock]) -> Vec<Option<usize>> {
    let nb = blocks.len();
    let exit = nb; // virtual exit node index
    let total = nb + 1;
    let words = total.div_ceil(64);

    // pdom[b] as bitsets; all-ones initially except exit = {exit}.
    let full = {
        let mut v = vec![u64::MAX; words];
        let extra = words * 64 - total;
        if extra > 0 {
            v[words - 1] = u64::MAX >> extra;
        }
        v
    };
    let mut pdom: Vec<Vec<u64>> = (0..total).map(|_| full.clone()).collect();
    let mut exit_only = vec![0u64; words];
    exit_only[exit / 64] |= 1 << (exit % 64);
    pdom[exit] = exit_only;

    let succs_of = |b: usize| -> Vec<usize> {
        if blocks[b].succs.is_empty() {
            vec![exit]
        } else {
            blocks[b].succs.clone()
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse program order converges fastest for postdominators.
        for b in (0..nb).rev() {
            let mut inter = full.clone();
            for s in succs_of(b) {
                for w in 0..words {
                    inter[w] &= pdom[s][w];
                }
            }
            inter[b / 64] |= 1 << (b % 64);
            if inter != pdom[b] {
                pdom[b] = inter;
                changed = true;
            }
        }
    }

    let contains = |set: &[u64], x: usize| set[x / 64] & (1 << (x % 64)) != 0;

    (0..nb)
        .map(|b| {
            // Strict postdominators of b, excluding the virtual exit.
            let cands: Vec<usize> = (0..nb)
                .filter(|&c| c != b && contains(&pdom[b], c))
                .collect();
            // The immediate one is postdominated by every other candidate...
            // i.e. its own pdom set contains all of them.
            cands
                .iter()
                .copied()
                .find(|&c| cands.iter().all(|&q| contains(&pdom[c], q)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Pred, Reg, Src};

    fn nop() -> Instruction {
        Instruction::new(Op::Nop)
    }

    fn bra(t: u32) -> Instruction {
        Instruction::new(Op::Bra { target: t })
    }

    fn bra_if(p: u8, t: u32) -> Instruction {
        Instruction::guarded(Pred(p), false, Op::Bra { target: t })
    }

    fn exit() -> Instruction {
        Instruction::new(Op::Exit)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = Cfg::build(&[nop(), nop(), exit()]);
        assert_eq!(cfg.num_blocks(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert_eq!(cfg.ipdom_block(0), None);
    }

    #[test]
    fn diamond_reconverges_at_join() {
        // 0: bra_if p0 -> 3
        // 1: nop   (else arm)
        // 2: bra -> 4
        // 3: nop   (then arm)
        // 4: exit  (join)
        let instrs = [bra_if(0, 3), nop(), bra(4), nop(), exit()];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.num_blocks(), 4);
        // Branch at pc 0 reconverges at the join block (pc 4).
        assert_eq!(cfg.reconvergence_pc(0), Some(4));
    }

    #[test]
    fn loop_back_edge() {
        // 0: nop        (header/body)
        // 1: bra_if -> 0
        // 2: exit
        let instrs = [nop(), bra_if(0, 0), exit()];
        let cfg = Cfg::build(&instrs);
        // The loop branch reconverges at the loop exit (pc 2).
        assert_eq!(cfg.reconvergence_pc(1), Some(2));
    }

    #[test]
    fn if_without_else() {
        // 0: bra_if p0 -> 2   (skip)
        // 1: nop              (guarded body)
        // 2: exit
        let instrs = [bra_if(0, 2), nop(), exit()];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.reconvergence_pc(0), Some(2));
    }

    #[test]
    fn nested_diamonds() {
        // outer: 0 bra_if->6 | 1 bra_if->4 | 2 nop | 3 bra 5 | 4 nop | 5 bra 7 | 6 nop | 7 exit
        let instrs = [
            bra_if(0, 6),
            bra_if(1, 4),
            nop(),
            bra(5),
            nop(),
            bra(7),
            nop(),
            exit(),
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.reconvergence_pc(0), Some(7));
        assert_eq!(cfg.reconvergence_pc(1), Some(5));
    }

    #[test]
    fn guarded_exit_falls_through() {
        let instrs = [
            Instruction::guarded(Pred(0), false, Op::Exit),
            nop(),
            exit(),
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.num_blocks(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
    }

    #[test]
    fn empty_stream() {
        let cfg = Cfg::build(&[]);
        assert_eq!(cfg.num_blocks(), 0);
        assert_eq!(cfg.reconvergence_pc(0), None);
    }

    #[test]
    fn real_op_blocks() {
        // Make sure non-control instructions don't split blocks.
        let instrs = [
            Instruction::new(Op::IAdd {
                d: Reg(0),
                a: Src::Reg(Reg(0)),
                b: Src::Imm(1),
            }),
            Instruction::new(Op::Bar),
            Instruction::new(Op::IAdd {
                d: Reg(1),
                a: Src::Reg(Reg(1)),
                b: Src::Imm(1),
            }),
            exit(),
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.num_blocks(), 1);
    }
}
