//! The kernel container: an instruction stream plus declared resources.

use crate::encode::{decode_kernel, encode_kernel, DecodeError, EncodeError};
use crate::instr::{Instruction, Op, Reg, Src};
use gpa_hw::KernelResources;
use std::error::Error;
use std::fmt;

/// A compiled kernel: the unit the simulators execute and the model
/// analyzes.
///
/// Branch targets are absolute instruction indices (labels exist only in the
/// textual assembly form, see [`crate::asm`]). `resources` carries the
/// *declared* register/shared-memory/thread footprint used for occupancy —
/// the role NVCC's `-Xptxas -v` output plays in the paper's Figure 1
/// workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (diagnostics and assembly round-trips).
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instruction>,
    /// Declared resource usage (drives the occupancy calculation).
    pub resources: KernelResources,
    /// Size of the parameter block in bytes.
    pub param_bytes: u32,
}

/// Problems detected by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are the instruction index and offending value
pub enum ValidateError {
    /// The kernel has no instructions.
    Empty,
    /// A branch at `at` targets an out-of-range instruction index.
    BranchOutOfRange { at: usize, target: u32 },
    /// The final instruction can fall off the end of the stream.
    FallsOffEnd,
    /// An instruction uses more than one immediate-field operand.
    ImmFieldConflict { at: usize },
    /// A register operand (or multi-register access) exceeds `r127`.
    RegOutOfRange { at: usize, reg: u8 },
    /// A shared-operand or `ld/st.shared` offset lies outside the declared
    /// shared-memory size.
    SMemOutOfDeclared { at: usize, offset: i32 },
    /// A parameter load reads past the declared parameter block.
    ParamOutOfRange { at: usize, offset: u16 },
    /// Double-precision operands must be even-aligned register pairs.
    MisalignedPair { at: usize, reg: u8 },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "kernel has no instructions"),
            ValidateError::BranchOutOfRange { at, target } => {
                write!(
                    f,
                    "instruction {at}: branch target {target} is out of range"
                )
            }
            ValidateError::FallsOffEnd => {
                write!(f, "control can fall off the end of the instruction stream")
            }
            ValidateError::ImmFieldConflict { at } => {
                write!(f, "instruction {at}: more than one immediate-field operand")
            }
            ValidateError::RegOutOfRange { at, reg } => {
                write!(f, "instruction {at}: register r{reg} is out of range")
            }
            ValidateError::SMemOutOfDeclared { at, offset } => {
                write!(
                    f,
                    "instruction {at}: shared-memory offset {offset} exceeds the declared size"
                )
            }
            ValidateError::ParamOutOfRange { at, offset } => {
                write!(
                    f,
                    "instruction {at}: parameter offset {offset} exceeds the param block"
                )
            }
            ValidateError::MisalignedPair { at, reg } => {
                write!(
                    f,
                    "instruction {at}: r{reg} is not an even-aligned register pair"
                )
            }
        }
    }
}

impl Error for ValidateError {}

impl Kernel {
    /// Create a kernel. Most callers should use
    /// [`crate::builder::KernelBuilder`] instead, which resolves labels and
    /// computes resources.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
        resources: KernelResources,
        param_bytes: u32,
    ) -> Kernel {
        Kernel {
            name: name.into(),
            instrs,
            resources,
            param_bytes,
        }
    }

    /// Structural validation: branch targets, operand ranges, resource
    /// consistency. The simulators require a validated kernel.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found, in instruction order.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.instrs.is_empty() {
            return Err(ValidateError::Empty);
        }
        let n = self.instrs.len();
        for (at, ins) in self.instrs.iter().enumerate() {
            // Immediate-field sharing: at most one non-register ALU operand.
            let operands = ins.op.operands();
            if operands
                .iter()
                .filter(|s| !matches!(s, Src::Reg(_)))
                .count()
                > 1
            {
                return Err(ValidateError::ImmFieldConflict { at });
            }
            // Register ranges, including multi-register widths.
            if let Some((d, k)) = ins.op.dst() {
                let last = u32::from(d.0) + u32::from(k) - 1;
                if last >= u32::from(Reg::COUNT) {
                    return Err(ValidateError::RegOutOfRange { at, reg: d.0 });
                }
            }
            for r in ins.op.src_regs() {
                if !r.is_valid() {
                    return Err(ValidateError::RegOutOfRange { at, reg: r.0 });
                }
            }
            // Double-precision pair alignment.
            match ins.op {
                Op::DAdd { d, a, b } | Op::DMul { d, a, b } => {
                    for r in [d, a, b] {
                        if r.0 % 2 != 0 {
                            return Err(ValidateError::MisalignedPair { at, reg: r.0 });
                        }
                    }
                }
                Op::DFma { d, a, b, c } => {
                    for r in [d, a, b, c] {
                        if r.0 % 2 != 0 {
                            return Err(ValidateError::MisalignedPair { at, reg: r.0 });
                        }
                    }
                }
                _ => {}
            }
            // Static shared offsets must fall inside the declared region
            // (dynamic base registers are checked at execution time).
            let smem_limit = self.resources.smem_per_block as i32;
            let static_smem = match ins.op {
                Op::LdShared { addr, width, .. }
                | Op::StShared {
                    addr,
                    src: _,
                    width,
                } if addr.base.is_none() => Some((addr.offset, width.bytes() as i32)),
                _ => ins
                    .op
                    .smem_operand()
                    .filter(|a| a.base.is_none())
                    .map(|a| (a.offset, 4)),
            };
            if let Some((off, len)) = static_smem {
                if off < 0 || off + len > smem_limit {
                    return Err(ValidateError::SMemOutOfDeclared { at, offset: off });
                }
            }
            if let Op::LdParam { offset, .. } = ins.op {
                if u32::from(offset) + 4 > self.param_bytes {
                    return Err(ValidateError::ParamOutOfRange { at, offset });
                }
            }
            // Branch targets.
            if let Op::Bra { target } = ins.op {
                if target as usize >= n {
                    return Err(ValidateError::BranchOutOfRange { at, target });
                }
            }
        }
        // Control must not run off the end: the last instruction must be an
        // exit or an unconditional branch.
        match self.instrs[n - 1] {
            Instruction {
                guard: None,
                op: Op::Exit,
            }
            | Instruction {
                guard: None,
                op: Op::Bra { .. },
            } => Ok(()),
            _ => Err(ValidateError::FallsOffEnd),
        }
    }

    /// Serialize to the binary form ("CUBIN").
    ///
    /// # Errors
    ///
    /// Returns the instruction index and cause for the first instruction
    /// that cannot be encoded.
    pub fn to_binary(&self) -> Result<Vec<u64>, (usize, EncodeError)> {
        encode_kernel(&self.instrs)
    }

    /// Deserialize from the binary form.
    ///
    /// # Errors
    ///
    /// Returns the word index and cause for the first malformed word.
    pub fn from_binary(
        name: impl Into<String>,
        words: &[u64],
        resources: KernelResources,
        param_bytes: u32,
    ) -> Result<Kernel, (usize, DecodeError)> {
        Ok(Kernel {
            name: name.into(),
            instrs: decode_kernel(words)?,
            resources,
            param_bytes,
        })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the kernel has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} ({} instrs, {} regs, {} B smem)",
            self.name,
            self.instrs.len(),
            self.resources.regs_per_thread,
            self.resources.smem_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{MemAddr, Width};

    fn res() -> KernelResources {
        KernelResources::new(8, 1024, 64)
    }

    fn k(instrs: Vec<Instruction>) -> Kernel {
        Kernel::new("t", instrs, res(), 16)
    }

    #[test]
    fn valid_minimal_kernel() {
        let kernel = k(vec![Instruction::new(Op::Exit)]);
        assert!(kernel.validate().is_ok());
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(k(vec![]).validate(), Err(ValidateError::Empty));
    }

    #[test]
    fn fall_off_end_rejected() {
        let kernel = k(vec![Instruction::new(Op::Nop)]);
        assert_eq!(kernel.validate(), Err(ValidateError::FallsOffEnd));
        // A guarded exit can fall through too.
        let kernel = k(vec![Instruction::guarded(
            crate::instr::Pred(0),
            false,
            Op::Exit,
        )]);
        assert_eq!(kernel.validate(), Err(ValidateError::FallsOffEnd));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let kernel = k(vec![
            Instruction::new(Op::Bra { target: 9 }),
            Instruction::new(Op::Exit),
        ]);
        assert_eq!(
            kernel.validate(),
            Err(ValidateError::BranchOutOfRange { at: 0, target: 9 })
        );
    }

    #[test]
    fn smem_static_bounds_checked() {
        let kernel = k(vec![
            Instruction::new(Op::LdShared {
                d: Reg(0),
                addr: MemAddr::new(None, 1022),
                width: Width::B32,
            }),
            Instruction::new(Op::Exit),
        ]);
        assert_eq!(
            kernel.validate(),
            Err(ValidateError::SMemOutOfDeclared {
                at: 0,
                offset: 1022
            })
        );
    }

    #[test]
    fn param_bounds_checked() {
        let kernel = k(vec![
            Instruction::new(Op::LdParam {
                d: Reg(0),
                offset: 14,
            }),
            Instruction::new(Op::Exit),
        ]);
        assert_eq!(
            kernel.validate(),
            Err(ValidateError::ParamOutOfRange { at: 0, offset: 14 })
        );
    }

    #[test]
    fn wide_load_register_range_checked() {
        let kernel = k(vec![
            Instruction::new(Op::LdGlobal {
                d: Reg(126),
                addr: MemAddr::new(None, 0),
                width: Width::B128,
            }),
            Instruction::new(Op::Exit),
        ]);
        assert_eq!(
            kernel.validate(),
            Err(ValidateError::RegOutOfRange { at: 0, reg: 126 })
        );
    }

    #[test]
    fn dfma_alignment_checked() {
        let kernel = k(vec![
            Instruction::new(Op::DFma {
                d: Reg(1),
                a: Reg(2),
                b: Reg(4),
                c: Reg(6),
            }),
            Instruction::new(Op::Exit),
        ]);
        assert_eq!(
            kernel.validate(),
            Err(ValidateError::MisalignedPair { at: 0, reg: 1 })
        );
    }

    #[test]
    fn binary_round_trip() {
        let kernel = k(vec![
            Instruction::new(Op::MovImm { d: Reg(0), imm: 42 }),
            Instruction::new(Op::Exit),
        ]);
        let words = kernel.to_binary().unwrap();
        let back = Kernel::from_binary("t", &words, res(), 16).unwrap();
        assert_eq!(back.instrs, kernel.instrs);
    }

    #[test]
    fn display_mentions_name_and_size() {
        let kernel = k(vec![Instruction::new(Op::Exit)]);
        let s = format!("{kernel}");
        assert!(s.contains('t') && s.contains("1 instrs"));
    }
}
