//! Textual assembler and disassembler (decuda-flavoured syntax).
//!
//! The disassembly of an instruction is its [`fmt::Display`] form, e.g.
//!
//! ```text
//! @!p1 mad.f32 r4, s[r2+0x10], r5, r4
//! ld.global.b128 r8, g[r3+0x40]
//! setp.lt.s32 p0, r0, 512
//! bra 12
//! ```
//!
//! [`kernel_to_asm`] renders a whole [`Kernel`] with resource directives and
//! generated labels; [`parse_kernel`] parses that form back. The pair
//! round-trips: `parse_kernel(kernel_to_asm(k))` reproduces `k`'s
//! instruction stream exactly, for **every** operation the
//! [`crate::builder::KernelBuilder`] can emit (property-tested below).
//!
//! # Grammar (the wire contract)
//!
//! This text form is the portable kernel encoding of the analysis
//! service's wire format (`gpa_service`'s `KernelSpec::Custom` carries it
//! verbatim), so the grammar below is a compatibility contract, not an
//! implementation detail.
//!
//! A kernel is a sequence of lines; `//` starts a comment and blank lines
//! are ignored. Three line forms exist:
//!
//! * **Directives** — `.kernel NAME`, `.reg N`, `.smem BYTES`,
//!   `.threads N`, `.param BYTES`. They may appear anywhere and declare
//!   the kernel name and its [`KernelResources`] /
//!   parameter-block size (the role of NVCC's `-Xptxas -v` output in the
//!   paper's workflow). Unspecified directives default to
//!   `.reg 0 .smem 0 .threads 32 .param 0`.
//! * **Labels** — `NAME:` on its own line names the next instruction.
//! * **Instructions** — an optional guard `@pN` / `@!pN`, a mnemonic, and
//!   comma-separated operands.
//!
//! Operands: registers `r0`–`r127`, predicates `p0`–`p3`, signed decimal
//!   or `0x` hex immediates, shared-memory operands `s[rB+0xOFF]`
//!   (base and/or offset, offset may be negative), global addresses
//!   `g[...]` of the same shape, parameter slots `c[0xOFF]`, and special
//!   registers `%tid.x %tid.y %ctaid.x %ctaid.y %ntid.x %ntid.y
//!   %nctaid.x %nctaid.y`. Branch targets are labels or absolute
//!   instruction indices.
//!
//! Mnemonics are exactly the [`fmt::Display`] forms of [`Op`]: `mul.f32
//! add.f32 mad.f32 add.s32 sub.s32 mul.s32 mad.s32 min.s32 max.s32
//! shl.b32 shr.b32 and.b32 or.b32 xor.b32 mov.b32 mov32 s2r
//! setp.<cmp>.<s32|f32> sel.b32 i2f f2i rcp.f32 rsq.f32 sin.f32 cos.f32
//! lg2.f32 ex2.f32 add.f64 mul.f64 fma.f64 ld.shared.<w> st.shared.<w>
//! ld.global.<w> st.global.<w> ld.param.b32 atom.shared.add.b32
//! atom.shared.cas.b32 bar.sync bra exit nop`, with `<cmp>` one of
//! `eq ne lt le gt ge` and `<w>` one of `b32 b64 b128`.
//!
//! The shared-memory atomics take a destination register (receiving the
//! old value), an `s[...]` address, and one (`add`) or two (`cas`:
//! compare then swap source) register operands:
//!
//! ```text
//! atom.shared.add.b32 r2, s[r1+0x40], r3   // r2 = old; [addr] += r3
//! atom.shared.cas.b32 r2, s[r1], r4, r5    // r2 = old; if old == r4 { [addr] = r5 }
//! ```
//!
//! Every malformed input is a clean [`AsmError`] naming the offending
//! 1-based line — out-of-range numbers included (no value is silently
//! truncated), so a hostile payload can never smuggle a wrapped register
//! count or branch target past the parser.

use crate::instr::{
    CmpOp, Instruction, MemAddr, NumTy, Op, Pred, PredGuard, Reg, SpecialReg, Src, Width,
};
use crate::kernel::Kernel;
use gpa_hw::KernelResources;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write_op(f, &self.op)
    }
}

fn write_op(f: &mut fmt::Formatter<'_>, op: &Op) -> fmt::Result {
    match *op {
        Op::FMul { d, a, b } => write!(f, "mul.f32 {d}, {a}, {b}"),
        Op::FAdd { d, a, b } => write!(f, "add.f32 {d}, {a}, {b}"),
        Op::FMad { d, a, b, c } => write!(f, "mad.f32 {d}, {a}, {b}, {c}"),
        Op::IAdd { d, a, b } => write!(f, "add.s32 {d}, {a}, {b}"),
        Op::ISub { d, a, b } => write!(f, "sub.s32 {d}, {a}, {b}"),
        Op::IMul { d, a, b } => write!(f, "mul.s32 {d}, {a}, {b}"),
        Op::IMad { d, a, b, c } => write!(f, "mad.s32 {d}, {a}, {b}, {c}"),
        Op::IMin { d, a, b } => write!(f, "min.s32 {d}, {a}, {b}"),
        Op::IMax { d, a, b } => write!(f, "max.s32 {d}, {a}, {b}"),
        Op::Shl { d, a, b } => write!(f, "shl.b32 {d}, {a}, {b}"),
        Op::Shr { d, a, b } => write!(f, "shr.b32 {d}, {a}, {b}"),
        Op::And { d, a, b } => write!(f, "and.b32 {d}, {a}, {b}"),
        Op::Or { d, a, b } => write!(f, "or.b32 {d}, {a}, {b}"),
        Op::Xor { d, a, b } => write!(f, "xor.b32 {d}, {a}, {b}"),
        Op::Mov { d, a } => write!(f, "mov.b32 {d}, {a}"),
        Op::MovImm { d, imm } => write!(f, "mov32 {d}, {imm:#010x}"),
        Op::S2R { d, sr } => write!(f, "s2r {d}, {sr}"),
        Op::SetP { p, cmp, ty, a, b } => {
            write!(f, "setp.{}.{} {p}, {a}, {b}", cmp.mnemonic(), ty.mnemonic())
        }
        Op::Sel { d, p, a, b } => write!(f, "sel.b32 {d}, {p}, {a}, {b}"),
        Op::I2F { d, a } => write!(f, "i2f {d}, {a}"),
        Op::F2I { d, a } => write!(f, "f2i {d}, {a}"),
        Op::Rcp { d, a } => write!(f, "rcp.f32 {d}, {a}"),
        Op::Rsq { d, a } => write!(f, "rsq.f32 {d}, {a}"),
        Op::Sin { d, a } => write!(f, "sin.f32 {d}, {a}"),
        Op::Cos { d, a } => write!(f, "cos.f32 {d}, {a}"),
        Op::Lg2 { d, a } => write!(f, "lg2.f32 {d}, {a}"),
        Op::Ex2 { d, a } => write!(f, "ex2.f32 {d}, {a}"),
        Op::DAdd { d, a, b } => write!(f, "add.f64 {d}, {a}, {b}"),
        Op::DMul { d, a, b } => write!(f, "mul.f64 {d}, {a}, {b}"),
        Op::DFma { d, a, b, c } => write!(f, "fma.f64 {d}, {a}, {b}, {c}"),
        Op::LdShared { d, addr, width } => {
            write!(f, "ld.shared.{} {d}, s[{addr}]", width.mnemonic())
        }
        Op::StShared { addr, src, width } => {
            write!(f, "st.shared.{} s[{addr}], {src}", width.mnemonic())
        }
        Op::LdGlobal { d, addr, width } => {
            write!(f, "ld.global.{} {d}, g[{addr}]", width.mnemonic())
        }
        Op::StGlobal { addr, src, width } => {
            write!(f, "st.global.{} g[{addr}], {src}", width.mnemonic())
        }
        Op::LdParam { d, offset } => write!(f, "ld.param.b32 {d}, c[{offset:#x}]"),
        Op::AtomSharedAdd { d, addr, src } => {
            write!(f, "atom.shared.add.b32 {d}, s[{addr}], {src}")
        }
        Op::AtomSharedCas { d, addr, cmp, src } => {
            write!(f, "atom.shared.cas.b32 {d}, s[{addr}], {cmp}, {src}")
        }
        Op::Bar => write!(f, "bar.sync"),
        Op::Bra { target } => write!(f, "bra {target}"),
        Op::Exit => write!(f, "exit"),
        Op::Nop => write!(f, "nop"),
    }
}

/// An assembly parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Render a kernel as assembly text with resource directives and labels at
/// branch targets.
pub fn kernel_to_asm(kernel: &Kernel) -> String {
    use fmt::Write as _;
    let mut targets: Vec<u32> = kernel
        .instrs
        .iter()
        .filter_map(|i| match i.op {
            Op::Bra { target } => Some(target),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of: HashMap<u32, String> = targets.iter().map(|t| (*t, format!("L{t}"))).collect();

    let mut out = String::new();
    let _ = writeln!(out, ".kernel {}", kernel.name);
    let _ = writeln!(out, ".reg {}", kernel.resources.regs_per_thread);
    let _ = writeln!(out, ".smem {}", kernel.resources.smem_per_block);
    let _ = writeln!(out, ".threads {}", kernel.resources.threads_per_block);
    let _ = writeln!(out, ".param {}", kernel.param_bytes);
    for (idx, ins) in kernel.instrs.iter().enumerate() {
        if let Some(lbl) = label_of.get(&(idx as u32)) {
            let _ = writeln!(out, "{lbl}:");
        }
        if let Op::Bra { target } = ins.op {
            let mut line = String::new();
            if let Some(g) = ins.guard {
                let _ = write!(line, "{g} ");
            }
            let _ = write!(line, "bra {}", label_of[&target]);
            let _ = writeln!(out, "    {line}");
        } else {
            let _ = writeln!(out, "    {ins}");
        }
    }
    out
}

/// Parse a full kernel in the [`kernel_to_asm`] format.
///
/// Branch targets may be labels or absolute instruction indices.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending source line.
pub fn parse_kernel(text: &str) -> Result<Kernel, AsmError> {
    let mut name = String::from("kernel");
    let mut regs = 0u32;
    let mut smem = 0u32;
    let mut threads = 32u32;
    let mut params = 0u32;
    let mut labels: HashMap<String, u32> = HashMap::new();

    // Pass 1: directives and label addresses.
    let mut instr_idx = 0u32;
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let dir = it.next().unwrap_or("");
            let arg = it.next().unwrap_or("");
            match dir {
                "kernel" => name = arg.to_owned(),
                "reg" => regs = parse_u32(arg, ln + 1, ".reg count")?,
                "smem" => smem = parse_u32(arg, ln + 1, ".smem bytes")?,
                "threads" => threads = parse_u32(arg, ln + 1, ".threads count")?,
                "param" => params = parse_u32(arg, ln + 1, ".param bytes")?,
                other => return Err(AsmError::new(ln + 1, format!("unknown directive .{other}"))),
            }
        } else if let Some(lbl) = line.strip_suffix(':') {
            if labels.insert(lbl.trim().to_owned(), instr_idx).is_some() {
                return Err(AsmError::new(ln + 1, format!("duplicate label {lbl}")));
            }
        } else {
            instr_idx += 1;
        }
    }

    // Pass 2: instructions.
    let mut instrs = Vec::with_capacity(instr_idx as usize);
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with('.') || line.ends_with(':') {
            continue;
        }
        instrs.push(parse_instruction_with(line, ln + 1, &labels)?);
    }

    Ok(Kernel::new(
        name,
        instrs,
        KernelResources::new(regs, smem, threads),
        params,
    ))
}

/// Parse a single instruction (no labels available; branch targets must be
/// absolute indices).
///
/// # Errors
///
/// Returns an [`AsmError`] with line number 1.
pub fn parse_instruction(line: &str) -> Result<Instruction, AsmError> {
    parse_instruction_with(line, 1, &HashMap::new())
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_num(s: &str, line: usize) -> Result<i64, AsmError> {
    let (body, neg) = match s.strip_prefix('-') {
        Some(b) => (b, true),
        None => (s, false),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError::new(line, format!("bad number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

/// [`parse_num`] with an inclusive range check: wire input must never be
/// silently truncated into a smaller integer type.
fn parse_ranged(s: &str, line: usize, what: &str, min: i64, max: i64) -> Result<i64, AsmError> {
    let v = parse_num(s, line)?;
    if !(min..=max).contains(&v) {
        return Err(AsmError::new(
            line,
            format!("{what} {v} is out of range {min}..={max}"),
        ));
    }
    Ok(v)
}

fn parse_u32(s: &str, line: usize, what: &str) -> Result<u32, AsmError> {
    Ok(parse_ranged(s, line, what, 0, i64::from(u32::MAX))? as u32)
}

fn parse_i32(s: &str, line: usize, what: &str) -> Result<i32, AsmError> {
    Ok(parse_ranged(s, line, what, i64::from(i32::MIN), i64::from(i32::MAX))? as i32)
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let n = tok
        .strip_prefix('r')
        .and_then(|s| s.parse::<u8>().ok())
        .ok_or_else(|| AsmError::new(line, format!("expected register, got `{tok}`")))?;
    Ok(Reg(n))
}

fn parse_pred(tok: &str, line: usize) -> Result<Pred, AsmError> {
    let n = tok
        .strip_prefix('p')
        .and_then(|s| s.parse::<u8>().ok())
        .ok_or_else(|| AsmError::new(line, format!("expected predicate, got `{tok}`")))?;
    Ok(Pred(n))
}

fn parse_addr(inner: &str, line: usize) -> Result<MemAddr, AsmError> {
    // Forms: `r3`, `r3+0x10`, `r3-0x10`, `0x10`, `-0x10`, decimal offsets.
    let inner = inner.trim();
    if let Some(rest) = inner.strip_prefix('r') {
        if let Some(pos) = rest.find(['+', '-']).map(|p| p + 1) {
            let base = parse_reg(&inner[..pos], line)?;
            // The sign between base and offset is part of the address
            // syntax; the magnitude after it must be unsigned (a second
            // sign like `r1--4` is a typo, not a double negation) and may
            // alone reach |i32::MIN|.
            let mag_tok = &inner[pos + 1..];
            if mag_tok.starts_with(['+', '-']) {
                return Err(AsmError::new(
                    line,
                    format!("doubly-signed address offset `{inner}`"),
                ));
            }
            let mag = parse_ranged(mag_tok, line, "address offset", 0, -i64::from(i32::MIN))?;
            let off = if inner.as_bytes()[pos] == b'-' {
                -mag
            } else {
                mag
            };
            let off = i32::try_from(off).map_err(|_| {
                AsmError::new(line, format!("address offset {off} is out of range"))
            })?;
            Ok(MemAddr::new(Some(base), off))
        } else {
            Ok(MemAddr::new(Some(parse_reg(inner, line)?), 0))
        }
    } else {
        Ok(MemAddr::new(
            None,
            parse_i32(inner, line, "address offset")?,
        ))
    }
}

fn parse_src(tok: &str, line: usize) -> Result<Src, AsmError> {
    let tok = tok.trim();
    if let Some(inner) = tok.strip_prefix("s[").and_then(|s| s.strip_suffix(']')) {
        Ok(Src::SMem(parse_addr(inner, line)?))
    } else if tok.starts_with('r') {
        Ok(Src::Reg(parse_reg(tok, line)?))
    } else {
        Ok(Src::Imm(parse_i32(tok, line, "immediate")?))
    }
}

fn split_operands(s: &str) -> Vec<String> {
    // Split on commas that are not inside brackets.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_owned());
                cur = String::new();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn parse_instruction_with(
    line: &str,
    ln: usize,
    labels: &HashMap<String, u32>,
) -> Result<Instruction, AsmError> {
    let mut rest = line.trim();
    let mut guard = None;
    if rest.starts_with('@') {
        let (gtok, r) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| AsmError::new(ln, "guard without instruction"))?;
        let negate = gtok.starts_with("@!");
        let ptok = gtok.trim_start_matches("@!").trim_start_matches('@');
        guard = Some(PredGuard {
            pred: parse_pred(ptok, ln)?,
            negate,
        });
        rest = r.trim();
    }

    let (mnemonic, operand_str) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let ops = split_operands(operand_str);
    let need = |k: usize| -> Result<(), AsmError> {
        if ops.len() == k {
            Ok(())
        } else {
            Err(AsmError::new(
                ln,
                format!("`{mnemonic}` expects {k} operands, got {}", ops.len()),
            ))
        }
    };

    let alu2 = |f: fn(Reg, Src, Src) -> Op| -> Result<Op, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], ln)?,
            parse_src(&ops[1], ln)?,
            parse_src(&ops[2], ln)?,
        ))
    };
    let alu3 = |f: fn(Reg, Src, Src, Src) -> Op| -> Result<Op, AsmError> {
        need(4)?;
        Ok(f(
            parse_reg(&ops[0], ln)?,
            parse_src(&ops[1], ln)?,
            parse_src(&ops[2], ln)?,
            parse_src(&ops[3], ln)?,
        ))
    };
    let alu1 = |f: fn(Reg, Src) -> Op| -> Result<Op, AsmError> {
        need(2)?;
        Ok(f(parse_reg(&ops[0], ln)?, parse_src(&ops[1], ln)?))
    };
    let dreg3 = |f: fn(Reg, Reg, Reg) -> Op| -> Result<Op, AsmError> {
        need(3)?;
        Ok(f(
            parse_reg(&ops[0], ln)?,
            parse_reg(&ops[1], ln)?,
            parse_reg(&ops[2], ln)?,
        ))
    };

    let mem_width = |suffix: &str| -> Result<Width, AsmError> {
        match suffix {
            "b32" => Ok(Width::B32),
            "b64" => Ok(Width::B64),
            "b128" => Ok(Width::B128),
            other => Err(AsmError::new(ln, format!("bad width `{other}`"))),
        }
    };

    let op = match mnemonic {
        "mul.f32" => alu2(|d, a, b| Op::FMul { d, a, b })?,
        "add.f32" => alu2(|d, a, b| Op::FAdd { d, a, b })?,
        "mad.f32" => alu3(|d, a, b, c| Op::FMad { d, a, b, c })?,
        "add.s32" => alu2(|d, a, b| Op::IAdd { d, a, b })?,
        "sub.s32" => alu2(|d, a, b| Op::ISub { d, a, b })?,
        "mul.s32" => alu2(|d, a, b| Op::IMul { d, a, b })?,
        "mad.s32" => alu3(|d, a, b, c| Op::IMad { d, a, b, c })?,
        "min.s32" => alu2(|d, a, b| Op::IMin { d, a, b })?,
        "max.s32" => alu2(|d, a, b| Op::IMax { d, a, b })?,
        "shl.b32" => alu2(|d, a, b| Op::Shl { d, a, b })?,
        "shr.b32" => alu2(|d, a, b| Op::Shr { d, a, b })?,
        "and.b32" => alu2(|d, a, b| Op::And { d, a, b })?,
        "or.b32" => alu2(|d, a, b| Op::Or { d, a, b })?,
        "xor.b32" => alu2(|d, a, b| Op::Xor { d, a, b })?,
        "mov.b32" => alu1(|d, a| Op::Mov { d, a })?,
        "mov32" => {
            need(2)?;
            // Negative literals are accepted as a hand-writing convenience
            // and wrap to their 32-bit two's-complement pattern.
            let imm = parse_ranged(
                &ops[1],
                ln,
                "mov32 immediate",
                i64::from(i32::MIN),
                i64::from(u32::MAX),
            )? as u32;
            Op::MovImm {
                d: parse_reg(&ops[0], ln)?,
                imm,
            }
        }
        "s2r" => {
            need(2)?;
            let sr = SpecialReg::ALL
                .iter()
                .find(|s| s.mnemonic() == ops[1])
                .copied()
                .ok_or_else(|| AsmError::new(ln, format!("bad special register `{}`", ops[1])))?;
            Op::S2R {
                d: parse_reg(&ops[0], ln)?,
                sr,
            }
        }
        "sel.b32" => {
            need(4)?;
            Op::Sel {
                d: parse_reg(&ops[0], ln)?,
                p: parse_pred(&ops[1], ln)?,
                a: parse_src(&ops[2], ln)?,
                b: parse_src(&ops[3], ln)?,
            }
        }
        "i2f" => alu1(|d, a| Op::I2F { d, a })?,
        "f2i" => alu1(|d, a| Op::F2I { d, a })?,
        "rcp.f32" => alu1(|d, a| Op::Rcp { d, a })?,
        "rsq.f32" => alu1(|d, a| Op::Rsq { d, a })?,
        "sin.f32" => alu1(|d, a| Op::Sin { d, a })?,
        "cos.f32" => alu1(|d, a| Op::Cos { d, a })?,
        "lg2.f32" => alu1(|d, a| Op::Lg2 { d, a })?,
        "ex2.f32" => alu1(|d, a| Op::Ex2 { d, a })?,
        "add.f64" => dreg3(|d, a, b| Op::DAdd { d, a, b })?,
        "mul.f64" => dreg3(|d, a, b| Op::DMul { d, a, b })?,
        "fma.f64" => {
            need(4)?;
            Op::DFma {
                d: parse_reg(&ops[0], ln)?,
                a: parse_reg(&ops[1], ln)?,
                b: parse_reg(&ops[2], ln)?,
                c: parse_reg(&ops[3], ln)?,
            }
        }
        "bar.sync" => {
            need(0)?;
            Op::Bar
        }
        "exit" => {
            need(0)?;
            Op::Exit
        }
        "nop" => {
            need(0)?;
            Op::Nop
        }
        "bra" => {
            need(1)?;
            let target = if let Some(t) = labels.get(ops[0].as_str()) {
                *t
            } else {
                parse_u32(&ops[0], ln, "branch target")?
            };
            Op::Bra { target }
        }
        m if m.starts_with("setp.") => {
            need(3)?;
            let mut parts = m.splitn(3, '.');
            let _ = parts.next();
            let cmp_s = parts.next().unwrap_or("");
            let ty_s = parts.next().unwrap_or("");
            let cmp = CmpOp::ALL
                .iter()
                .find(|c| c.mnemonic() == cmp_s)
                .copied()
                .ok_or_else(|| AsmError::new(ln, format!("bad comparison `{cmp_s}`")))?;
            let ty = match ty_s {
                "s32" => NumTy::S32,
                "f32" => NumTy::F32,
                other => return Err(AsmError::new(ln, format!("bad setp type `{other}`"))),
            };
            Op::SetP {
                p: parse_pred(&ops[0], ln)?,
                cmp,
                ty,
                a: parse_src(&ops[1], ln)?,
                b: parse_src(&ops[2], ln)?,
            }
        }
        m if m.starts_with("ld.shared.")
            || m.starts_with("st.shared.")
            || m.starts_with("ld.global.")
            || m.starts_with("st.global.") =>
        {
            need(2)?;
            let width = mem_width(m.rsplit('.').next().unwrap())?;
            let is_load = m.starts_with("ld.");
            let is_shared = m.contains(".shared.");
            let bracket = if is_shared { "s[" } else { "g[" };
            let (reg_tok, addr_tok) = if is_load {
                (&ops[0], &ops[1])
            } else {
                (&ops[1], &ops[0])
            };
            let inner = addr_tok
                .strip_prefix(bracket)
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| {
                    AsmError::new(ln, format!("expected `{bracket}...]`, got `{addr_tok}`"))
                })?;
            let addr = parse_addr(inner, ln)?;
            let reg = parse_reg(reg_tok, ln)?;
            match (is_load, is_shared) {
                (true, true) => Op::LdShared {
                    d: reg,
                    addr,
                    width,
                },
                (false, true) => Op::StShared {
                    addr,
                    src: reg,
                    width,
                },
                (true, false) => Op::LdGlobal {
                    d: reg,
                    addr,
                    width,
                },
                (false, false) => Op::StGlobal {
                    addr,
                    src: reg,
                    width,
                },
            }
        }
        "atom.shared.add.b32" | "atom.shared.cas.b32" => {
            let is_cas = mnemonic.contains(".cas.");
            need(if is_cas { 4 } else { 3 })?;
            let inner = ops[1]
                .strip_prefix("s[")
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| AsmError::new(ln, format!("expected `s[...]`, got `{}`", ops[1])))?;
            let d = parse_reg(&ops[0], ln)?;
            let addr = parse_addr(inner, ln)?;
            if is_cas {
                Op::AtomSharedCas {
                    d,
                    addr,
                    cmp: parse_reg(&ops[2], ln)?,
                    src: parse_reg(&ops[3], ln)?,
                }
            } else {
                Op::AtomSharedAdd {
                    d,
                    addr,
                    src: parse_reg(&ops[2], ln)?,
                }
            }
        }
        "ld.param.b32" => {
            need(2)?;
            let inner = ops[1]
                .strip_prefix("c[")
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| AsmError::new(ln, format!("expected `c[...]`, got `{}`", ops[1])))?;
            Op::LdParam {
                d: parse_reg(&ops[0], ln)?,
                offset: parse_ranged(inner, ln, "parameter offset", 0, i64::from(u16::MAX))? as u16,
            }
        }
        other => return Err(AsmError::new(ln, format!("unknown mnemonic `{other}`"))),
    };

    Ok(Instruction { guard, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_hw::KernelResources;
    use proptest::prelude::*;

    fn rt_line(i: Instruction) {
        let text = format!("{i}");
        let back = parse_instruction(&text).unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        assert_eq!(back, i, "text was `{text}`");
    }

    #[test]
    fn instruction_text_round_trips() {
        rt_line(Instruction::new(Op::FMad {
            d: Reg(4),
            a: Src::smem(Some(Reg(2)), 16),
            b: Src::Reg(Reg(5)),
            c: Src::Reg(Reg(4)),
        }));
        rt_line(Instruction::guarded(
            Pred(1),
            true,
            Op::StGlobal {
                addr: MemAddr::new(Some(Reg(3)), -64),
                src: Reg(8),
                width: Width::B128,
            },
        ));
        rt_line(Instruction::new(Op::MovImm {
            d: Reg(1),
            imm: 0x3f80_0000,
        }));
        rt_line(Instruction::new(Op::SetP {
            p: Pred(0),
            cmp: CmpOp::Lt,
            ty: NumTy::S32,
            a: Src::Reg(Reg(0)),
            b: Src::Imm(512),
        }));
        rt_line(Instruction::new(Op::Sel {
            d: Reg(0),
            p: Pred(2),
            a: Src::Reg(Reg(1)),
            b: Src::Imm(-1),
        }));
        rt_line(Instruction::new(Op::S2R {
            d: Reg(0),
            sr: SpecialReg::NCtaIdX,
        }));
        rt_line(Instruction::new(Op::DFma {
            d: Reg(0),
            a: Reg(2),
            b: Reg(4),
            c: Reg(6),
        }));
        rt_line(Instruction::new(Op::LdParam {
            d: Reg(9),
            offset: 8,
        }));
        rt_line(Instruction::new(Op::Bar));
        rt_line(Instruction::new(Op::Bra { target: 42 }));
        rt_line(Instruction::new(Op::Exit));
        rt_line(Instruction::new(Op::Nop));
    }

    #[test]
    fn kernel_round_trips_with_labels() {
        let k = Kernel::new(
            "loopy",
            vec![
                Instruction::new(Op::MovImm { d: Reg(0), imm: 0 }),
                Instruction::new(Op::IAdd {
                    d: Reg(0),
                    a: Src::Reg(Reg(0)),
                    b: Src::Imm(1),
                }),
                Instruction::new(Op::SetP {
                    p: Pred(0),
                    cmp: CmpOp::Lt,
                    ty: NumTy::S32,
                    a: Src::Reg(Reg(0)),
                    b: Src::Imm(10),
                }),
                Instruction::guarded(Pred(0), false, Op::Bra { target: 1 }),
                Instruction::new(Op::Exit),
            ],
            KernelResources::new(4, 0, 32),
            0,
        );
        let text = kernel_to_asm(&k);
        assert!(text.contains("L1:"), "disassembly:\n{text}");
        let back = parse_kernel(&text).unwrap();
        assert_eq!(back.instrs, k.instrs);
        assert_eq!(back.name, "loopy");
        assert_eq!(back.resources, k.resources);
        assert_eq!(back.param_bytes, k.param_bytes);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n.kernel c\n.reg 2\n.smem 0\n.threads 32\n.param 0\n\n// header\n    nop // trailing\n    exit\n";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.instrs.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".kernel x\n    frobnicate r0\n";
        let err = parse_kernel(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let text = "a:\n    nop\na:\n    exit\n";
        let err = parse_kernel(text).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn operand_count_checked() {
        let err = parse_instruction("add.s32 r0, r1").unwrap_err();
        assert!(err.message.contains("expects 3 operands"));
    }

    #[test]
    fn negative_smem_offset_round_trips() {
        rt_line(Instruction::new(Op::LdShared {
            d: Reg(1),
            addr: MemAddr::new(Some(Reg(2)), -8),
            width: Width::B32,
        }));
    }

    // Property: every encodable instruction's text form parses back to itself.
    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..128).prop_map(Reg)
    }

    fn arb_src() -> impl Strategy<Value = Src> {
        prop_oneof![
            arb_reg().prop_map(Src::Reg),
            (Src::MIN_IMM..=Src::MAX_IMM).prop_map(Src::Imm),
            (proptest::option::of(arb_reg()), 0i32..16384).prop_map(|(b, o)| Src::smem(b, o)),
        ]
    }

    proptest! {
        #[test]
        fn alu_text_round_trips(d in arb_reg(), a in arb_src(), b in arb_src(), c in arb_src()) {
            for op in [
                Op::FMul { d, a, b },
                Op::FMad { d, a, b, c },
                Op::IAdd { d, a, b },
                Op::Shl { d, a, b },
                Op::Mov { d, a },
            ] {
                rt_line(Instruction::new(op));
            }
        }

        #[test]
        fn mem_text_round_trips(r in arb_reg(), base in proptest::option::of(arb_reg()),
                                off in -1000i32..100000) {
            let addr = MemAddr::new(base, off);
            for op in [
                Op::LdGlobal { d: r, addr, width: Width::B32 },
                Op::StShared { addr, src: r, width: Width::B64 },
            ] {
                rt_line(Instruction::new(op));
            }
        }
    }

    /// One instance of every [`Op`] variant, parameterized so a property
    /// test can sweep operand values. Adding an `Op` without extending
    /// this list fails the exhaustiveness check in
    /// `every_op_round_trips`.
    fn all_ops(d: Reg, a: Src, b: Src, c: Src, addr: MemAddr, imm: u32) -> Vec<Op> {
        let e = Reg(d.0 & 0x7e); // even-aligned pair for f64 ops
        vec![
            Op::FMul { d, a, b },
            Op::FAdd { d, a, b },
            Op::FMad { d, a, b, c },
            Op::IAdd { d, a, b },
            Op::ISub { d, a, b },
            Op::IMul { d, a, b },
            Op::IMad { d, a, b, c },
            Op::IMin { d, a, b },
            Op::IMax { d, a, b },
            Op::Shl { d, a, b },
            Op::Shr { d, a, b },
            Op::And { d, a, b },
            Op::Or { d, a, b },
            Op::Xor { d, a, b },
            Op::Mov { d, a },
            Op::MovImm { d, imm },
            Op::S2R {
                d,
                sr: SpecialReg::ALL[(imm as usize) % SpecialReg::ALL.len()],
            },
            Op::SetP {
                p: Pred((imm % 4) as u8),
                cmp: CmpOp::ALL[(imm as usize) % CmpOp::ALL.len()],
                ty: if imm.is_multiple_of(2) {
                    NumTy::S32
                } else {
                    NumTy::F32
                },
                a,
                b,
            },
            Op::Sel {
                d,
                p: Pred((imm % 4) as u8),
                a,
                b,
            },
            Op::I2F { d, a },
            Op::F2I { d, a },
            Op::Rcp { d, a },
            Op::Rsq { d, a },
            Op::Sin { d, a },
            Op::Cos { d, a },
            Op::Lg2 { d, a },
            Op::Ex2 { d, a },
            Op::DAdd { d: e, a: e, b: e },
            Op::DMul { d: e, a: e, b: e },
            Op::DFma {
                d: e,
                a: e,
                b: e,
                c: e,
            },
            Op::LdShared {
                d,
                addr,
                width: Width::B32,
            },
            Op::StShared {
                addr,
                src: d,
                width: Width::B64,
            },
            Op::LdGlobal {
                d,
                addr,
                width: Width::B128,
            },
            Op::StGlobal {
                addr,
                src: d,
                width: Width::B32,
            },
            Op::LdParam {
                d,
                offset: (imm % 0x10000) as u16,
            },
            Op::AtomSharedAdd { d, addr, src: d },
            Op::AtomSharedCas {
                d,
                addr,
                cmp: d,
                src: d,
            },
            Op::Bar,
            Op::Bra { target: imm },
            Op::Exit,
            Op::Nop,
        ]
    }

    /// Exhaustiveness guard: `all_ops` must cover every variant. The
    /// discriminant comparison makes a forgotten variant a compile-free
    /// test failure rather than silent coverage loss.
    #[test]
    fn all_ops_covers_every_variant() {
        let ops = all_ops(
            Reg(1),
            Src::Reg(Reg(2)),
            Src::Imm(3),
            Src::smem(Some(Reg(4)), 8),
            MemAddr::new(Some(Reg(5)), 16),
            7,
        );
        let mut seen: Vec<std::mem::Discriminant<Op>> =
            ops.iter().map(std::mem::discriminant).collect();
        seen.sort_by_key(|d| format!("{d:?}"));
        seen.dedup();
        assert_eq!(
            seen.len(),
            41,
            "all_ops lists {} distinct Op variants; update it (and this count) \
             when the ISA grows",
            seen.len()
        );
    }

    proptest! {
        // The wire-contract property: every Op the builder can emit, with
        // and without a guard, survives Display → parse bit-exactly.
        #[test]
        fn every_op_round_trips(
            d in arb_reg(),
            a in arb_src(),
            b in arb_src(),
            c in arb_src(),
            base in proptest::option::of(arb_reg()),
            off in any::<i32>(),
            imm in any::<u32>(),
            guard in proptest::option::of((0u8..4, any::<bool>())),
        ) {
            let addr = MemAddr::new(base, off);
            for op in all_ops(d, a, b, c, addr, imm) {
                let ins = match guard {
                    // `exit`/`bra` keep their own guard semantics; a guard is
                    // legal on every op in the text form.
                    Some((p, neg)) => Instruction::guarded(Pred(p), neg, op),
                    None => Instruction::new(op),
                };
                rt_line(ins);
            }
        }
    }

    #[test]
    fn out_of_range_numbers_error_instead_of_truncating() {
        // Every one of these used to wrap silently through an `as` cast.
        for (line, want) in [
            (".reg 4294967296\n    exit\n", ".reg count"),
            (".threads 68719476736\n    exit\n", ".threads count"),
            ("    bra 4294967296\n", "branch target"),
            ("    bra -1\n", "branch target"),
            ("    ld.param.b32 r0, c[0x10000]\n", "parameter offset"),
            ("    add.s32 r0, r1, 2147483648\n", "immediate"),
            ("    mov32 r0, 4294967296\n", "mov32 immediate"),
            (
                "    ld.global.b32 r0, g[r1+0x100000000]\n",
                "address offset",
            ),
        ] {
            let err = parse_kernel(line).unwrap_err();
            assert!(
                err.message.contains(want) && err.message.contains("out of range"),
                "`{line}` → `{err}` (expected `{want}` out-of-range error)"
            );
        }
        // The extreme in-range values still parse.
        assert!(parse_instruction("mov32 r0, -2147483648").is_ok());
        assert!(parse_instruction("mov32 r0, 4294967295").is_ok());
        assert!(parse_instruction("ld.global.b32 r0, g[r1-0x80000000]").is_ok());
    }

    #[test]
    fn doubly_signed_address_offsets_are_typos_not_negation() {
        // `g[r1--4]` (meant `g[r1-4]`) must not parse as +4.
        for line in [
            "ld.global.b32 r0, g[r1--4]",
            "ld.global.b32 r0, g[r1+-4]",
            "ld.shared.b32 r0, s[r1-+4]",
        ] {
            let err = parse_instruction(line).unwrap_err();
            assert!(err.message.contains("doubly-signed"), "`{line}` → `{err}`");
        }
    }
}
