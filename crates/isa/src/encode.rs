//! Fixed 64-bit binary encoding of the instruction set.
//!
//! This is the workspace's "CUBIN generator" substitute: the paper builds
//! microbenchmarks by assembling *binary* native instructions and embedding
//! them into executables, bypassing the compiler entirely. [`encode`] and
//! [`decode`] round-trip every valid [`Instruction`] through a `u64` word;
//! [`encode_kernel`]/[`decode_kernel`] handle whole instruction streams.
//!
//! # Word layout
//!
//! ```text
//!  63......56 55 54 53.52 51...44 43...36 35...28 27...20 19.18 17.16 15.14 13........0
//!  opcode     PE PN pred  D       A       B       C       kA    kB    kC    imm14
//! ```
//!
//! * `PE`/`PN`/`pred`: predicate enable, negate, register.
//! * `D`: destination register (or store source, or packed `setp` fields).
//! * `A`/`B`/`C`: source fields; `kA`..`kC` give each operand's kind
//!   (0 = register, 1 = immediate, 2 = shared-memory).
//! * `imm14`: shared immediate field — a signed 14-bit inline immediate or
//!   an unsigned 14-bit shared-operand byte offset. At most one operand may
//!   use it.
//!
//! Special layouts: `mov32`/`bra` carry a full 32-bit payload in bits 31..0;
//! memory instructions use an 18-bit signed offset in bits 17..0 with the
//! access width in bits 19..18.

use crate::instr::{
    CmpOp, Instruction, MemAddr, NumTy, Op, Pred, PredGuard, Reg, SpecialReg, Src, Width,
};
use std::error::Error;
use std::fmt;

/// Errors produced when an instruction cannot be represented in the binary
/// format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An inline immediate does not fit the signed 14-bit field.
    ImmOutOfRange(i32),
    /// More than one operand needs the shared immediate field.
    ImmFieldConflict,
    /// A shared-operand byte offset is outside `0..16384`.
    SMemOffsetOutOfRange(i32),
    /// A load/store byte offset does not fit the signed 18-bit field.
    MemOffsetOutOfRange(i32),
    /// A parameter offset does not fit the 14-bit field.
    ParamOffsetOutOfRange(u16),
    /// A register index is out of range.
    BadReg(u8),
    /// A predicate index is out of range.
    BadPred(u8),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange(v) => {
                write!(f, "immediate {v} does not fit the signed 14-bit field")
            }
            EncodeError::ImmFieldConflict => {
                write!(f, "more than one operand requires the immediate field")
            }
            EncodeError::SMemOffsetOutOfRange(v) => {
                write!(f, "shared-operand offset {v} is outside 0..16384")
            }
            EncodeError::MemOffsetOutOfRange(v) => {
                write!(f, "memory offset {v} does not fit the signed 18-bit field")
            }
            EncodeError::ParamOffsetOutOfRange(v) => {
                write!(f, "parameter offset {v} does not fit 14 bits")
            }
            EncodeError::BadReg(r) => write!(f, "register index {r} is out of range"),
            EncodeError::BadPred(p) => write!(f, "predicate index {p} is out of range"),
        }
    }
}

impl Error for EncodeError {}

/// Errors produced when a 64-bit word is not a valid instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode number.
    BadOpcode(u8),
    /// An operand kind tag is invalid for this position.
    BadOperandKind(u8),
    /// A packed sub-field (comparison, special register, width) is invalid.
    BadSubfield(&'static str, u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadOperandKind(k) => write!(f, "invalid operand kind {k}"),
            DecodeError::BadSubfield(name, v) => write!(f, "invalid {name} field value {v}"),
        }
    }
}

impl Error for DecodeError {}

// Opcode numbers. Stable: the encoding is a wire format.
const OP_FMUL: u8 = 0;
const OP_FADD: u8 = 1;
const OP_FMAD: u8 = 2;
const OP_IADD: u8 = 3;
const OP_ISUB: u8 = 4;
const OP_IMUL: u8 = 5;
const OP_IMAD: u8 = 6;
const OP_IMIN: u8 = 7;
const OP_IMAX: u8 = 8;
const OP_SHL: u8 = 9;
const OP_SHR: u8 = 10;
const OP_AND: u8 = 11;
const OP_OR: u8 = 12;
const OP_XOR: u8 = 13;
const OP_MOV: u8 = 14;
const OP_MOVIMM: u8 = 15;
const OP_S2R: u8 = 16;
const OP_SETP: u8 = 17;
const OP_SEL: u8 = 18;
const OP_I2F: u8 = 19;
const OP_F2I: u8 = 20;
const OP_RCP: u8 = 21;
const OP_RSQ: u8 = 22;
const OP_SIN: u8 = 23;
const OP_COS: u8 = 24;
const OP_LG2: u8 = 25;
const OP_EX2: u8 = 26;
const OP_DADD: u8 = 27;
const OP_DMUL: u8 = 28;
const OP_DFMA: u8 = 29;
const OP_LDS: u8 = 30;
const OP_STS: u8 = 31;
const OP_LDG: u8 = 32;
const OP_STG: u8 = 33;
const OP_LDP: u8 = 34;
const OP_BAR: u8 = 35;
const OP_BRA: u8 = 36;
const OP_EXIT: u8 = 37;
const OP_NOP: u8 = 38;
const OP_ATOM_ADD: u8 = 39;
const OP_ATOM_CAS: u8 = 40;

const KIND_REG: u64 = 0;
const KIND_IMM: u64 = 1;
const KIND_SMEM: u64 = 2;

const NO_BASE: u64 = 0xFF;

/// Encoder state for the shared fields of the generic layout.
#[derive(Default)]
struct Fields {
    fields: [u64; 3],
    kinds: [u64; 3],
    imm14: Option<u64>,
}

impl Fields {
    fn pack_src(&mut self, slot: usize, s: Src) -> Result<(), EncodeError> {
        match s {
            Src::Reg(r) => {
                check_reg(r)?;
                self.fields[slot] = u64::from(r.0);
                self.kinds[slot] = KIND_REG;
            }
            Src::Imm(v) => {
                if !(Src::MIN_IMM..=Src::MAX_IMM).contains(&v) {
                    return Err(EncodeError::ImmOutOfRange(v));
                }
                if self.imm14.is_some() {
                    return Err(EncodeError::ImmFieldConflict);
                }
                self.imm14 = Some((v as u64) & 0x3FFF);
                self.kinds[slot] = KIND_IMM;
            }
            Src::SMem(addr) => {
                if !(0..16384).contains(&addr.offset) {
                    return Err(EncodeError::SMemOffsetOutOfRange(addr.offset));
                }
                if self.imm14.is_some() {
                    return Err(EncodeError::ImmFieldConflict);
                }
                self.imm14 = Some(addr.offset as u64);
                self.fields[slot] = match addr.base {
                    Some(r) => {
                        check_reg(r)?;
                        u64::from(r.0)
                    }
                    None => NO_BASE,
                };
                self.kinds[slot] = KIND_SMEM;
            }
        }
        Ok(())
    }

    fn finish(self, opcode: u8, guard: Option<PredGuard>, d: u64) -> Result<u64, EncodeError> {
        let mut w = (u64::from(opcode)) << 56;
        w |= encode_guard(guard)?;
        w |= (d & 0xFF) << 44;
        w |= self.fields[0] << 36;
        w |= self.fields[1] << 28;
        w |= self.fields[2] << 20;
        w |= self.kinds[0] << 18;
        w |= self.kinds[1] << 16;
        w |= self.kinds[2] << 14;
        w |= self.imm14.unwrap_or(0);
        Ok(w)
    }
}

fn check_reg(r: Reg) -> Result<(), EncodeError> {
    if r.is_valid() {
        Ok(())
    } else {
        Err(EncodeError::BadReg(r.0))
    }
}

fn encode_guard(guard: Option<PredGuard>) -> Result<u64, EncodeError> {
    match guard {
        None => Ok(0),
        Some(g) => {
            if !g.pred.is_valid() {
                return Err(EncodeError::BadPred(g.pred.0));
            }
            let mut w = 1u64 << 55;
            if g.negate {
                w |= 1 << 54;
            }
            w |= u64::from(g.pred.0) << 52;
            Ok(w)
        }
    }
}

fn decode_guard(w: u64) -> Option<PredGuard> {
    if (w >> 55) & 1 == 1 {
        Some(PredGuard {
            pred: Pred(((w >> 52) & 0x3) as u8),
            negate: (w >> 54) & 1 == 1,
        })
    } else {
        None
    }
}

fn encode_alu2(
    opcode: u8,
    guard: Option<PredGuard>,
    d: Reg,
    a: Src,
    b: Src,
) -> Result<u64, EncodeError> {
    check_reg(d)?;
    let mut f = Fields::default();
    f.pack_src(0, a)?;
    f.pack_src(1, b)?;
    f.finish(opcode, guard, u64::from(d.0))
}

fn encode_alu3(
    opcode: u8,
    guard: Option<PredGuard>,
    d: Reg,
    a: Src,
    b: Src,
    c: Src,
) -> Result<u64, EncodeError> {
    check_reg(d)?;
    let mut f = Fields::default();
    f.pack_src(0, a)?;
    f.pack_src(1, b)?;
    f.pack_src(2, c)?;
    f.finish(opcode, guard, u64::from(d.0))
}

fn encode_alu1(opcode: u8, guard: Option<PredGuard>, d: Reg, a: Src) -> Result<u64, EncodeError> {
    check_reg(d)?;
    let mut f = Fields::default();
    f.pack_src(0, a)?;
    f.finish(opcode, guard, u64::from(d.0))
}

fn encode_mem(
    opcode: u8,
    guard: Option<PredGuard>,
    reg: Reg,
    addr: MemAddr,
    width: Width,
) -> Result<u64, EncodeError> {
    check_reg(reg)?;
    if !addr.offset_encodable() {
        return Err(EncodeError::MemOffsetOutOfRange(addr.offset));
    }
    let mut w = (u64::from(opcode)) << 56;
    w |= encode_guard(guard)?;
    w |= u64::from(reg.0) << 44;
    w |= match addr.base {
        Some(r) => {
            check_reg(r)?;
            u64::from(r.0)
        }
        None => NO_BASE,
    } << 36;
    let wbits = match width {
        Width::B32 => 0u64,
        Width::B64 => 1,
        Width::B128 => 2,
    };
    w |= wbits << 18;
    w |= (addr.offset as u64) & 0x3FFFF;
    Ok(w)
}

/// Shared-memory atomics reuse the memory layout (destination at 44, base
/// register at 36, signed 18-bit offset in bits 17..0) and carry their one
/// or two register operands in the otherwise-unused bits 35..28 and 27..20.
/// The access is always 32-bit, so no width field is needed.
fn encode_atomic(
    opcode: u8,
    guard: Option<PredGuard>,
    d: Reg,
    addr: MemAddr,
    x: Reg,
    y: Reg,
) -> Result<u64, EncodeError> {
    check_reg(d)?;
    check_reg(x)?;
    check_reg(y)?;
    if !addr.offset_encodable() {
        return Err(EncodeError::MemOffsetOutOfRange(addr.offset));
    }
    let mut w = (u64::from(opcode)) << 56;
    w |= encode_guard(guard)?;
    w |= u64::from(d.0) << 44;
    w |= match addr.base {
        Some(r) => {
            check_reg(r)?;
            u64::from(r.0)
        }
        None => NO_BASE,
    } << 36;
    w |= u64::from(x.0) << 28;
    w |= u64::from(y.0) << 20;
    w |= (addr.offset as u64) & 0x3FFFF;
    Ok(w)
}

fn decode_atomic(w: u64) -> (Reg, MemAddr, Reg, Reg) {
    let d = Reg(((w >> 44) & 0xFF) as u8);
    let base_raw = (w >> 36) & 0xFF;
    let base = if base_raw == NO_BASE {
        None
    } else {
        Some(Reg(base_raw as u8))
    };
    let raw = (w & 0x3FFFF) as i32;
    let offset = (raw << 14) >> 14;
    let x = Reg(((w >> 28) & 0xFF) as u8);
    let y = Reg(((w >> 20) & 0xFF) as u8);
    (d, MemAddr::new(base, offset), x, y)
}

fn decode_mem(w: u64) -> Result<(Reg, MemAddr, Width), DecodeError> {
    let reg = Reg(((w >> 44) & 0xFF) as u8);
    let base_raw = (w >> 36) & 0xFF;
    let base = if base_raw == NO_BASE {
        None
    } else {
        Some(Reg(base_raw as u8))
    };
    let width = match (w >> 18) & 0x3 {
        0 => Width::B32,
        1 => Width::B64,
        2 => Width::B128,
        v => return Err(DecodeError::BadSubfield("width", v as u8)),
    };
    // Sign-extend the 18-bit offset.
    let raw = (w & 0x3FFFF) as i32;
    let offset = (raw << 14) >> 14;
    Ok((reg, MemAddr::new(base, offset), width))
}

fn decode_src(w: u64, slot: usize) -> Result<Src, DecodeError> {
    let field = (w >> (36 - 8 * slot)) & 0xFF;
    let kind = (w >> (18 - 2 * slot)) & 0x3;
    let imm14 = w & 0x3FFF;
    match kind {
        KIND_REG => Ok(Src::Reg(Reg(field as u8))),
        KIND_IMM => {
            let v = ((imm14 as i32) << 18) >> 18;
            Ok(Src::Imm(v))
        }
        KIND_SMEM => {
            let base = if field == NO_BASE {
                None
            } else {
                Some(Reg(field as u8))
            };
            Ok(Src::SMem(MemAddr::new(base, imm14 as i32)))
        }
        k => Err(DecodeError::BadOperandKind(k as u8)),
    }
}

/// Encode one instruction into its 64-bit binary word.
///
/// # Errors
///
/// Returns an [`EncodeError`] if an operand does not fit its field — e.g. an
/// inline immediate beyond ±8191, two immediate-class operands, or an
/// out-of-range memory offset.
pub fn encode(instr: &Instruction) -> Result<u64, EncodeError> {
    let g = instr.guard;
    match instr.op {
        Op::FMul { d, a, b } => encode_alu2(OP_FMUL, g, d, a, b),
        Op::FAdd { d, a, b } => encode_alu2(OP_FADD, g, d, a, b),
        Op::FMad { d, a, b, c } => encode_alu3(OP_FMAD, g, d, a, b, c),
        Op::IAdd { d, a, b } => encode_alu2(OP_IADD, g, d, a, b),
        Op::ISub { d, a, b } => encode_alu2(OP_ISUB, g, d, a, b),
        Op::IMul { d, a, b } => encode_alu2(OP_IMUL, g, d, a, b),
        Op::IMad { d, a, b, c } => encode_alu3(OP_IMAD, g, d, a, b, c),
        Op::IMin { d, a, b } => encode_alu2(OP_IMIN, g, d, a, b),
        Op::IMax { d, a, b } => encode_alu2(OP_IMAX, g, d, a, b),
        Op::Shl { d, a, b } => encode_alu2(OP_SHL, g, d, a, b),
        Op::Shr { d, a, b } => encode_alu2(OP_SHR, g, d, a, b),
        Op::And { d, a, b } => encode_alu2(OP_AND, g, d, a, b),
        Op::Or { d, a, b } => encode_alu2(OP_OR, g, d, a, b),
        Op::Xor { d, a, b } => encode_alu2(OP_XOR, g, d, a, b),
        Op::Mov { d, a } => encode_alu1(OP_MOV, g, d, a),
        Op::MovImm { d, imm } => {
            check_reg(d)?;
            let mut w = (u64::from(OP_MOVIMM)) << 56;
            w |= encode_guard(g)?;
            w |= u64::from(d.0) << 44;
            w |= u64::from(imm);
            Ok(w)
        }
        Op::S2R { d, sr } => {
            check_reg(d)?;
            let mut f = Fields::default();
            f.fields[0] = u64::from(sr.index());
            f.finish(OP_S2R, g, u64::from(d.0))
        }
        Op::SetP { p, cmp, ty, a, b } => {
            if !p.is_valid() {
                return Err(EncodeError::BadPred(p.0));
            }
            let cmp_num = CmpOp::ALL.iter().position(|c| *c == cmp).unwrap() as u64;
            let ty_num = match ty {
                NumTy::S32 => 0u64,
                NumTy::F32 => 1,
            };
            let d = u64::from(p.0) | (cmp_num << 2) | (ty_num << 5);
            let mut f = Fields::default();
            f.pack_src(0, a)?;
            f.pack_src(1, b)?;
            f.finish(OP_SETP, g, d)
        }
        Op::Sel { d, p, a, b } => {
            check_reg(d)?;
            if !p.is_valid() {
                return Err(EncodeError::BadPred(p.0));
            }
            let mut f = Fields::default();
            f.pack_src(0, a)?;
            f.pack_src(1, b)?;
            f.fields[2] = u64::from(p.0);
            f.finish(OP_SEL, g, u64::from(d.0))
        }
        Op::I2F { d, a } => encode_alu1(OP_I2F, g, d, a),
        Op::F2I { d, a } => encode_alu1(OP_F2I, g, d, a),
        Op::Rcp { d, a } => encode_alu1(OP_RCP, g, d, a),
        Op::Rsq { d, a } => encode_alu1(OP_RSQ, g, d, a),
        Op::Sin { d, a } => encode_alu1(OP_SIN, g, d, a),
        Op::Cos { d, a } => encode_alu1(OP_COS, g, d, a),
        Op::Lg2 { d, a } => encode_alu1(OP_LG2, g, d, a),
        Op::Ex2 { d, a } => encode_alu1(OP_EX2, g, d, a),
        Op::DAdd { d, a, b } => encode_alu2(OP_DADD, g, d, Src::Reg(a), Src::Reg(b)),
        Op::DMul { d, a, b } => encode_alu2(OP_DMUL, g, d, Src::Reg(a), Src::Reg(b)),
        Op::DFma { d, a, b, c } => {
            encode_alu3(OP_DFMA, g, d, Src::Reg(a), Src::Reg(b), Src::Reg(c))
        }
        Op::LdShared { d, addr, width } => encode_mem(OP_LDS, g, d, addr, width),
        Op::StShared { addr, src, width } => encode_mem(OP_STS, g, src, addr, width),
        Op::LdGlobal { d, addr, width } => encode_mem(OP_LDG, g, d, addr, width),
        Op::StGlobal { addr, src, width } => encode_mem(OP_STG, g, src, addr, width),
        Op::AtomSharedAdd { d, addr, src } => encode_atomic(OP_ATOM_ADD, g, d, addr, src, src),
        Op::AtomSharedCas { d, addr, cmp, src } => encode_atomic(OP_ATOM_CAS, g, d, addr, cmp, src),
        Op::LdParam { d, offset } => {
            check_reg(d)?;
            if offset >= 16384 {
                return Err(EncodeError::ParamOffsetOutOfRange(offset));
            }
            let mut w = (u64::from(OP_LDP)) << 56;
            w |= encode_guard(g)?;
            w |= u64::from(d.0) << 44;
            w |= u64::from(offset);
            Ok(w)
        }
        Op::Bar => {
            let mut w = (u64::from(OP_BAR)) << 56;
            w |= encode_guard(g)?;
            Ok(w)
        }
        Op::Bra { target } => {
            let mut w = (u64::from(OP_BRA)) << 56;
            w |= encode_guard(g)?;
            w |= u64::from(target);
            Ok(w)
        }
        Op::Exit => {
            let mut w = (u64::from(OP_EXIT)) << 56;
            w |= encode_guard(g)?;
            Ok(w)
        }
        Op::Nop => {
            let mut w = (u64::from(OP_NOP)) << 56;
            w |= encode_guard(g)?;
            Ok(w)
        }
    }
}

/// Decode a 64-bit binary word back into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes or malformed fields.
pub fn decode(w: u64) -> Result<Instruction, DecodeError> {
    let opcode = (w >> 56) as u8;
    let guard = decode_guard(w);
    let d = Reg(((w >> 44) & 0xFF) as u8);
    let op = match opcode {
        OP_FMUL => Op::FMul {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_FADD => Op::FAdd {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_FMAD => Op::FMad {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
            c: decode_src(w, 2)?,
        },
        OP_IADD => Op::IAdd {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_ISUB => Op::ISub {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_IMUL => Op::IMul {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_IMAD => Op::IMad {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
            c: decode_src(w, 2)?,
        },
        OP_IMIN => Op::IMin {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_IMAX => Op::IMax {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_SHL => Op::Shl {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_SHR => Op::Shr {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_AND => Op::And {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_OR => Op::Or {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_XOR => Op::Xor {
            d,
            a: decode_src(w, 0)?,
            b: decode_src(w, 1)?,
        },
        OP_MOV => Op::Mov {
            d,
            a: decode_src(w, 0)?,
        },
        OP_MOVIMM => Op::MovImm {
            d,
            imm: (w & 0xFFFF_FFFF) as u32,
        },
        OP_S2R => {
            let idx = ((w >> 36) & 0xFF) as u8;
            let sr = SpecialReg::from_index(idx)
                .ok_or(DecodeError::BadSubfield("special register", idx))?;
            Op::S2R { d, sr }
        }
        OP_SETP => {
            let draw = (w >> 44) & 0xFF;
            let p = Pred((draw & 0x3) as u8);
            let cmp_num = ((draw >> 2) & 0x7) as usize;
            let cmp = *CmpOp::ALL
                .get(cmp_num)
                .ok_or(DecodeError::BadSubfield("comparison", cmp_num as u8))?;
            let ty = if (draw >> 5) & 1 == 1 {
                NumTy::F32
            } else {
                NumTy::S32
            };
            Op::SetP {
                p,
                cmp,
                ty,
                a: decode_src(w, 0)?,
                b: decode_src(w, 1)?,
            }
        }
        OP_SEL => {
            let p = Pred(((w >> 20) & 0x3) as u8);
            Op::Sel {
                d,
                p,
                a: decode_src(w, 0)?,
                b: decode_src(w, 1)?,
            }
        }
        OP_I2F => Op::I2F {
            d,
            a: decode_src(w, 0)?,
        },
        OP_F2I => Op::F2I {
            d,
            a: decode_src(w, 0)?,
        },
        OP_RCP => Op::Rcp {
            d,
            a: decode_src(w, 0)?,
        },
        OP_RSQ => Op::Rsq {
            d,
            a: decode_src(w, 0)?,
        },
        OP_SIN => Op::Sin {
            d,
            a: decode_src(w, 0)?,
        },
        OP_COS => Op::Cos {
            d,
            a: decode_src(w, 0)?,
        },
        OP_LG2 => Op::Lg2 {
            d,
            a: decode_src(w, 0)?,
        },
        OP_EX2 => Op::Ex2 {
            d,
            a: decode_src(w, 0)?,
        },
        OP_DADD | OP_DMUL | OP_DFMA => {
            let reg_of = |s: Src| match s {
                Src::Reg(r) => Ok(r),
                _ => Err(DecodeError::BadOperandKind(1)),
            };
            let a = reg_of(decode_src(w, 0)?)?;
            let b = reg_of(decode_src(w, 1)?)?;
            match opcode {
                OP_DADD => Op::DAdd { d, a, b },
                OP_DMUL => Op::DMul { d, a, b },
                _ => {
                    let c = reg_of(decode_src(w, 2)?)?;
                    Op::DFma { d, a, b, c }
                }
            }
        }
        OP_LDS => {
            let (reg, addr, width) = decode_mem(w)?;
            Op::LdShared {
                d: reg,
                addr,
                width,
            }
        }
        OP_STS => {
            let (reg, addr, width) = decode_mem(w)?;
            Op::StShared {
                addr,
                src: reg,
                width,
            }
        }
        OP_LDG => {
            let (reg, addr, width) = decode_mem(w)?;
            Op::LdGlobal {
                d: reg,
                addr,
                width,
            }
        }
        OP_STG => {
            let (reg, addr, width) = decode_mem(w)?;
            Op::StGlobal {
                addr,
                src: reg,
                width,
            }
        }
        OP_LDP => Op::LdParam {
            d,
            offset: (w & 0x3FFF) as u16,
        },
        OP_ATOM_ADD => {
            let (d, addr, _, src) = decode_atomic(w);
            Op::AtomSharedAdd { d, addr, src }
        }
        OP_ATOM_CAS => {
            let (d, addr, cmp, src) = decode_atomic(w);
            Op::AtomSharedCas { d, addr, cmp, src }
        }
        OP_BAR => Op::Bar,
        OP_BRA => Op::Bra {
            target: (w & 0xFFFF_FFFF) as u32,
        },
        OP_EXIT => Op::Exit,
        OP_NOP => Op::Nop,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(Instruction { guard, op })
}

/// Encode a whole instruction stream.
///
/// # Errors
///
/// Returns the first [`EncodeError`] along with its instruction index.
pub fn encode_kernel(instrs: &[Instruction]) -> Result<Vec<u64>, (usize, EncodeError)> {
    instrs
        .iter()
        .enumerate()
        .map(|(i, ins)| encode(ins).map_err(|e| (i, e)))
        .collect()
}

/// Decode a whole instruction stream.
///
/// # Errors
///
/// Returns the first [`DecodeError`] along with its word index.
pub fn decode_kernel(words: &[u64]) -> Result<Vec<Instruction>, (usize, DecodeError)> {
    words
        .iter()
        .enumerate()
        .map(|(i, w)| decode(*w).map_err(|e| (i, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rt(i: Instruction) {
        let w = encode(&i).expect("encodable");
        let back = decode(w).expect("decodable");
        assert_eq!(i, back, "word was {w:#018x}");
    }

    #[test]
    fn round_trip_representative_instructions() {
        let r0 = Reg(0);
        let r1 = Reg(1);
        let r7 = Reg(7);
        rt(Instruction::new(Op::FMad {
            d: r0,
            a: Src::smem(Some(r7), 1024),
            b: Src::Reg(r1),
            c: Src::Reg(r0),
        }));
        rt(Instruction::new(Op::MovImm {
            d: r1,
            imm: 0x3f80_0000,
        }));
        rt(Instruction::new(Op::IAdd {
            d: r0,
            a: Src::Reg(r1),
            b: Src::Imm(-4),
        }));
        rt(Instruction::guarded(
            Pred(2),
            true,
            Op::StGlobal {
                addr: MemAddr::new(Some(r7), -128),
                src: r0,
                width: Width::B128,
            },
        ));
        rt(Instruction::new(Op::SetP {
            p: Pred(3),
            cmp: CmpOp::Ge,
            ty: NumTy::F32,
            a: Src::Reg(r0),
            b: Src::Reg(r1),
        }));
        rt(Instruction::new(Op::Sel {
            d: r0,
            p: Pred(1),
            a: Src::Reg(r1),
            b: Src::Imm(0),
        }));
        rt(Instruction::new(Op::S2R {
            d: r0,
            sr: SpecialReg::CtaIdY,
        }));
        rt(Instruction::new(Op::DFma {
            d: Reg(0),
            a: Reg(2),
            b: Reg(4),
            c: Reg(6),
        }));
        rt(Instruction::new(Op::LdParam { d: r0, offset: 12 }));
        rt(Instruction::new(Op::Bar));
        rt(Instruction::new(Op::Bra { target: 123_456 }));
        rt(Instruction::guarded(Pred(0), false, Op::Bra { target: 7 }));
        rt(Instruction::new(Op::Exit));
        rt(Instruction::new(Op::Nop));
    }

    #[test]
    fn negative_mem_offsets_round_trip() {
        rt(Instruction::new(Op::LdShared {
            d: Reg(3),
            addr: MemAddr::new(Some(Reg(4)), -16),
            width: Width::B32,
        }));
        rt(Instruction::new(Op::LdGlobal {
            d: Reg(3),
            addr: MemAddr::new(None, MemAddr::MAX_OFFSET),
            width: Width::B64,
        }));
        rt(Instruction::new(Op::LdGlobal {
            d: Reg(3),
            addr: MemAddr::new(None, MemAddr::MIN_OFFSET),
            width: Width::B32,
        }));
    }

    #[test]
    fn imm_out_of_range_rejected() {
        let i = Instruction::new(Op::IAdd {
            d: Reg(0),
            a: Src::Reg(Reg(1)),
            b: Src::Imm(9000),
        });
        assert_eq!(encode(&i), Err(EncodeError::ImmOutOfRange(9000)));
    }

    #[test]
    fn two_imm_operands_rejected() {
        let i = Instruction::new(Op::IAdd {
            d: Reg(0),
            a: Src::Imm(1),
            b: Src::Imm(2),
        });
        assert_eq!(encode(&i), Err(EncodeError::ImmFieldConflict));
    }

    #[test]
    fn smem_plus_imm_rejected() {
        let i = Instruction::new(Op::FMad {
            d: Reg(0),
            a: Src::smem(None, 4),
            b: Src::Imm(2),
            c: Src::Reg(Reg(0)),
        });
        assert_eq!(encode(&i), Err(EncodeError::ImmFieldConflict));
    }

    #[test]
    fn bad_reg_rejected() {
        let i = Instruction::new(Op::Mov {
            d: Reg(200),
            a: Src::Reg(Reg(0)),
        });
        assert_eq!(encode(&i), Err(EncodeError::BadReg(200)));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(
            decode(0xFF00_0000_0000_0000),
            Err(DecodeError::BadOpcode(0xFF))
        );
    }

    #[test]
    fn kernel_stream_round_trips() {
        let prog = vec![
            Instruction::new(Op::S2R {
                d: Reg(0),
                sr: SpecialReg::TidX,
            }),
            Instruction::new(Op::Shl {
                d: Reg(1),
                a: Src::Reg(Reg(0)),
                b: Src::Imm(2),
            }),
            Instruction::new(Op::LdGlobal {
                d: Reg(2),
                addr: MemAddr::new(Some(Reg(1)), 0),
                width: Width::B32,
            }),
            Instruction::new(Op::Exit),
        ];
        let words = encode_kernel(&prog).unwrap();
        assert_eq!(decode_kernel(&words).unwrap(), prog);
    }

    // ---- Property tests: encode ∘ decode = id over generated instructions ----

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..128).prop_map(Reg)
    }

    fn arb_src() -> impl Strategy<Value = Src> {
        prop_oneof![
            arb_reg().prop_map(Src::Reg),
            (Src::MIN_IMM..=Src::MAX_IMM).prop_map(Src::Imm),
            (proptest::option::of(arb_reg()), 0i32..16384).prop_map(|(b, o)| Src::smem(b, o)),
        ]
    }

    fn arb_guard() -> impl Strategy<Value = Option<PredGuard>> {
        proptest::option::of(((0u8..4), any::<bool>()).prop_map(|(p, n)| PredGuard {
            pred: Pred(p),
            negate: n,
        }))
    }

    fn no_field_conflict(srcs: &[Src]) -> bool {
        srcs.iter().filter(|s| !matches!(s, Src::Reg(_))).count() <= 1
    }

    proptest! {
        #[test]
        fn round_trip_alu2(g in arb_guard(), d in arb_reg(), a in arb_src(), b in arb_src()) {
            prop_assume!(no_field_conflict(&[a, b]));
            for op in [
                Op::FMul { d, a, b }, Op::FAdd { d, a, b }, Op::IAdd { d, a, b },
                Op::ISub { d, a, b }, Op::IMul { d, a, b }, Op::IMin { d, a, b },
                Op::IMax { d, a, b }, Op::Shl { d, a, b }, Op::Shr { d, a, b },
                Op::And { d, a, b }, Op::Or { d, a, b }, Op::Xor { d, a, b },
            ] {
                let i = Instruction { guard: g, op };
                let w = encode(&i).unwrap();
                prop_assert_eq!(decode(w).unwrap(), i);
            }
        }

        #[test]
        fn round_trip_mad(g in arb_guard(), d in arb_reg(),
                          a in arb_src(), b in arb_src(), c in arb_src()) {
            prop_assume!(no_field_conflict(&[a, b, c]));
            for op in [Op::FMad { d, a, b, c }, Op::IMad { d, a, b, c }] {
                let i = Instruction { guard: g, op };
                let w = encode(&i).unwrap();
                prop_assert_eq!(decode(w).unwrap(), i);
            }
        }

        #[test]
        fn round_trip_mem(g in arb_guard(), r in arb_reg(),
                          base in proptest::option::of(arb_reg()),
                          off in MemAddr::MIN_OFFSET..=MemAddr::MAX_OFFSET,
                          wsel in 0usize..3) {
            let width = [Width::B32, Width::B64, Width::B128][wsel];
            let addr = MemAddr::new(base, off);
            for op in [
                Op::LdShared { d: r, addr, width },
                Op::StShared { addr, src: r, width },
                Op::LdGlobal { d: r, addr, width },
                Op::StGlobal { addr, src: r, width },
            ] {
                let i = Instruction { guard: g, op };
                let w = encode(&i).unwrap();
                prop_assert_eq!(decode(w).unwrap(), i);
            }
        }

        #[test]
        fn round_trip_atomics(g in arb_guard(), d in arb_reg(), x in arb_reg(), y in arb_reg(),
                              base in proptest::option::of(arb_reg()),
                              off in MemAddr::MIN_OFFSET..=MemAddr::MAX_OFFSET) {
            let addr = MemAddr::new(base, off);
            for op in [
                Op::AtomSharedAdd { d, addr, src: x },
                Op::AtomSharedCas { d, addr, cmp: x, src: y },
            ] {
                let i = Instruction { guard: g, op };
                let w = encode(&i).unwrap();
                prop_assert_eq!(decode(w).unwrap(), i);
            }
        }

        #[test]
        fn round_trip_movimm_bra(g in arb_guard(), d in arb_reg(),
                                 imm in any::<u32>(), target in any::<u32>()) {
            let i = Instruction { guard: g, op: Op::MovImm { d, imm } };
            prop_assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
            let b = Instruction { guard: g, op: Op::Bra { target } };
            prop_assert_eq!(decode(encode(&b).unwrap()).unwrap(), b);
        }
    }
}
