//! Programmatic kernel construction with labels and resource tracking.
//!
//! [`KernelBuilder`] plays the role of the paper's CUBIN generator: it lets
//! the microbenchmarks and case studies emit *exactly* the native
//! instructions they intend — no compiler in the loop to fold constants or
//! eliminate "dead" benchmark code.
//!
//! ```
//! use gpa_isa::builder::KernelBuilder;
//! use gpa_isa::instr::{CmpOp, NumTy, Src};
//!
//! // for (i = 0; i < 8; i++) acc += acc * 2.0
//! let mut b = KernelBuilder::new("demo");
//! b.set_threads(64);
//! let acc = b.alloc_reg()?;
//! let two = b.alloc_reg()?;
//! let i = b.alloc_reg()?;
//! b.mov_imm_f32(acc, 1.0);
//! b.mov_imm_f32(two, 2.0);
//! b.mov_imm(i, 0);
//! b.label("top");
//! b.fmad(acc, Src::Reg(acc), Src::Reg(two), Src::Reg(acc));
//! b.iadd(i, Src::Reg(i), Src::Imm(1));
//! b.setp(gpa_isa::instr::Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(8));
//! b.bra_if(gpa_isa::instr::Pred(0), false, "top");
//! b.exit();
//! let kernel = b.finish()?;
//! assert_eq!(kernel.resources.regs_per_thread, 3);
//! # Ok::<(), gpa_isa::builder::BuildError>(())
//! ```

use crate::instr::{
    CmpOp, Instruction, MemAddr, NumTy, Op, Pred, PredGuard, Reg, SpecialReg, Src, Width,
};
use crate::kernel::{Kernel, ValidateError};
use gpa_hw::KernelResources;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced while building a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// More than 128 registers are live at once.
    OutOfRegisters,
    /// The shared-memory arena exceeded 16 KB.
    OutOfSharedMemory {
        /// Bytes the failing allocation asked for.
        requested: u32,
    },
    /// The finished kernel failed structural validation.
    Validate(ValidateError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::OutOfRegisters => {
                write!(f, "register allocator exhausted (128 per thread)")
            }
            BuildError::OutOfSharedMemory { requested } => {
                write!(
                    f,
                    "shared-memory allocation of {requested} B exceeds the 16 KB arena"
                )
            }
            BuildError::Validate(e) => write!(f, "built kernel failed validation: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Validate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for BuildError {
    fn from(e: ValidateError) -> Self {
        BuildError::Validate(e)
    }
}

/// Incremental kernel emitter. See the [module docs](self) for an example.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instruction>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
    free_regs: Vec<u8>,
    next_reg: u32,
    high_water: u32,
    smem_cursor: u32,
    param_cursor: u32,
    threads_per_block: u32,
    declared: Option<KernelResources>,
    guard: Option<PredGuard>,
}

impl KernelBuilder {
    /// Start a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            free_regs: Vec::new(),
            next_reg: 0,
            high_water: 0,
            smem_cursor: 0,
            param_cursor: 0,
            threads_per_block: 32,
            declared: None,
            guard: None,
        }
    }

    /// Set the block size recorded in the kernel's resources.
    pub fn set_threads(&mut self, threads: u32) -> &mut Self {
        self.threads_per_block = threads;
        self
    }

    /// Override the *declared* resource usage recorded in the finished
    /// kernel (the numbers the occupancy calculation uses). The builder's
    /// own register high-water mark and shared-memory cursor remain
    /// available as a consistency check via [`KernelBuilder::computed_resources`].
    ///
    /// The case studies use this to carry the paper's published per-kernel
    /// footprints (e.g. Table 2), which reflect the original GT200 compiler
    /// rather than this builder's allocator.
    pub fn declare_resources(&mut self, res: KernelResources) -> &mut Self {
        self.declared = Some(res);
        self
    }

    /// Resource usage as actually observed by the builder.
    pub fn computed_resources(&self) -> KernelResources {
        KernelResources::new(self.high_water, self.smem_cursor, self.threads_per_block)
    }

    // ---- Registers, shared memory, parameters ----

    /// Allocate one register.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::OutOfRegisters`] if 128 registers are live.
    pub fn alloc_reg(&mut self) -> Result<Reg, BuildError> {
        if let Some(r) = self.free_regs.pop() {
            return Ok(Reg(r));
        }
        if self.next_reg >= u32::from(Reg::COUNT) {
            return Err(BuildError::OutOfRegisters);
        }
        let r = self.next_reg as u8;
        self.next_reg += 1;
        self.high_water = self.high_water.max(self.next_reg);
        Ok(Reg(r))
    }

    /// Allocate `n` contiguous registers aligned to `n` (for `b64`/`b128`
    /// accesses and double-precision pairs). Contiguous blocks always come
    /// from fresh registers, never from the free list.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::OutOfRegisters`] when the file is exhausted.
    pub fn alloc_contig(&mut self, n: u8) -> Result<Reg, BuildError> {
        let align = u32::from(n.next_power_of_two());
        let base = self.next_reg.div_ceil(align) * align;
        let end = base + u32::from(n);
        if end > u32::from(Reg::COUNT) {
            return Err(BuildError::OutOfRegisters);
        }
        // Return skipped alignment padding to the free list.
        for r in self.next_reg..base {
            self.free_regs.push(r as u8);
        }
        self.next_reg = end;
        self.high_water = self.high_water.max(self.next_reg);
        Ok(Reg(base as u8))
    }

    /// Return a register to the allocator.
    pub fn free_reg(&mut self, r: Reg) {
        debug_assert!(!self.free_regs.contains(&r.0), "double free of {r}");
        self.free_regs.push(r.0);
    }

    /// Reserve `bytes` of shared memory aligned to `align` and return the
    /// byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::OutOfSharedMemory`] past 16 KB.
    pub fn smem_alloc(&mut self, bytes: u32, align: u32) -> Result<u32, BuildError> {
        let align = align.max(1);
        let base = self.smem_cursor.div_ceil(align) * align;
        let end = base + bytes;
        if end > 16_384 {
            return Err(BuildError::OutOfSharedMemory { requested: bytes });
        }
        self.smem_cursor = end;
        Ok(base)
    }

    /// Reserve a 4-byte parameter slot and return its byte offset.
    pub fn param_alloc(&mut self) -> u16 {
        let off = self.param_cursor;
        self.param_cursor += 4;
        off as u16
    }

    // ---- Guards and labels ----

    /// Guard all subsequently emitted instructions with `@p` (or `@!p`).
    pub fn set_guard(&mut self, pred: Pred, negate: bool) -> &mut Self {
        self.guard = Some(PredGuard { pred, negate });
        self
    }

    /// Stop guarding emitted instructions.
    pub fn clear_guard(&mut self) -> &mut Self {
        self.guard = None;
        self
    }

    /// Define a label at the current position. Labels may be referenced
    /// before definition.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let at = self.instrs.len() as u32;
        if self.labels.insert(name.clone(), at).is_some() {
            // Surface duplicates at finish() via a poisoned fixup.
            self.fixups.push((usize::MAX, name));
        }
        self
    }

    /// Emit a raw operation with the pending guard.
    pub fn emit(&mut self, op: Op) -> &mut Self {
        self.instrs.push(Instruction {
            guard: self.guard,
            op,
        });
        self
    }

    /// Current instruction count (the PC a label defined now would get).
    pub fn pc(&self) -> u32 {
        self.instrs.len() as u32
    }

    // ---- Instruction emitters ----

    /// `d = a * b` (f32, Type I).
    pub fn fmul(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::FMul { d, a, b })
    }

    /// `d = a + b` (f32).
    pub fn fadd(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::FAdd { d, a, b })
    }

    /// `d = a * b + c` (f32).
    pub fn fmad(&mut self, d: Reg, a: Src, b: Src, c: Src) -> &mut Self {
        self.emit(Op::FMad { d, a, b, c })
    }

    /// `d = a + b` (s32).
    pub fn iadd(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::IAdd { d, a, b })
    }

    /// `d = a - b` (s32).
    pub fn isub(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::ISub { d, a, b })
    }

    /// `d = a * b` (s32).
    pub fn imul(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::IMul { d, a, b })
    }

    /// `d = a * b + c` (s32).
    pub fn imad(&mut self, d: Reg, a: Src, b: Src, c: Src) -> &mut Self {
        self.emit(Op::IMad { d, a, b, c })
    }

    /// `d = min(a, b)` (s32).
    pub fn imin(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::IMin { d, a, b })
    }

    /// `d = max(a, b)` (s32).
    pub fn imax(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::IMax { d, a, b })
    }

    /// `d = a << b`.
    pub fn shl(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::Shl { d, a, b })
    }

    /// `d = a >> b` (logical).
    pub fn shr(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::Shr { d, a, b })
    }

    /// `d = a & b`.
    pub fn and(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::And { d, a, b })
    }

    /// `d = a | b`.
    pub fn or(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::Or { d, a, b })
    }

    /// `d = a ^ b`.
    pub fn xor(&mut self, d: Reg, a: Src, b: Src) -> &mut Self {
        self.emit(Op::Xor { d, a, b })
    }

    /// `d = a`.
    pub fn mov(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Mov { d, a })
    }

    /// `d = imm` (raw 32 bits).
    pub fn mov_imm(&mut self, d: Reg, imm: u32) -> &mut Self {
        self.emit(Op::MovImm { d, imm })
    }

    /// `d = imm` (signed integer).
    pub fn mov_imm_i32(&mut self, d: Reg, imm: i32) -> &mut Self {
        self.mov_imm(d, imm as u32)
    }

    /// `d = imm` (f32 bit pattern).
    pub fn mov_imm_f32(&mut self, d: Reg, imm: f32) -> &mut Self {
        self.mov_imm(d, imm.to_bits())
    }

    /// `d = special register`.
    pub fn s2r(&mut self, d: Reg, sr: SpecialReg) -> &mut Self {
        self.emit(Op::S2R { d, sr })
    }

    /// `p = a <cmp> b`.
    pub fn setp(&mut self, p: Pred, cmp: CmpOp, ty: NumTy, a: Src, b: Src) -> &mut Self {
        self.emit(Op::SetP { p, cmp, ty, a, b })
    }

    /// `d = p ? a : b`.
    pub fn sel(&mut self, d: Reg, p: Pred, a: Src, b: Src) -> &mut Self {
        self.emit(Op::Sel { d, p, a, b })
    }

    /// `d = (f32)a`.
    pub fn i2f(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::I2F { d, a })
    }

    /// `d = (s32)a`.
    pub fn f2i(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::F2I { d, a })
    }

    /// `d = 1/a` (Type III).
    pub fn rcp(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Rcp { d, a })
    }

    /// `d = 1/sqrt(a)` (Type III).
    pub fn rsq(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Rsq { d, a })
    }

    /// `d = sin(a)` (Type III).
    pub fn sin(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Sin { d, a })
    }

    /// `d = cos(a)` (Type III).
    pub fn cos(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Cos { d, a })
    }

    /// `d = log2(a)` (Type III).
    pub fn lg2(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Lg2 { d, a })
    }

    /// `d = 2^a` (Type III).
    pub fn ex2(&mut self, d: Reg, a: Src) -> &mut Self {
        self.emit(Op::Ex2 { d, a })
    }

    /// `d = a + b` (f64 pairs, Type IV).
    pub fn dadd(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::DAdd { d, a, b })
    }

    /// `d = a * b` (f64 pairs, Type IV).
    pub fn dmul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::DMul { d, a, b })
    }

    /// `d = a * b + c` (f64 pairs, Type IV).
    pub fn dfma(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> &mut Self {
        self.emit(Op::DFma { d, a, b, c })
    }

    /// Load from shared memory.
    pub fn ld_shared(&mut self, d: Reg, addr: MemAddr, width: Width) -> &mut Self {
        self.emit(Op::LdShared { d, addr, width })
    }

    /// Store to shared memory.
    pub fn st_shared(&mut self, addr: MemAddr, src: Reg, width: Width) -> &mut Self {
        self.emit(Op::StShared { addr, src, width })
    }

    /// Load from global memory.
    pub fn ld_global(&mut self, d: Reg, addr: MemAddr, width: Width) -> &mut Self {
        self.emit(Op::LdGlobal { d, addr, width })
    }

    /// Store to global memory.
    pub fn st_global(&mut self, addr: MemAddr, src: Reg, width: Width) -> &mut Self {
        self.emit(Op::StGlobal { addr, src, width })
    }

    /// Load a kernel parameter word.
    pub fn ld_param(&mut self, d: Reg, offset: u16) -> &mut Self {
        self.emit(Op::LdParam { d, offset })
    }

    /// Atomic `d = [addr]; [addr] += src` on a shared-memory word.
    pub fn atom_shared_add(&mut self, d: Reg, addr: MemAddr, src: Reg) -> &mut Self {
        self.emit(Op::AtomSharedAdd { d, addr, src })
    }

    /// Atomic `d = [addr]; if d == cmp { [addr] = src }` on a shared-memory
    /// word.
    pub fn atom_shared_cas(&mut self, d: Reg, addr: MemAddr, cmp: Reg, src: Reg) -> &mut Self {
        self.emit(Op::AtomSharedCas { d, addr, cmp, src })
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Op::Bar)
    }

    /// Unconditional branch to a label.
    pub fn bra(&mut self, label: impl Into<String>) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, label.into()));
        // Placeholder target patched in finish(); guard applies as pending.
        self.instrs.push(Instruction {
            guard: self.guard,
            op: Op::Bra { target: u32::MAX },
        });
        self
    }

    /// Conditional branch: `@p bra label` (or `@!p`). The explicit guard
    /// overrides any pending [`KernelBuilder::set_guard`] for this one
    /// instruction.
    pub fn bra_if(&mut self, pred: Pred, negate: bool, label: impl Into<String>) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, label.into()));
        self.instrs.push(Instruction {
            guard: Some(PredGuard { pred, negate }),
            op: Op::Bra { target: u32::MAX },
        });
        self
    }

    /// Terminate the thread.
    pub fn exit(&mut self) -> &mut Self {
        // `exit` ends the kernel for all lanes; an accidental pending guard
        // would make validation fail with FallsOffEnd, so emit unguarded.
        self.instrs.push(Instruction::new(Op::Exit));
        self
    }

    /// No-op (issue-slot filler).
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop)
    }

    /// Resolve labels, compute resources, validate, and produce the kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unresolved or duplicate labels, or any
    /// structural validation failure.
    pub fn finish(self) -> Result<Kernel, BuildError> {
        let mut instrs = self.instrs;
        for (at, label) in &self.fixups {
            if *at == usize::MAX {
                return Err(BuildError::DuplicateLabel(label.clone()));
            }
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            match &mut instrs[*at].op {
                Op::Bra { target: t } => *t = target,
                _ => unreachable!("fixup on a non-branch"),
            }
        }
        let computed =
            KernelResources::new(self.high_water, self.smem_cursor, self.threads_per_block);
        let resources = self.declared.unwrap_or(computed);
        let kernel = Kernel::new(self.name, instrs, resources, self.param_cursor);
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = KernelBuilder::new("t");
        let r = b.alloc_reg().unwrap();
        b.mov_imm(r, 0);
        b.bra("end"); // forward reference
        b.label("mid");
        b.nop();
        b.label("end");
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.instrs[1].op, Op::Bra { target: 3 });
    }

    #[test]
    fn undefined_label_fails() {
        let mut b = KernelBuilder::new("t");
        b.bra("nowhere");
        b.exit();
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_fails() {
        let mut b = KernelBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
        b.exit();
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn register_allocation_reuses_freed() {
        let mut b = KernelBuilder::new("t");
        let r0 = b.alloc_reg().unwrap();
        let r1 = b.alloc_reg().unwrap();
        assert_eq!((r0, r1), (Reg(0), Reg(1)));
        b.free_reg(r0);
        assert_eq!(b.alloc_reg().unwrap(), Reg(0));
        // High-water unaffected by reuse.
        b.nop();
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.resources.regs_per_thread, 2);
    }

    #[test]
    fn contiguous_allocation_is_aligned() {
        let mut b = KernelBuilder::new("t");
        let _ = b.alloc_reg().unwrap(); // r0
        let quad = b.alloc_contig(4).unwrap();
        assert_eq!(quad, Reg(4)); // aligned to 4
                                  // The padding r1..r3 is recycled.
        let r = b.alloc_reg().unwrap();
        assert!(r.0 >= 1 && r.0 <= 3);
    }

    #[test]
    fn register_exhaustion_detected() {
        let mut b = KernelBuilder::new("t");
        for _ in 0..128 {
            b.alloc_reg().unwrap();
        }
        assert_eq!(b.alloc_reg().unwrap_err(), BuildError::OutOfRegisters);
    }

    #[test]
    fn smem_allocation_aligns_and_bounds() {
        let mut b = KernelBuilder::new("t");
        assert_eq!(b.smem_alloc(5, 1).unwrap(), 0);
        assert_eq!(b.smem_alloc(8, 4).unwrap(), 8);
        assert!(matches!(
            b.smem_alloc(16_384, 4),
            Err(BuildError::OutOfSharedMemory { .. })
        ));
    }

    #[test]
    fn guards_apply_to_emitted_instructions() {
        let mut b = KernelBuilder::new("t");
        let r = b.alloc_reg().unwrap();
        b.set_guard(Pred(1), true);
        b.mov_imm(r, 7);
        b.clear_guard();
        b.mov_imm(r, 8);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(
            k.instrs[0].guard,
            Some(PredGuard {
                pred: Pred(1),
                negate: true
            })
        );
        assert_eq!(k.instrs[1].guard, None);
    }

    #[test]
    fn declared_resources_override_computed() {
        let mut b = KernelBuilder::new("t");
        b.set_threads(64);
        let _ = b.alloc_reg().unwrap();
        b.declare_resources(KernelResources::new(30, 1088, 64));
        b.nop();
        b.exit();
        let computed = b.computed_resources();
        let k = b.finish().unwrap();
        assert_eq!(k.resources.regs_per_thread, 30);
        assert_eq!(computed.regs_per_thread, 1);
    }

    #[test]
    fn validation_runs_on_finish() {
        let mut b = KernelBuilder::new("t");
        b.nop(); // no exit
        assert!(matches!(b.finish(), Err(BuildError::Validate(_))));
    }

    #[test]
    fn param_slots_advance() {
        let mut b = KernelBuilder::new("t");
        assert_eq!(b.param_alloc(), 0);
        assert_eq!(b.param_alloc(), 4);
        let r = b.alloc_reg().unwrap();
        b.ld_param(r, 4);
        b.exit();
        assert_eq!(b.finish().unwrap().param_bytes, 8);
    }
}
