#![warn(missing_docs)]

//! Native-flavoured GPU instruction set for the `gpa` performance model.
//!
//! The paper's central methodological claim is that accurate GPU performance
//! modeling must happen at the **native** instruction level, not at PTX or
//! source level, and that microbenchmarks must be built by emitting *exactly*
//! the binary instructions one intends (the paper modifies CUBINs with a
//! Decuda-based toolchain to defeat compiler interference). This crate is
//! that layer for our simulated GT200:
//!
//! * [`instr`] — the instruction set itself: a decuda-flavoured, structured
//!   representation of GT200-style native instructions, each tagged with its
//!   Table 1 [`gpa_hw::InstrClass`];
//! * [`encode`] — a fixed 64-bit binary encoding with exact round-tripping
//!   (the "CUBIN generator" substitute);
//! * [`asm`] — a textual assembler and disassembler;
//! * [`kernel`] — the kernel container (instructions + declared resources)
//!   and its validator;
//! * [`mod@cfg`] — control-flow analysis: basic blocks, postdominators, and the
//!   branch reconvergence points the SIMT divergence stack needs;
//! * [`builder`] — [`builder::KernelBuilder`], an ergonomic programmatic
//!   emitter with label patching, a register allocator, and shared-memory /
//!   parameter layout management.
//!
//! # Example
//!
//! ```
//! use gpa_isa::builder::KernelBuilder;
//! use gpa_isa::instr::Src;
//!
//! // acc = x * s[buf] + acc, reading one operand from shared memory.
//! let mut b = KernelBuilder::new("saxpy_like");
//! let buf = b.smem_alloc(4, 4)?;
//! let acc = b.alloc_reg()?;
//! let x = b.alloc_reg()?;
//! b.mov_imm_f32(acc, 0.0);
//! b.mov_imm_f32(x, 2.0);
//! b.fmad(acc, Src::Reg(x), Src::smem(None, buf as i32), Src::Reg(acc));
//! b.exit();
//! let kernel = b.finish()?;
//! assert_eq!(kernel.instrs.len(), 4);
//! # Ok::<(), gpa_isa::builder::BuildError>(())
//! ```

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod encode;
pub mod instr;
pub mod kernel;

pub use builder::KernelBuilder;
pub use instr::{CmpOp, Instruction, MemAddr, Op, Pred, PredGuard, Reg, Src, Width};
pub use kernel::Kernel;
