//! Lock-cheap metrics: counters, gauges, log-linear histograms, and a
//! registry that renders Prometheus text exposition.
//!
//! All instruments are cheap handles (`Clone` shares the underlying
//! atomics), so the same counter can live in a hot path and in the
//! registry at once. Updates are relaxed atomic operations — no locks on
//! the hot path; the registry's mutex is touched only at registration
//! and scrape time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in microseconds) of the finite histogram
/// buckets: a 1-2-5 log-linear ladder from 1 µs to 100 s. Every
/// [`Histogram`] shares this fixed layout, which is what makes
/// histograms mergeable across threads and byte-stable in exposition.
pub const BUCKET_BOUNDS: [u64; 25] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

/// Number of buckets including the overflow (`+Inf`) bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// `le` label values in bucket order, ending with `"+Inf"`. Precomputed
/// so exposition never formats numbers at scrape time.
pub const BUCKET_LABELS: [&str; BUCKETS] = [
    "1",
    "2",
    "5",
    "10",
    "20",
    "50",
    "100",
    "200",
    "500",
    "1000",
    "2000",
    "5000",
    "10000",
    "20000",
    "50000",
    "100000",
    "200000",
    "500000",
    "1000000",
    "2000000",
    "5000000",
    "10000000",
    "20000000",
    "50000000",
    "100000000",
    "+Inf",
];

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Latency histogram over the fixed [`BUCKET_BOUNDS`] layout, counting
/// observations in microseconds.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < micros);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(micros, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation of a [`Duration`] (saturating at `u64` µs).
    pub fn observe(&self, d: Duration) {
        self.observe_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Fold another histogram's observations into this one. Because
    /// every histogram shares the same bucket layout this is exact: the
    /// result is as if all observations had been made on `self`.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(&other.0.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, in microseconds.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (individual loads are
    /// relaxed; concurrent observers may be half-visible).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Estimated quantile `q` (in `[0, 1]`) in microseconds, by linear
    /// interpolation inside the owning bucket. Returns 0 for an empty
    /// histogram; observations in the overflow bucket report the last
    /// finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Point-in-time copy of a [`Histogram`], used for quantile extraction.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of observed values in microseconds.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let before = cum;
            cum += n;
            if (cum as f64) >= target && n > 0 {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS[i - 1] } as f64;
                let upper = if i < BUCKET_BOUNDS.len() {
                    BUCKET_BOUNDS[i] as f64
                } else {
                    // Overflow bucket: report the last finite bound.
                    return *BUCKET_BOUNDS.last().expect("nonempty") as f64;
                };
                let frac = (target - before as f64) / n as f64;
                return lower + (upper - lower) * frac;
            }
        }
        *BUCKET_BOUNDS.last().expect("nonempty") as f64
    }
}

/// Instrument kind, used for the `# TYPE` exposition line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Sample {
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

#[derive(Debug)]
struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    samples: Vec<Sample>,
}

/// A scrape-time metric family that is not backed by a registered
/// instrument — e.g. values derived from a stats snapshot. Merged into
/// [`Registry::render`] output under the same ordering contract.
#[derive(Clone, Debug)]
pub struct AdHoc {
    /// Metric family name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Counter or gauge (histograms must be registered).
    pub kind: Kind,
    /// Label set for the single sample (may be empty).
    pub labels: Vec<(&'static str, String)>,
    /// Sample value.
    pub value: u64,
}

impl AdHoc {
    /// Unlabeled counter sample.
    pub fn counter(name: &'static str, help: &'static str, value: u64) -> AdHoc {
        AdHoc {
            name,
            help,
            kind: Kind::Counter,
            labels: Vec::new(),
            value,
        }
    }

    /// Unlabeled gauge sample.
    pub fn gauge(name: &'static str, help: &'static str, value: u64) -> AdHoc {
        AdHoc {
            name,
            help,
            kind: Kind::Gauge,
            labels: Vec::new(),
            value,
        }
    }
}

/// Registry of named metric families, rendered as Prometheus text
/// exposition.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&'static str, &str)],
        instrument: Instrument,
    ) {
        let sample = Sample {
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
            instrument,
        };
        let mut families = self.families.lock().expect("registry poisoned");
        if let Some(f) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                f.kind == kind,
                "metric {name} re-registered as another kind"
            );
            f.samples.push(sample);
        } else {
            families.push(Family {
                name,
                help,
                kind,
                samples: vec![sample],
            });
        }
    }

    /// Register and return an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        let c = Counter::new();
        self.register(
            name,
            help,
            Kind::Counter,
            &[],
            Instrument::Counter(c.clone()),
        );
        c
    }

    /// Register and return a labeled counter. Repeated calls with the
    /// same `name` add samples to the same family (the kind must match).
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        let c = Counter::new();
        self.register(
            name,
            help,
            Kind::Counter,
            labels,
            Instrument::Counter(c.clone()),
        );
        c
    }

    /// Register and return an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let g = Gauge::new();
        self.register(name, help, Kind::Gauge, &[], Instrument::Gauge(g.clone()));
        g
    }

    /// Register and return a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        let g = Gauge::new();
        self.register(
            name,
            help,
            Kind::Gauge,
            labels,
            Instrument::Gauge(g.clone()),
        );
        g
    }

    /// Register and return an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        let h = Histogram::new();
        self.register(
            name,
            help,
            Kind::Histogram,
            &[],
            Instrument::Histogram(h.clone()),
        );
        h
    }

    /// Register and return a labeled histogram (one bucket set per
    /// label combination, all sharing [`BUCKET_BOUNDS`]).
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        let h = Histogram::new();
        self.register(
            name,
            help,
            Kind::Histogram,
            labels,
            Instrument::Histogram(h.clone()),
        );
        h
    }

    /// Render Prometheus text exposition (format version 0.0.4).
    ///
    /// # Exposition contract
    ///
    /// The output is **byte-stable for a fixed set of values**:
    ///
    /// * families (registered and `extra` alike) appear sorted by
    ///   metric name, each as `# HELP`, `# TYPE`, then its samples;
    /// * within a family, samples appear in registration order, with
    ///   label pairs in the order given at registration;
    /// * histograms render cumulative `<name>_bucket{...,le="..."}`
    ///   lines in [`BUCKET_LABELS`] order (ending `le="+Inf"`), then
    ///   `<name>_sum` and `<name>_count`; the `+Inf` bucket always
    ///   equals `_count`;
    /// * every value is an unsigned decimal integer (durations are
    ///   microseconds — see the `_us` suffix on time-valued metrics);
    /// * label values escape `\`, `"`, and newline per the Prometheus
    ///   text format; the output ends with a trailing newline.
    pub fn render(&self, extra: &[AdHoc]) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut blocks: Vec<(&str, String)> = Vec::with_capacity(families.len() + extra.len());
        for f in families.iter() {
            let mut out = String::new();
            header(&mut out, f.name, f.help, f.kind);
            for s in &f.samples {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        sample_line(&mut out, f.name, &s.labels, None, c.get());
                    }
                    Instrument::Gauge(g) => {
                        sample_line(&mut out, f.name, &s.labels, None, g.get());
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        let bucket_name = format!("{}_bucket", f.name);
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            cum += n;
                            sample_line(
                                &mut out,
                                &bucket_name,
                                &s.labels,
                                Some(BUCKET_LABELS[i]),
                                cum,
                            );
                        }
                        sample_line(
                            &mut out,
                            &format!("{}_sum", f.name),
                            &s.labels,
                            None,
                            snap.sum,
                        );
                        sample_line(
                            &mut out,
                            &format!("{}_count", f.name),
                            &s.labels,
                            None,
                            snap.count,
                        );
                    }
                }
            }
            blocks.push((f.name, out));
        }
        for a in extra {
            let mut out = String::new();
            header(&mut out, a.name, a.help, a.kind);
            sample_line(&mut out, a.name, &a.labels, None, a.value);
            blocks.push((a.name, out));
        }
        blocks.sort_by(|a, b| a.0.cmp(b.0));
        blocks.into_iter().map(|(_, b)| b).collect()
    }
}

fn header(out: &mut String, name: &str, help: &str, kind: Kind) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind.as_str());
    out.push('\n');
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    le: Option<&str>,
    value: u64,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(out, v);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn escape_label(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_ladder_inclusively() {
        let h = Histogram::new();
        h.observe_micros(0);
        h.observe_micros(1); // inclusive upper bound: still bucket 0
        h.observe_micros(2);
        h.observe_micros(3); // first value above 2 lands in the 5 bucket
        h.observe_micros(u64::MAX); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[BUCKETS - 1], 1);
        assert_eq!(snap.count, 5);
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe_micros(15); // (10, 20] bucket
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 20.0, "p50 = {p50}");
        assert_eq!(h.quantile(0.0), h.snapshot().quantile(0.0));
        assert_eq!(Histogram::new().quantile(0.99), 0.0);
    }

    #[test]
    fn labeled_families_group_and_reject_kind_changes() {
        let r = Registry::new();
        let a = r.counter_with("x_total", "help", &[("phase", "parse")]);
        let b = r.counter_with("x_total", "help", &[("phase", "write")]);
        a.inc();
        b.add(2);
        let text = r.render(&[]);
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
        assert!(text.contains("x_total{phase=\"parse\"} 1\n"));
        assert!(text.contains("x_total{phase=\"write\"} 2\n"));
    }
}
