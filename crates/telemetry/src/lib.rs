#![warn(missing_docs)]

//! Std-only observability primitives shared by the whole workspace.
//!
//! Three independent pieces, composable but separately usable:
//!
//! * [`metrics`] — a lock-cheap registry of monotonic [`Counter`]s,
//!   [`Gauge`]s, and log-linear latency [`Histogram`]s, rendered as
//!   Prometheus text exposition with byte-stable ordering (the contract
//!   is documented on [`Registry::render`]).
//! * [`trace`] — per-request [`RequestTrace`]s: a process-unique request
//!   id plus accumulated `(phase, micros)` spans. A trace is *installed*
//!   on the current thread; [`PhaseSpan`] RAII guards then attribute
//!   elapsed time to named phases from anywhere below in the call stack
//!   (simulator passes, cache lookups) without plumbing a context
//!   through every signature. When no trace is installed the guards are
//!   no-ops.
//! * [`log`] — a leveled structured logger (text or JSON lines on
//!   stderr) behind a process-global configuration, replacing ad-hoc
//!   `eprintln!` in the binaries.
//!
//! Everything here is dependency-free on purpose: this crate sits below
//! `gpa-sim` in the workspace graph so even the simulators can annotate
//! phases.

pub mod log;
pub mod metrics;
pub mod trace;

pub use metrics::{AdHoc, Counter, Gauge, Histogram, HistogramSnapshot, Kind, Registry};
pub use trace::{PhaseSpan, RequestTrace};

/// Canonical phase names used across the serving stack.
///
/// The server pre-registers one latency histogram per phase so that the
/// `/v1/metrics` label set is identical across io models and independent
/// of traffic. Spans recorded under any other name are still carried in
/// the trace (and the access log) but get no histogram.
pub mod phase {
    /// Reading + parsing the request head and body off the socket.
    pub const PARSE: &str = "parse";
    /// Time spent queued between the acceptor/reactor and a worker.
    pub const QUEUE: &str = "queue";
    /// Total time inside the application handler.
    pub const HANDLE: &str = "handle";
    /// Serializing the response bytes onto the socket.
    pub const WRITE: &str = "write";
    /// Report-cache key derivation + lookup inside `Analyzer::analyze`.
    pub const CACHE_LOOKUP: &str = "cache_lookup";
    /// Fetching the calibrated machine entry (curves + identity).
    pub const CALIBRATION_FETCH: &str = "calibration_fetch";
    /// Building/validating a custom kernel from its wire spec.
    pub const BUILD: &str = "build";
    /// The functional simulation pass (all blocks, side effects).
    pub const FUNCTIONAL_SIM: &str = "functional_sim";
    /// The timing replay pass over collected traces.
    pub const TIMING_REPLAY: &str = "timing_replay";
    /// Evaluating `what_if` scenario re-analyses.
    pub const WHAT_IFS: &str = "what_ifs";
    /// Rendering the analysis report to response JSON.
    pub const SERIALIZE: &str = "serialize";

    /// Every phase above, in the fixed exposition order.
    pub const ALL: [&str; 11] = [
        PARSE,
        QUEUE,
        HANDLE,
        WRITE,
        CACHE_LOOKUP,
        CALIBRATION_FETCH,
        BUILD,
        FUNCTIONAL_SIM,
        TIMING_REPLAY,
        WHAT_IFS,
        SERIALIZE,
    ];
}
