//! Leveled structured logging to stderr, in text or JSON lines.
//!
//! One process-global configuration (level, format, optional capture
//! sink for tests) guards every emission; binaries call [`init`] once
//! after flag parsing and then log through the level functions. Each
//! line carries a wall-clock RFC 3339 timestamp, the level, a `target`
//! (component name), a message, and zero or more typed key/value
//! fields:
//!
//! ```text
//! 2026-08-08T12:00:00Z INFO gpa-serve listening workers=4
//! {"ts":"2026-08-08T12:00:00Z","level":"info","target":"gpa-serve","msg":"listening","workers":4}
//! ```

use std::sync::{Arc, Mutex, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error,
    /// Degraded behaviour worth operator attention (slow requests).
    Warn,
    /// Normal operational events (startup, access log).
    Info,
    /// Verbose diagnostics (`-v`).
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn json_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Output encoding for log lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented single-line text.
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parse the `--log-format` flag value (`text` | `json`).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// A typed field value; strings are quoted/escaped, numbers are bare.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Text value.
    Str(String),
    /// Unsigned integer value.
    U64(u64),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u16> for FieldValue {
    fn from(v: u16) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

struct Config {
    level: Level,
    format: LogFormat,
    capture: Option<Arc<Mutex<Vec<String>>>>,
}

static CONFIG: RwLock<Config> = RwLock::new(Config {
    level: Level::Info,
    format: LogFormat::Text,
    capture: None,
});

/// Set the process-global level and format. Callable repeatedly; the
/// latest call wins.
pub fn init(level: Level, format: LogFormat) {
    let mut cfg = CONFIG.write().expect("logger poisoned");
    cfg.level = level;
    cfg.format = format;
}

/// Redirect rendered lines into `buf` instead of stderr (tests), or
/// restore stderr with `None`.
pub fn set_capture(buf: Option<Arc<Mutex<Vec<String>>>>) {
    CONFIG.write().expect("logger poisoned").capture = buf;
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    level <= CONFIG.read().expect("logger poisoned").level
}

/// Emit at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, msg, fields);
}

/// Emit at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// Emit at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, msg, fields);
}

/// Emit at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Debug, target, msg, fields);
}

/// Emit one structured line at `level` if the level is enabled.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let cfg = CONFIG.read().expect("logger poisoned");
    if level > cfg.level {
        return;
    }
    let ts = rfc3339_now();
    let line = match cfg.format {
        LogFormat::Text => render_text(&ts, level, target, msg, fields),
        LogFormat::Json => render_json(&ts, level, target, msg, fields),
    };
    match &cfg.capture {
        Some(buf) => buf.lock().expect("capture poisoned").push(line),
        None => eprintln!("{line}"),
    }
}

fn render_text(
    ts: &str,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = format!("{ts} {} {target} {msg}", level.as_str());
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::Str(s) if !s.is_empty() && !s.contains([' ', '"', '=']) => {
                out.push_str(s);
            }
            FieldValue::Str(s) => {
                out.push('"');
                json_escape(&mut out, s);
                out.push('"');
            }
        }
    }
    out
}

fn render_json(
    ts: &str,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"ts\":\"");
    out.push_str(ts);
    out.push_str("\",\"level\":\"");
    out.push_str(level.json_str());
    out.push_str("\",\"target\":\"");
    json_escape(&mut out, target);
    out.push_str("\",\"msg\":\"");
    json_escape(&mut out, msg);
    out.push('"');
    for (k, v) in fields {
        out.push_str(",\"");
        json_escape(&mut out, k);
        out.push_str("\":");
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::Str(s) => {
                out.push('"');
                json_escape(&mut out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

fn json_escape(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn rfc3339_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    rfc3339(secs)
}

/// Format seconds-since-epoch as `YYYY-MM-DDTHH:MM:SSZ` (UTC).
fn rfc3339(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    // Howard Hinnant's civil_from_days, shifted to the Unix epoch.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        tod / 3_600,
        (tod / 60) % 60,
        tod % 60,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3339_matches_known_dates() {
        assert_eq!(rfc3339(0), "1970-01-01T00:00:00Z");
        assert_eq!(rfc3339(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(rfc3339(1_754_611_200), "2025-08-08T00:00:00Z");
    }

    #[test]
    fn json_lines_escape_and_type_fields() {
        let line = render_json(
            "1970-01-01T00:00:00Z",
            Level::Warn,
            "t",
            "a \"b\"",
            &[("n", FieldValue::U64(7)), ("s", FieldValue::from("x\ny"))],
        );
        assert_eq!(
            line,
            "{\"ts\":\"1970-01-01T00:00:00Z\",\"level\":\"warn\",\"target\":\"t\",\
             \"msg\":\"a \\\"b\\\"\",\"n\":7,\"s\":\"x\\ny\"}"
        );
    }

    #[test]
    fn text_lines_quote_only_awkward_strings() {
        let line = render_text(
            "1970-01-01T00:00:00Z",
            Level::Info,
            "t",
            "m",
            &[
                ("plain", FieldValue::from("abc")),
                ("spaced", FieldValue::from("a b")),
            ],
        );
        assert_eq!(
            line,
            "1970-01-01T00:00:00Z INFO t m plain=abc spaced=\"a b\""
        );
    }
}
