//! Per-request trace spans.
//!
//! A [`RequestTrace`] is created when a request is parsed, carried by
//! the serving engine, and *installed* on whichever thread runs the
//! handler. While installed, [`PhaseSpan`] guards — dropped anywhere
//! below in the call stack — accumulate `(phase, micros)` pairs onto
//! it. When nothing is installed the guards cost two `Instant` reads
//! and a thread-local check, so instrumented library code (the
//! simulators, the report cache) pays nothing outside the serving path.
//!
//! One deliberate gap: work handed to *other* threads (e.g. batch
//! sub-requests sharded across scoped workers) runs without the trace
//! installed, so its inner phases are not attributed — the enclosing
//! span on the installing thread still captures the wall-clock total.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique request id: the process id and a monotonic
/// sequence number, both lowercase hex, joined by `-`.
pub fn next_request_id() -> String {
    format!(
        "{:x}-{:x}",
        std::process::id(),
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    )
}

/// Accumulated per-request span timings plus identity.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    id: String,
    phases: Vec<(&'static str, u64)>,
    cache: Option<bool>,
}

impl Default for RequestTrace {
    fn default() -> RequestTrace {
        RequestTrace::new()
    }
}

impl RequestTrace {
    /// A fresh trace with a [`next_request_id`] identity.
    pub fn new() -> RequestTrace {
        RequestTrace {
            id: next_request_id(),
            phases: Vec::with_capacity(8),
            cache: None,
        }
    }

    /// The request id echoed in `X-Request-Id`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Attribute `micros` to `phase`; repeated records under the same
    /// phase accumulate.
    pub fn record(&mut self, phase: &'static str, micros: u64) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.0 == phase) {
            p.1 += micros;
        } else {
            self.phases.push((phase, micros));
        }
    }

    /// Recorded `(phase, micros)` pairs, in first-recorded order.
    pub fn phases(&self) -> &[(&'static str, u64)] {
        &self.phases
    }

    /// Mark whether the report cache answered this request.
    pub fn set_cache_hit(&mut self, hit: bool) {
        self.cache = Some(hit);
    }

    /// `Some(true)` on a report-cache hit, `Some(false)` on a miss,
    /// `None` when the cache was not consulted.
    pub fn cache_hit(&self) -> Option<bool> {
        self.cache
    }

    /// `Server-Timing` header value: `phase;dur=<ms>` entries (fractional
    /// milliseconds, per the header's convention) in recorded order.
    pub fn server_timing(&self) -> String {
        let mut out = String::new();
        for (i, (phase, us)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{phase};dur={}.{:03}", us / 1000, us % 1000);
        }
        out
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<RequestTrace>> = const { RefCell::new(None) };
}

/// Install `trace` on the current thread, returning any displaced one.
pub fn install(trace: RequestTrace) -> Option<RequestTrace> {
    ACTIVE.with(|a| a.borrow_mut().replace(trace))
}

/// Remove and return the current thread's installed trace.
pub fn take() -> Option<RequestTrace> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Record onto the installed trace, if any.
pub fn record(phase: &'static str, micros: u64) {
    ACTIVE.with(|a| {
        if let Some(trace) = a.borrow_mut().as_mut() {
            trace.record(phase, micros);
        }
    });
}

/// Mark the installed trace (if any) as a report-cache hit or miss.
pub fn set_cache_hit(hit: bool) {
    ACTIVE.with(|a| {
        if let Some(trace) = a.borrow_mut().as_mut() {
            trace.set_cache_hit(hit);
        }
    });
}

/// RAII guard attributing its lifetime to `phase` on the installed
/// trace. A no-op (beyond reading the clock) when no trace is installed
/// at drop time.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
#[derive(Debug)]
pub struct PhaseSpan {
    phase: &'static str,
    start: Instant,
}

impl PhaseSpan {
    /// Start timing `phase` now.
    pub fn start(phase: &'static str) -> PhaseSpan {
        PhaseSpan {
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        record(self.phase, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_prefixed_by_pid() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        let pid = format!("{:x}-", std::process::id());
        assert!(a.starts_with(&pid) && b.starts_with(&pid));
    }

    #[test]
    fn spans_accumulate_only_while_installed() {
        drop(PhaseSpan::start("orphan")); // no trace installed: no-op
        assert!(take().is_none());

        install(RequestTrace::new());
        drop(PhaseSpan::start("a"));
        record("a", 5);
        set_cache_hit(true);
        let trace = take().expect("installed");
        let a = trace
            .phases()
            .iter()
            .find(|p| p.0 == "a")
            .expect("recorded");
        assert!(a.1 >= 5);
        assert_eq!(trace.cache_hit(), Some(true));
        assert!(!trace.phases().iter().any(|p| p.0 == "orphan"));
    }

    #[test]
    fn server_timing_formats_fractional_millis() {
        let mut t = RequestTrace::new();
        t.record("parse", 1_234);
        t.record("handle", 42);
        assert_eq!(t.server_timing(), "parse;dur=1.234, handle;dur=0.042");
    }
}
