//! Property tests for the histogram (bucket placement, merge,
//! quantiles) and a golden test pinning the exposition format bytes.

use gpa_telemetry::metrics::{BUCKETS, BUCKET_BOUNDS};
use gpa_telemetry::{AdHoc, Histogram, Registry};
use proptest::collection;
use proptest::prelude::*;

fn expected_bucket(us: u64) -> usize {
    BUCKET_BOUNDS
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(BUCKETS - 1)
}

proptest! {
    #[test]
    fn bucket_counts_sum_to_count_and_match_bounds(
        values in collection::vec(0u64..200_000_000, 0..200),
    ) {
        let h = Histogram::new();
        let mut expected = [0u64; BUCKETS];
        let mut sum = 0u64;
        for &v in &values {
            h.observe_micros(v);
            expected[expected_bucket(v)] += 1;
            sum += v;
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.buckets, expected);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, sum);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn merge_is_exactly_observing_everything_on_one_histogram(
        a in collection::vec(0u64..200_000_000, 0..100),
        b in collection::vec(0u64..200_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let combined = Histogram::new();
        for &v in &a {
            ha.observe_micros(v);
            combined.observe_micros(v);
        }
        for &v in &b {
            hb.observe_micros(v);
            combined.observe_micros(v);
        }
        ha.merge(&hb);
        let merged = ha.snapshot();
        let oracle = combined.snapshot();
        prop_assert_eq!(merged.buckets, oracle.buckets);
        prop_assert_eq!(merged.sum, oracle.sum);
        prop_assert_eq!(merged.count, oracle.count);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_data(
        values in collection::vec(1u64..100_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe_micros(v);
        }
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        prop_assert!(p50 <= p90 && p90 <= p99, "p50={p50} p90={p90} p99={p99}");
        // Each estimate stays within the bucket bounds that bracket the
        // true min/max of the data.
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let lo_bucket = expected_bucket(lo);
        let floor = if lo_bucket == 0 { 0 } else { BUCKET_BOUNDS[lo_bucket - 1] };
        let ceil = BUCKET_BOUNDS[expected_bucket(hi).min(BUCKET_BOUNDS.len() - 1)];
        for q in [p50, p90, p99] {
            prop_assert!(q >= floor as f64 && q <= ceil as f64,
                "quantile {q} outside [{floor}, {ceil}]");
        }
    }
}

#[test]
fn exposition_golden() {
    let registry = Registry::new();
    let requests = registry.counter("t_requests_total", "Requests answered.");
    let h = registry.histogram_with("t_phase_us", "Phase latency.", &[("phase", "parse")]);
    registry
        .gauge_with("t_build_info", "Build metadata.", &[("version", "1.0")])
        .set(1);
    requests.add(3);
    h.observe_micros(1); // le="1"
    h.observe_micros(7); // le="10"
    h.observe_micros(200_000_000); // +Inf

    let extra = [AdHoc::gauge("t_uptime_seconds", "Process uptime.", 42)];
    let text = registry.render(&extra);

    let expected = "\
# HELP t_build_info Build metadata.
# TYPE t_build_info gauge
t_build_info{version=\"1.0\"} 1
# HELP t_phase_us Phase latency.
# TYPE t_phase_us histogram
t_phase_us_bucket{phase=\"parse\",le=\"1\"} 1
t_phase_us_bucket{phase=\"parse\",le=\"2\"} 1
t_phase_us_bucket{phase=\"parse\",le=\"5\"} 1
t_phase_us_bucket{phase=\"parse\",le=\"10\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"20\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"50\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"100\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"200\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"500\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"1000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"2000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"5000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"10000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"20000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"50000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"100000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"200000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"500000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"1000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"2000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"5000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"10000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"20000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"50000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"100000000\"} 2
t_phase_us_bucket{phase=\"parse\",le=\"+Inf\"} 3
t_phase_us_sum{phase=\"parse\"} 200000008
t_phase_us_count{phase=\"parse\"} 3
# HELP t_requests_total Requests answered.
# TYPE t_requests_total counter
t_requests_total 3
# HELP t_uptime_seconds Process uptime.
# TYPE t_uptime_seconds gauge
t_uptime_seconds 42
";
    assert_eq!(text, expected);
}

#[test]
fn rendering_twice_is_byte_identical() {
    let registry = Registry::new();
    let h = registry.histogram("t_dur_us", "Duration.");
    h.observe_micros(33);
    let a = registry.render(&[]);
    let b = registry.render(&[]);
    assert_eq!(a, b);
}
