#![warn(missing_docs)]

//! Tiny JSON tree, parser, and pretty-printer for the `gpa` workspace.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the only
//! serialization the workspace needs is caching measured throughput curves
//! on disk (`gpa_ubench::ThroughputCurves`). This crate supplies exactly
//! that: a [`Value`] tree, a strict recursive-descent [`Value::parse`], and
//! a [`Value::to_string_pretty`] writer whose `f64` formatting uses Rust's
//! shortest-round-trip `Display`, so `parse(write(v)) == v` exactly for
//! finite numbers.
//!
//! ```
//! use gpa_json::Value;
//!
//! let v = Value::Object(vec![
//!     ("name".into(), Value::String("gtx285".into())),
//!     ("xs".into(), Value::Array(vec![Value::from(1.5), Value::from(2.0)])),
//! ]);
//! let text = v.to_string_pretty();
//! assert_eq!(Value::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Parse or access failure, with a human-readable message and, for parse
/// errors, the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    /// An error with no position (schema/access errors).
    pub fn msg(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Error {
        Error {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl Value {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::at("trailing characters after document", p.pos));
        }
        Ok(v)
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Object field lookup; `Err` if `self` is not an object or lacks `key`.
    pub fn get(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
            _ => Err(Error::msg(format!("expected object with field `{key}`"))),
        }
    }

    /// The number value; `Err` for any other variant.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Number(x) => Ok(*x),
            other => Err(Error::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The number value as an exact `u32`; `Err` on loss or other variants.
    pub fn as_u32(&self) -> Result<u32, Error> {
        let x = self.as_f64()?;
        let n = x as u32;
        if f64::from(n) != x {
            return Err(Error::msg(format!("expected u32, found {x}")));
        }
        Ok(n)
    }

    /// The number value as an exact `u64`; `Err` on loss or other
    /// variants. Counters above 2⁵³ do not survive the `f64` wire
    /// representation, so writers must keep integral fields below that
    /// (every counter in this workspace is).
    pub fn as_u64(&self) -> Result<u64, Error> {
        let x = self.as_f64()?;
        if !(0.0..=9_007_199_254_740_992.0).contains(&x) {
            return Err(Error::msg(format!("expected u64 within 2^53, found {x}")));
        }
        let n = x as u64;
        if n as f64 != x {
            return Err(Error::msg(format!("expected u64, found {x}")));
        }
        Ok(n)
    }

    /// The boolean value; `Err` for any other variant.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }

    /// The string value; `Err` for any other variant.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The array items; `Err` for any other variant.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The array items parsed as `f64`s.
    pub fn as_f64_array(&self) -> Result<Vec<f64>, Error> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-round-trip Display: parses back to the same bits.
        out.push_str(&x.to_string());
    } else {
        // JSON has no non-finite literals; null round-trips to an error on
        // read, which is the honest outcome for a corrupted measurement.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth before the parser bails out with an error rather
/// than risking a stack overflow on adversarial input (serde_json guards
/// the same way; its default is also 128).
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::at("invalid literal", self.pos))
                }
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::at(
                format!("unexpected byte `{}`", b as char),
                self.pos,
            )),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::at(
                format!("nesting deeper than {MAX_DEPTH} levels"),
                self.pos,
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::at("truncated \\u escape", start))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::at("invalid \\u escape", start))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("invalid \\u escape", start))?;
                            // Lone surrogates are rejected; pairs unsupported
                            // (never produced by our writer).
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::at("invalid \\u code point", start))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::at("invalid escape", start)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\\nthere\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(v.to_string_pretty().trim()).unwrap(), v);
        }
    }

    #[test]
    fn f64_round_trip_is_exact() {
        let xs = [
            1.0 / 3.0,
            9.87e9,
            f64::MIN_POSITIVE,
            1.48e9 * 8.0 * 30.0 / 32.0,
            -0.1 + 0.3,
        ];
        let v = Value::Array(xs.iter().copied().map(Value::from).collect());
        let back = Value::parse(&v.to_string_pretty()).unwrap();
        let ys = back.as_f64_array().unwrap();
        assert_eq!(xs.len(), ys.len());
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::from("gtx 285 \"quoted\"")),
            (
                "warps".into(),
                Value::Array(vec![Value::from(1.0), Value::from(32.0)]),
            ),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        assert_eq!(Value::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn access_helpers() {
        let v = Value::parse(r#"{"a": 3, "s": "x", "xs": [1, 2]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u32().unwrap(), 3);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.get("xs").unwrap().as_f64_array().unwrap(), vec![1.0, 2.0]);
        assert!(v.get("missing").is_err());
        assert!(v.get("s").unwrap().as_u32().is_err());
        assert!(Value::parse("{\"a\": 1.5}")
            .unwrap()
            .get("a")
            .unwrap()
            .as_u32()
            .is_err());
    }

    #[test]
    fn u64_and_bool_helpers() {
        let v = Value::parse(r#"{"n": 9007199254740992, "b": true, "x": 1.5, "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64().unwrap(), 1 << 53);
        assert!(v.get("b").unwrap().as_bool().unwrap());
        assert!(v.get("x").unwrap().as_u64().is_err());
        assert!(v.get("neg").unwrap().as_u64().is_err());
        assert!(v.get("n").unwrap().as_bool().is_err());
        // Above 2^53 integers lose exactness in f64; the range check
        // rejects them even when the rounded value happens to be integral.
        assert!(Value::Number(1.8446744073709552e19).as_u64().is_err());
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7u32), Value::Number(7.0));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // At the limit boundary: 128 levels parse, 129 do not.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(Value::parse(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        assert!(Value::parse(&too_deep).is_err());
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = Value::parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
    }
}
