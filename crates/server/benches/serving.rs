//! Criterion benchmarks of the serving hot path: HTTP parsing in
//! isolation, full loopback round trips (connect → parse → dispatch →
//! serialize → close) against a running server, and dispatch latency
//! through a crowd of parked keep-alive connections under each I/O
//! model — the scenario the reactor engine exists for.
//!
//! As everywhere in the workspace, `GPA_BENCH_SAMPLES=<n>` overrides the
//! sample counts (CI smokes these with `GPA_BENCH_SAMPLES=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_hw::Machine;
use gpa_server::api::AnalyzeApi;
use gpa_server::client::Client;
use gpa_server::http;
use gpa_server::server::{IoModel, Server, ServerConfig};
use gpa_service::{AnalysisRequest, Analyzer, KernelSpec, ReportCacheConfig};
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::hint::black_box;
use std::io::BufReader;
use std::sync::Arc;

const ANALYZE_BODY: &str = r#"{
  "kernel": {"case": "matmul", "n": 64, "tile": 16},
  "machine": "gtx285"
}"#;

/// A workload-zoo request by name: the registry constructor plus the
/// atomic-unit accounting, the serving cost of `{"case": "named"}`.
const ZOO_BODY: &str = r#"{
  "kernel": {"case": "named", "name": "histogram", "n": 1024, "seed": 1},
  "machine": "gtx285"
}"#;

fn bench_http_parse(c: &mut Criterion) {
    let mut raw = format!(
        "POST /v1/analyze HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        ANALYZE_BODY.len()
    )
    .into_bytes();
    raw.extend_from_slice(ANALYZE_BODY.as_bytes());
    c.bench_function("serve/http_parse", |b| {
        b.iter(|| {
            http::read_request(
                &mut BufReader::new(black_box(&raw[..])),
                http::DEFAULT_MAX_BODY_BYTES,
            )
            .unwrap()
        })
    });
}

fn bench_loopback(c: &mut Criterion) {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(AnalyzeApi::new(Arc::new(analyzer))),
    )
    .expect("bind loopback");
    let client = Client::new(server.local_addr().to_string());

    // Parse + dispatch + serialize with no analysis work: the transport
    // floor a keep-alive or async implementation has to beat.
    c.bench_function("serve/healthz_roundtrip", |b| {
        b.iter(|| {
            let resp = client.get("/healthz").unwrap();
            assert_eq!(resp.status, 200);
            resp
        })
    });

    // The same probe over one persistent connection: what connection
    // reuse saves relative to connect-per-request above.
    c.bench_function("serve/healthz_keepalive_roundtrip", |b| {
        let mut conn = client.connect().expect("keep-alive connect");
        b.iter(|| {
            // The server closes after its per-connection request cap;
            // reconnect transparently so the bench measures steady-state
            // reuse, not the cap policy.
            let resp = match conn.get("/healthz") {
                Ok(resp) => resp,
                Err(_) => {
                    conn = client.connect().expect("keep-alive reconnect");
                    conn.get("/healthz").unwrap()
                }
            };
            assert_eq!(resp.status, 200);
            resp
        })
    });

    // The full serving path including one matmul analysis.
    c.bench_function("serve/analyze_roundtrip", |b| {
        b.iter(|| {
            let resp = client.post_json("/v1/analyze", ANALYZE_BODY).unwrap();
            assert_eq!(resp.status, 200);
            resp
        })
    });

    // A named zoo workload through the same path: the contended
    // histogram exercises the registry constructor, the shared-memory
    // atomic replay, and the atomic-unit component end to end.
    c.bench_function("zoo/analyze_histogram", |b| {
        b.iter(|| {
            let resp = client.post_json("/v1/analyze", ZOO_BODY).unwrap();
            assert_eq!(resp.status, 200);
            resp
        })
    });

    server.shutdown();
}

/// One keep-alive `healthz` round trip while 32 idle keep-alive
/// connections sit parked on the server, under each I/O model.
///
/// The two engines pay for the parked crowd in different currencies:
/// the threaded model must be provisioned with a worker **per parked
/// connection** (each one blocks a thread in `read`), so its server
/// gets `PARKED + 2` workers; the reactor holds them all in one poll
/// set and serves the probe with 2 workers. The tracked numbers keep
/// the *latency* of threading a request through the crowd comparable —
/// a reactor dispatch regression shows up as `idle_burst_reactor`
/// drifting away from `idle_burst_threads`.
fn bench_idle_burst(c: &mut Criterion) {
    const PARKED: usize = 32;
    let mut models = vec![("serve/idle_burst_threads", IoModel::Threads, PARKED + 2)];
    if cfg!(unix) {
        models.push(("serve/idle_burst_reactor", IoModel::Reactor, 2));
    }
    for (name, io, workers) in models {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                io_model: io,
                workers,
                // Far past the bench duration: the crowd stays parked.
                keep_alive_idle: std::time::Duration::from_secs(300),
                keep_alive_requests: usize::MAX,
                max_connections: 4096,
                ..ServerConfig::default()
            },
            Arc::new(AnalyzeApi::new(Arc::new(Analyzer::new()))),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        // Park the crowd: serve one request per connection, keep it open.
        let mut crowd = Vec::with_capacity(PARKED);
        for _ in 0..PARKED {
            let mut conn = client.connect().expect("park connect");
            assert_eq!(conn.get("/healthz").expect("park request").status, 200);
            crowd.push(conn);
        }

        let mut probe = client.connect().expect("probe connect");
        c.bench_function(name, |b| {
            b.iter(|| {
                let resp = probe.get("/healthz").unwrap();
                assert_eq!(resp.status, 200);
                resp
            })
        });

        // Close the crowd before shutdown so threaded workers parked in
        // blocking reads see EOF now rather than an idle timeout later.
        drop(probe);
        drop(crowd);
        server.shutdown();
    }
}

fn bench_report_cache(c: &mut Criterion) {
    // One measurement, two analyzers over identical curves: the first
    // simulates every request, the second answers from the report
    // cache. The gap between `cache/analyze_simulate` and
    // `cache/analyze_hit` is the tentpole claim — hits are expected to
    // run ≥100× faster than the simulation they memoize.
    let machine = Machine::gtx285();
    let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
    let req = AnalysisRequest::new(KernelSpec::Matmul { n: 256, tile: 16 }, "gtx285");

    let mut uncached = Analyzer::new();
    uncached.install(machine.clone(), curves.clone()).unwrap();
    c.bench_function("cache/analyze_simulate", |b| {
        b.iter(|| uncached.analyze(black_box(&req)).unwrap())
    });

    let mut cached = Analyzer::new();
    cached.install(machine, curves).unwrap();
    cached.enable_report_cache(ReportCacheConfig::default());
    cached.analyze(&req).unwrap(); // warm: every timed iteration hits
    c.bench_function("cache/analyze_hit", |b| {
        b.iter(|| cached.analyze(black_box(&req)).unwrap())
    });

    // The same hit through the full HTTP path: what repeat traffic
    // costs a served deployment.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(AnalyzeApi::new(Arc::new(cached))),
    )
    .expect("bind loopback");
    let client = Client::new(server.local_addr().to_string());
    let body = req.to_json();
    c.bench_function("cache/hit_roundtrip", |b| {
        b.iter(|| {
            let resp = client.post_json("/v1/analyze", &body).unwrap();
            assert_eq!(resp.status, 200);
            resp
        })
    });
    server.shutdown();
}

criterion_group!(
    name = serving;
    config = Criterion::default().sample_size(10);
    targets = bench_http_parse, bench_loopback, bench_idle_burst, bench_report_cache
);
criterion_main!(serving);
