//! `gpa-http`: a curl stand-in over the built-in blocking client, so
//! CI and shell scripts can drive `gpa-serve` with no external tools.
//!
//! ```text
//! gpa-http get  http://127.0.0.1:7070/healthz
//! gpa-http post http://127.0.0.1:7070/v1/analyze request.json
//! gpa-http post http://127.0.0.1:7070/v1/analyze - < request.json
//! ```
//!
//! The response body goes to stdout, the status line to stderr; the
//! exit code is 0 for 2xx, 1 for any other status, 2 for usage or
//! transport errors.

use gpa_server::client::{split_url, Client};
use gpa_telemetry::log::{self, Level, LogFormat};
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
usage: gpa-http [-q | -v] [--log-format FMT] get URL
       gpa-http [-q | -v] [--log-format FMT] post URL [BODY.json | -]

URL is http://host:port/path. POST bodies come from the file argument,
or stdin with `-` (or no argument). `-q` silences the status line on
stderr; `--log-format json` emits it as a structured record.";

fn run() -> Result<u16, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(200);
    }
    let mut level = Level::Info;
    let mut format = LogFormat::Text;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-q" | "--quiet" => {
                level = Level::Warn;
                args.remove(i);
            }
            "-v" | "--verbose" => {
                level = Level::Debug;
                args.remove(i);
            }
            "--log-format" => {
                args.remove(i);
                let spec = if i < args.len() {
                    args.remove(i)
                } else {
                    return Err("--log-format requires a value".into());
                };
                format = LogFormat::parse(&spec)
                    .ok_or_else(|| format!("unknown log format `{spec}` (text | json)"))?;
            }
            _ => i += 1,
        }
    }
    log::init(level, format);
    let (verb, url, body_arg) = match args.as_slice() {
        [verb, url] => (verb.as_str(), url, None),
        [verb, url, body] => (verb.as_str(), url, Some(body.as_str())),
        _ => return Err(USAGE.to_owned()),
    };
    let (addr, path) = split_url(url)?;
    let client = Client::new(addr);
    let response = match verb {
        "get" => {
            if body_arg.is_some() {
                return Err("get takes no body".into());
            }
            client.get(&path)
        }
        "post" => {
            let body = match body_arg {
                None | Some("-") => {
                    let mut text = String::new();
                    std::io::stdin()
                        .read_to_string(&mut text)
                        .map_err(|e| format!("cannot read stdin: {e}"))?;
                    text
                }
                Some(file) => {
                    std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
                }
            };
            client.post_json(&path, &body)
        }
        other => return Err(format!("unknown verb `{other}`\n{USAGE}")),
    }
    .map_err(|e| format!("{url}: {e}"))?;

    log::info(
        "http",
        "response",
        &[
            ("status", response.status.into()),
            (
                "reason",
                gpa_server::http::status_reason(response.status).into(),
            ),
        ],
    );
    // Swallow EPIPE so `gpa-http ... | head` exits quietly.
    let _ = std::io::stdout().write_all(&response.body);
    Ok(response.status)
}

fn main() -> ExitCode {
    match run() {
        Ok(status) if (200..300).contains(&status) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("gpa-http: {e}");
            ExitCode::from(2)
        }
    }
}
