//! `gpa-http`: a curl stand-in over the built-in blocking client, so
//! CI and shell scripts can drive `gpa-serve` with no external tools.
//!
//! ```text
//! gpa-http get  http://127.0.0.1:7070/healthz
//! gpa-http post http://127.0.0.1:7070/v1/analyze request.json
//! gpa-http post http://127.0.0.1:7070/v1/analyze - < request.json
//! ```
//!
//! The response body goes to stdout, the status line to stderr; the
//! exit code is 0 for 2xx, 1 for any other status, 2 for usage or
//! transport errors.

use gpa_server::client::{split_url, Client};
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
usage: gpa-http get URL
       gpa-http post URL [BODY.json | -]

URL is http://host:port/path. POST bodies come from the file argument,
or stdin with `-` (or no argument).";

fn run() -> Result<u16, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(200);
    }
    let (verb, url, body_arg) = match args.as_slice() {
        [verb, url] => (verb.as_str(), url, None),
        [verb, url, body] => (verb.as_str(), url, Some(body.as_str())),
        _ => return Err(USAGE.to_owned()),
    };
    let (addr, path) = split_url(url)?;
    let client = Client::new(addr);
    let response = match verb {
        "get" => {
            if body_arg.is_some() {
                return Err("get takes no body".into());
            }
            client.get(&path)
        }
        "post" => {
            let body = match body_arg {
                None | Some("-") => {
                    let mut text = String::new();
                    std::io::stdin()
                        .read_to_string(&mut text)
                        .map_err(|e| format!("cannot read stdin: {e}"))?;
                    text
                }
                Some(file) => {
                    std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?
                }
            };
            client.post_json(&path, &body)
        }
        other => return Err(format!("unknown verb `{other}`\n{USAGE}")),
    }
    .map_err(|e| format!("{url}: {e}"))?;

    eprintln!(
        "gpa-http: {} {}",
        response.status,
        gpa_server::http::status_reason(response.status)
    );
    // Swallow EPIPE so `gpa-http ... | head` exits quietly.
    let _ = std::io::stdout().write_all(&response.body);
    Ok(response.status)
}

fn main() -> ExitCode {
    match run() {
        Ok(status) if (200..300).contains(&status) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("gpa-http: {e}");
            ExitCode::from(2)
        }
    }
}
