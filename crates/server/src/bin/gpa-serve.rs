//! `gpa-serve`: the analysis model as a network service.
//!
//! Calibrates the requested machines once at startup — through the
//! shared on-disk curve cache (`gpa_ubench::cache`), so a warm
//! `results/` directory (from a previous run, from `gpa-analyze`, or
//! from `gpa-bench`) makes startup instant — then serves analysis
//! requests over HTTP until killed:
//!
//! ```text
//! gpa-serve --addr 127.0.0.1:7070 --machines gtx285,8800gt --effort quick
//! gpa-http post http://127.0.0.1:7070/v1/analyze request.json
//! ```
//!
//! The first stdout line is `listening on http://<addr>` (flushed), so
//! scripts can scrape the bound address even with `--addr :0`'s
//! ephemeral port.

use gpa_server::api::AnalyzeApi;
use gpa_server::server::{IoModel, Server, ServerConfig};
use gpa_service::{find_builtin, Analyzer, Effort, ReportCacheConfig};
use gpa_telemetry::log::{self, Level, LogFormat};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: gpa-serve [options]

Serve the calibrated analysis model over HTTP (POST /v1/analyze,
GET /v1/machines, GET /healthz, GET /v1/stats).

Options:
  --addr HOST:PORT   listen address (default 127.0.0.1:7070; port 0 = ephemeral)
  --io-model MODEL   connection engine: threads | reactor (default threads);
                     reactor multiplexes every connection over poll(2) so
                     parked keep-alive clients don't pin worker threads
  --workers N        worker threads (default 0 = one per CPU core)
  --queue-depth N    pending connections beyond in-flight before 503 (default 64)
  --max-connections N
                     reactor only: open-connection ceiling before new accepts
                     get 503 (default 4096; 0 = unlimited)
  --request-deadline-ms N
                     reactor only: max queue wait before a parsed request is
                     answered 503 (default 0 = disabled)
  --machines LIST    comma-separated machine selectors to calibrate
                     (default gtx285; also: 8800gt, 9800gtx)
  --effort LEVEL     calibration effort: quick | paper (default quick)
  --cache-dir DIR    curve/report cache directory (default: shared workspace results/)
  --no-cache         always measure; do not touch the on-disk cache
  --max-body BYTES   request body ceiling (default 1048576)
  --report-cache     memoize whole answers, content-addressed (default on);
                     persisted under the cache dir unless --no-cache
  --no-report-cache  recompute every answer
  --report-cache-bytes BYTES
                     in-memory report cache budget (default 67108864)
  --slow-request-ms N
                     promote requests slower than N ms end-to-end to WARN
                     access-log lines carrying the full per-phase breakdown
  --log-format FMT   log line format: text | json (default text)
  -v, --verbose      log at DEBUG
  -q, --quiet        log at WARN (errors and slow requests only)";

struct Options {
    addr: String,
    config: ServerConfig,
    machines: Vec<String>,
    effort: Effort,
    cache_dir: Option<PathBuf>,
    report_cache: bool,
    report_cache_bytes: usize,
    log_level: Level,
    log_format: LogFormat,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7070".into(),
        config: ServerConfig::default(),
        machines: vec!["gtx285".into()],
        effort: Effort::Quick,
        cache_dir: Some(gpa_ubench::cache::default_dir()),
        report_cache: true,
        report_cache_bytes: ReportCacheConfig::default().max_bytes,
        log_level: Level::Info,
        log_format: LogFormat::Text,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i, "--addr")?,
            "--workers" => {
                opts.config.workers = value(&mut i, "--workers")?
                    .parse()
                    .map_err(|_| "--workers requires a count (0 = auto)".to_owned())?;
            }
            "--queue-depth" => {
                opts.config.queue_depth = value(&mut i, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth requires a count".to_owned())?;
            }
            "--io-model" => {
                opts.config.io_model = IoModel::parse(&value(&mut i, "--io-model")?)?;
            }
            "--max-connections" => {
                opts.config.max_connections = value(&mut i, "--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections requires a count (0 = unlimited)".to_owned())?;
            }
            "--request-deadline-ms" => {
                let ms: u64 = value(&mut i, "--request-deadline-ms")?
                    .parse()
                    .map_err(|_| "--request-deadline-ms requires milliseconds".to_owned())?;
                opts.config.request_deadline = std::time::Duration::from_millis(ms);
            }
            "--machines" => {
                let list = value(&mut i, "--machines")?;
                opts.machines = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if opts.machines.is_empty() {
                    return Err("--machines requires at least one selector".into());
                }
            }
            "--effort" => {
                opts.effort = match value(&mut i, "--effort")?.as_str() {
                    "quick" => Effort::Quick,
                    "paper" => Effort::Paper,
                    other => return Err(format!("unknown effort `{other}` (quick | paper)")),
                };
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value(&mut i, "--cache-dir")?)),
            "--no-cache" => opts.cache_dir = None,
            "--report-cache" => opts.report_cache = true,
            "--no-report-cache" => opts.report_cache = false,
            "--report-cache-bytes" => {
                opts.report_cache_bytes = value(&mut i, "--report-cache-bytes")?
                    .parse()
                    .map_err(|_| "--report-cache-bytes requires a byte count".to_owned())?;
            }
            "--max-body" => {
                opts.config.max_body_bytes = value(&mut i, "--max-body")?
                    .parse()
                    .map_err(|_| "--max-body requires a byte count".to_owned())?;
            }
            "--slow-request-ms" => {
                let ms: u64 = value(&mut i, "--slow-request-ms")?
                    .parse()
                    .map_err(|_| "--slow-request-ms requires milliseconds".to_owned())?;
                opts.config.slow_request_ms = Some(ms);
            }
            "--log-format" => {
                let spec = value(&mut i, "--log-format")?;
                opts.log_format = LogFormat::parse(&spec)
                    .ok_or_else(|| format!("unknown log format `{spec}` (text | json)"))?;
            }
            "-v" | "--verbose" => opts.log_level = Level::Debug,
            "-q" | "--quiet" => opts.log_level = Level::Warn,
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gpa-serve: {e}");
            return ExitCode::from(2);
        }
    };
    log::init(opts.log_level, opts.log_format);

    // Calibrate every requested machine before accepting a single
    // connection: requests are then pure read-only lookups and the
    // worker pool shares one Analyzer with no locking.
    let mut analyzer = Analyzer::new();
    for selector in &opts.machines {
        let machine = match find_builtin(selector) {
            Ok(m) => m,
            Err(e) => {
                log::error("serve", &e.to_string(), &[]);
                return ExitCode::from(2);
            }
        };
        log::info(
            "serve",
            "calibrating",
            &[
                ("machine", machine.name.as_str().into()),
                ("effort", format!("{:?}", opts.effort).into()),
            ],
        );
        match &opts.cache_dir {
            Some(dir) => analyzer.calibrate_cached(machine, opts.effort.measure_opts(), dir),
            None => analyzer.calibrate(machine, opts.effort.measure_opts()),
        };
    }

    // Memoize whole answers (content-addressed on request + calibration
    // identity): duplicated traffic skips the simulator entirely. The
    // disk tier shares the curve-cache directory, so reports persist
    // across restarts and are shared with `gpa-analyze` next door.
    if opts.report_cache {
        analyzer.enable_report_cache(ReportCacheConfig {
            max_bytes: opts.report_cache_bytes,
            disk_dir: opts.cache_dir.clone(),
            ..ReportCacheConfig::default()
        });
    }

    // Advertise the startup effort: requests asking for finer
    // calibration get refused instead of silently coarser answers.
    let handler = Arc::new(AnalyzeApi::new(Arc::new(analyzer)).with_effort(opts.effort));
    let server = match Server::start(opts.addr.as_str(), opts.config, handler) {
        Ok(s) => s,
        Err(e) => {
            log::error(
                "serve",
                "cannot bind",
                &[
                    ("addr", opts.addr.as_str().into()),
                    ("error", e.to_string().into()),
                ],
            );
            return ExitCode::FAILURE;
        }
    };

    // Scripts scrape this line for the bound (possibly ephemeral) port;
    // stdout is block-buffered under a pipe, so flush explicitly.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "listening on http://{}", server.local_addr());
    let _ = stdout.flush();
    log::info(
        "serve",
        "serving",
        &[
            ("machines", opts.machines.len().into()),
            ("workers", server.stats().workers.into()),
            ("queue_depth", opts.config.queue_depth.into()),
            ("io_model", server.telemetry().io_model_str().into()),
        ],
    );

    server.wait(); // runs until the process is killed
    ExitCode::SUCCESS
}
