//! The connection engine: a `TcpListener` acceptor, a bounded queue of
//! accepted connections, and a worker thread pool that parses, routes,
//! and answers them.
//!
//! Two interchangeable I/O models sit in front of the worker pool,
//! selected by [`ServerConfig::io_model`]:
//!
//! * [`IoModel::Threads`] (the default): each accepted connection is
//!   handed to a worker thread, which blocks on it until the
//!   connection closes — simple, and the right shape when connections
//!   are short-lived.
//! * [`IoModel::Reactor`]: a single event-loop thread multiplexes every
//!   connection over `poll(2)` (see [`crate::reactor`]) and hands only
//!   fully-parsed requests to the workers, so thousands of parked
//!   keep-alive connections cost one thread and a few pollfds.
//!
//! Both models answer every request with **byte-identical** responses;
//! the reactor adds admission control ([`ServerConfig::max_connections`])
//! and a queued-request deadline ([`ServerConfig::request_deadline`]).
//!
//! # Overload and shutdown semantics
//!
//! * The queue holds at most `queue_depth` connections beyond the ones
//!   workers are already serving. When it is full, the acceptor answers
//!   **503 Service Unavailable** immediately and hangs up — overload
//!   degrades predictably instead of piling latency onto every client.
//! * [`Server::shutdown`] is graceful: the listener stops accepting,
//!   queued connections are **drained** (every request already accepted
//!   gets a real answer), in-flight work finishes, and all threads are
//!   joined before the call returns.
//!
//! # Connection reuse
//!
//! Clients that send `Connection: keep-alive` get a persistent
//! connection: up to [`ServerConfig::keep_alive_requests`] requests are
//! answered back-to-back on one socket (each marked
//! `Connection: keep-alive` until the last), with
//! [`ServerConfig::keep_alive_idle`] bounding the silence between them
//! so a parked client frees its worker quickly. Errors — malformed
//! requests and 4xx/5xx answers — always close, and clients that don't
//! opt in keep the original one-request `Connection: close` behavior.

use crate::http::{self, HttpError, Request, Response};
use crate::telemetry::{RequestOutcome, ServerTelemetry};
use gpa_telemetry::{phase, trace, RequestTrace};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which connection engine fronts the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Thread-per-connection: workers block on sockets directly. The
    /// default, and the only model on non-unix targets.
    #[default]
    Threads,
    /// Readiness-based event loop ([`crate::reactor`]): one thread
    /// multiplexes all connections over `poll(2)` and workers only ever
    /// run ready, fully-parsed requests. Unix-only.
    Reactor,
}

impl IoModel {
    /// Parse the `--io-model` flag spelling.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<IoModel, String> {
        match s {
            "threads" => Ok(IoModel::Threads),
            "reactor" => Ok(IoModel::Reactor),
            other => Err(format!(
                "unknown io model `{other}` (expected `threads` or `reactor`)"
            )),
        }
    }
}

/// How the pool is shaped. `Default` gives a small general-purpose
/// server: thread-per-connection I/O, auto-sized workers, a
/// 64-connection queue, 1 MiB bodies, keep-alive capped at 64 requests
/// per connection with a 5-second idle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Which connection engine to run (see [`IoModel`]).
    pub io_model: IoModel,
    /// Worker threads (`0` = one per available CPU core).
    pub workers: usize,
    /// Connections held beyond the ones being served; the 503 threshold.
    pub queue_depth: usize,
    /// Request-body ceiling in bytes (the 413 threshold).
    pub max_body_bytes: usize,
    /// Most requests served per connection when the client asks for
    /// `Connection: keep-alive`; `1` disables keep-alive entirely. The
    /// cap bounds how long one client can monopolize a worker.
    pub keep_alive_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the worker hangs up and returns to the queue.
    pub keep_alive_idle: Duration,
    /// How long a request (head or body) may stall mid-transfer before
    /// the worker gives up. A stall *after* request bytes started
    /// arriving is answered with a best-effort `408 Request Timeout`
    /// (and counted in [`StatsSnapshot::timeouts`]); a connection that
    /// never sent a byte is closed silently.
    pub read_timeout: Duration,
    /// Reactor-only admission control: the most connections held open at
    /// once (`0` = unlimited). At the ceiling, newly accepted sockets
    /// are answered **503** immediately and counted in
    /// [`StatsSnapshot::admission_rejected`]. The threaded model bounds
    /// connections by `workers + queue_depth` instead.
    pub max_connections: usize,
    /// Reactor-only bound on how long a parsed request may wait in the
    /// job queue before a worker picks it up (`Duration::ZERO` =
    /// disabled). Expired requests are answered **503** and counted in
    /// [`StatsSnapshot::deadline_expired`]; requests a worker already
    /// started always run to completion.
    pub request_deadline: Duration,
    /// Requests slower than this many milliseconds end-to-end are
    /// promoted from INFO to WARN in the access log, carrying their
    /// full per-phase span breakdown (`None` = never promote).
    pub slow_request_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            io_model: IoModel::Threads,
            workers: 0,
            queue_depth: 64,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            keep_alive_requests: 64,
            keep_alive_idle: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            max_connections: 4096,
            request_deadline: Duration::ZERO,
            slow_request_ms: None,
        }
    }
}

impl ServerConfig {
    pub(crate) fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// What the server has done so far; served by `GET /v1/stats` and
/// readable in-process via [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests answered with a 2xx status.
    pub served: u64,
    /// Requests answered with a 4xx/5xx status (excluding queue-full
    /// rejections, counted separately).
    pub errors: u64,
    /// Connections refused with 503 because the queue was full.
    pub rejected: u64,
    /// Requests that stalled mid-transfer past
    /// [`ServerConfig::read_timeout`] and were answered 408 (also
    /// counted in `errors`).
    pub timeouts: u64,
    /// Parsed requests that waited in the job queue past
    /// [`ServerConfig::request_deadline`] and were answered 503 without
    /// running (reactor only; a separate ledger from `errors`, like
    /// `rejected`).
    pub deadline_expired: u64,
    /// Connections refused with 503 at accept time because
    /// [`ServerConfig::max_connections`] was reached (reactor only;
    /// also a separate ledger from `errors`).
    pub admission_rejected: u64,
    /// Connections (or queued requests) waiting for a worker right now.
    pub queue_depth: usize,
    /// Connections currently open, gauges not counters: accepted and
    /// not yet closed, whatever state they are in.
    pub open_connections: usize,
    /// The subset of open connections parked idle between keep-alive
    /// requests.
    pub idle_connections: usize,
    /// Worker threads serving requests.
    pub workers: usize,
}

/// Everything the serving engine hands a [`Handler`] beyond the request
/// itself: a stats snapshot taken just before dispatch, and the
/// server's [`ServerTelemetry`] (the `/v1/metrics` registry, uptime,
/// and io-model identity). Both engines build it the same way, which is
/// what keeps `/v1/stats` and `/v1/metrics` identical across io models.
pub struct RequestContext<'a> {
    /// Counters and gauges at dispatch time.
    pub stats: StatsSnapshot,
    /// The server's metrics registry and identity.
    pub telemetry: &'a ServerTelemetry,
}

/// A request handler. One instance is shared by every worker thread, so
/// implementations must be internally synchronized (the analyzer API is
/// read-only after calibration, which is why the whole server can share
/// one [`gpa_service::Analyzer`] behind an `Arc`).
pub trait Handler: Send + Sync + 'static {
    /// Answer one parsed request.
    fn handle(&self, req: &Request, ctx: &RequestContext<'_>) -> Response;
}

impl<F> Handler for F
where
    F: for<'a> Fn(&Request, &RequestContext<'a>) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request, ctx: &RequestContext<'_>) -> Response {
        self(req, ctx)
    }
}

/// Counters plus the connection queue, shared by acceptor and workers —
/// and, under [`IoModel::Reactor`], by the event loop (which keeps the
/// same counters so `/v1/stats` means the same thing in both models).
pub(crate) struct Shared {
    pub(crate) queue: Mutex<QueueState>,
    pub(crate) ready: Condvar,
    pub(crate) served: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) admission_rejected: AtomicU64,
    /// Live 503-rejector threads (bounded by [`MAX_REJECTORS`]).
    pub(crate) rejectors: AtomicUsize,
    /// Set by [`Server::shutdown`]; checked by the acceptor between
    /// accepts and by workers between jobs.
    pub(crate) stopping: AtomicBool,
    /// Open-connection gauge (threaded: connections a worker holds;
    /// reactor: connections in the event loop's table).
    pub(crate) open_conns: AtomicUsize,
    /// Idle-parked-connection gauge (subset of `open_conns`).
    pub(crate) idle_conns: AtomicUsize,
    /// Parsed requests sitting in the reactor's job queue; folded into
    /// the `queue_depth` stat so both models report queued work there.
    pub(crate) jobs_queued: AtomicUsize,
    pub(crate) workers: usize,
    pub(crate) config: ServerConfig,
    /// Metrics registry + request finishing, shared by both engines.
    pub(crate) telemetry: ServerTelemetry,
}

pub(crate) struct QueueState {
    /// Accepted connections with their enqueue instants (the `queue`
    /// phase of the first request on each).
    pub(crate) pending: VecDeque<(TcpStream, Instant)>,
    /// Mirrors `stopping` under the queue lock so workers can't miss the
    /// wake-up between their emptiness check and their `wait`.
    pub(crate) closed: bool,
}

impl Shared {
    pub(crate) fn new(workers: usize, config: ServerConfig) -> Shared {
        Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            rejectors: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            idle_conns: AtomicUsize::new(0),
            jobs_queued: AtomicUsize::new(0),
            workers,
            config,
            telemetry: ServerTelemetry::new(config.io_model, config.slow_request_ms),
        }
    }

    /// The context handed to the handler for one dispatch.
    pub(crate) fn request_context(&self) -> RequestContext<'_> {
        RequestContext {
            stats: self.snapshot(),
            telemetry: &self.telemetry,
        }
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().expect("queue poisoned").pending.len()
                + self.jobs_queued.load(Ordering::Relaxed),
            open_connections: self.open_conns.load(Ordering::Relaxed),
            idle_connections: self.idle_conns.load(Ordering::Relaxed),
            workers: self.workers,
        }
    }

    pub(crate) fn count_response(&self, status: u16) {
        if status < 400 {
            self.served.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Decrements a gauge on drop, so connection counts survive every early
/// return (and handler panics) on the threaded path.
pub(crate) struct GaugeGuard<'a>(&'a AtomicUsize);

impl<'a> GaugeGuard<'a> {
    pub(crate) fn acquire(gauge: &'a AtomicUsize) -> GaugeGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// How [`Server::shutdown`] unblocks the accepting thread.
enum WakeHow {
    /// The threaded acceptor blocks in `accept`; a throwaway connection
    /// to ourselves unblocks it.
    Connect,
    /// The reactor blocks in `poll`; a byte down its self-pipe wakes it.
    #[cfg(unix)]
    Pipe(Arc<crate::reactor::Waker>),
}

/// A running HTTP server. Dropping it without calling
/// [`Server::shutdown`] detaches the threads (the process exit reaps
/// them); call `shutdown` for a drained, joined stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    wake: WakeHow,
}

impl Server {
    /// Bind `addr` and start the configured engine: acceptor plus
    /// worker threads ([`IoModel::Threads`]) or event loop plus worker
    /// threads ([`IoModel::Reactor`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission); under
    /// [`IoModel::Reactor`], also self-pipe creation failures, and
    /// [`std::io::ErrorKind::Unsupported`] on non-unix targets.
    pub fn start(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        handler: Arc<dyn Handler>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = config.worker_count();
        let shared = Arc::new(Shared::new(workers, config));

        match config.io_model {
            IoModel::Threads => {
                let worker_handles: Vec<JoinHandle<()>> = (0..workers)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        let handler = Arc::clone(&handler);
                        std::thread::Builder::new()
                            .name(format!("gpa-serve-worker-{i}"))
                            .spawn(move || worker_loop(&shared, handler.as_ref()))
                            .expect("spawn worker thread")
                    })
                    .collect();

                let acceptor = {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("gpa-serve-acceptor".into())
                        .spawn(move || accept_loop(&listener, &shared))
                        .expect("spawn acceptor thread")
                };

                Ok(Server {
                    addr: local,
                    shared,
                    acceptor: Some(acceptor),
                    workers: worker_handles,
                    wake: WakeHow::Connect,
                })
            }
            #[cfg(unix)]
            IoModel::Reactor => {
                let started = crate::reactor::start(listener, Arc::clone(&shared), handler)?;
                Ok(Server {
                    addr: local,
                    shared,
                    acceptor: Some(started.event_loop),
                    workers: started.workers,
                    wake: WakeHow::Pipe(started.waker),
                })
            }
            #[cfg(not(unix))]
            IoModel::Reactor => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "IoModel::Reactor requires poll(2); use IoModel::Threads on this target",
            )),
        }
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters and queue depth.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// The server's metrics registry and identity (what `/v1/metrics`
    /// renders); useful for in-process scraping and tests.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.shared.telemetry
    }

    /// Stop accepting, drain every queued connection, finish in-flight
    /// requests, and join all threads. Consumes the server; the final
    /// counters come back so a caller can log them.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.stopping.store(true, Ordering::SeqCst);
        match &self.wake {
            WakeHow::Connect => {
                // `accept` has no cancellation in std; a throwaway
                // connection to ourselves unblocks it so it can observe
                // `stopping`. A wildcard bind address (0.0.0.0 / ::) is
                // not connectable everywhere, so aim the wake-up at the
                // matching loopback instead.
                let mut wake = self.addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake {
                        SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                        SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                    });
                }
                if let Ok(stream) = TcpStream::connect_timeout(&wake, Duration::from_secs(2)) {
                    drop(stream);
                }
            }
            #[cfg(unix)]
            WakeHow::Pipe(waker) => waker.wake(),
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            queue.closed = true;
            self.shared.ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.snapshot()
    }

    /// Block until the server is shut down from another thread (or
    /// forever in the `gpa-serve` binary, which runs until killed).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent failure (e.g. EMFILE) returns instantly;
                // back off instead of spinning a core until it clears.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            // The wake-up connection (or a client racing the shutdown):
            // stop accepting. Queued connections still get drained.
            return;
        }
        // Responses are written head-then-body: without TCP_NODELAY,
        // Nagle holds the second write until the first is acked, and a
        // keep-alive peer's delayed ACK turns every exchange after the
        // kernel's quickack quota into a ~40 ms stall.
        let _ = stream.set_nodelay(true);
        let over_quota = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            if queue.pending.len() >= shared.config.queue_depth {
                Some(stream)
            } else {
                queue.pending.push_back((stream, Instant::now()));
                shared.ready.notify_one();
                None
            }
        };
        if let Some(stream) = over_quota {
            reject_overload(shared, stream);
        }
    }
}

/// Most concurrent rejector threads; above this a flood gets the cheap
/// best-effort 503 so rejection cost stays bounded. The reactor uses
/// the same bound for its admission-rejection overflow slots.
pub(crate) const MAX_REJECTORS: usize = 64;

/// Decrements the rejector count when the thread finishes — or when the
/// closure is dropped unrun because spawning failed.
struct RejectorSlot(Arc<Shared>);

impl Drop for RejectorSlot {
    fn drop(&mut self) {
        self.0.rejectors.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Tell an over-quota client to back off with a 503. The well-mannered
/// path runs on a short-lived thread (so a slow client can't stall
/// accept) and drains the unread request before closing — closing with
/// unread data would RST the socket and risk destroying the 503 in
/// flight. Under a flood (rejector budget exhausted) or thread-spawn
/// failure, degrade to a best-effort inline write: bounded acceptor
/// work beats a guaranteed delivery.
fn reject_overload(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.rejected.fetch_add(1, Ordering::Relaxed);
    let resp = Response::error(503, "server is at capacity, retry later");
    if shared.rejectors.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        shared.rejectors.fetch_sub(1, Ordering::SeqCst);
        let _ = http::write_response(&mut stream, &resp);
        return;
    }
    let slot = RejectorSlot(Arc::clone(shared));
    let spawned = std::thread::Builder::new()
        .name("gpa-serve-reject".into())
        .spawn(move || {
            let _slot = slot; // freed when the thread (or unrun closure) drops
            if http::write_response(&mut stream, &resp).is_ok() {
                let _ = stream.shutdown(Shutdown::Write);
                drain(&mut stream);
            }
        });
    // On spawn failure the closure is dropped unrun: the slot frees
    // itself and the connection closes — the safe floor when the
    // process is out of threads.
    drop(spawned);
}

/// Read and discard until EOF, a 2-second stall, or a 256 KiB cap.
fn drain(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut sink = [0u8; 4096];
    let mut budget = 256 * 1024;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

fn worker_loop(shared: &Shared, handler: &dyn Handler) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(stream) = queue.pending.pop_front() {
                    break Some(stream);
                }
                if queue.closed {
                    break None;
                }
                queue = shared.ready.wait(queue).expect("queue poisoned");
            }
        };
        let Some((stream, enqueued)) = stream else {
            return; // shutdown, queue fully drained
        };
        serve_connection(stream, shared, handler, enqueued.elapsed());
    }
}

/// Returns `true` when the client explicitly asked to keep the
/// connection open. Opt-in only: absent the header (HTTP/1.1's implicit
/// default included) the server keeps its original one-request
/// `Connection: close` contract, so pre-keep-alive clients observe no
/// change.
///
/// `Connection` is an RFC 7230 §6.1 *token list*: `keep-alive, TE` is
/// legal and still asks for keep-alive, so each header value is split
/// on commas and the trimmed tokens matched case-insensitively. A
/// `close` token anywhere (even `keep-alive, close`) is authoritative —
/// the client is withdrawing the offer, and honoring the stronger
/// disposition is always framing-safe.
pub(crate) fn wants_keep_alive(req: &Request) -> bool {
    let mut keep = false;
    for token in req
        .headers
        .iter()
        .filter(|(name, _)| name.eq_ignore_ascii_case("Connection"))
        .flat_map(|(_, value)| value.split(','))
        .map(str::trim)
    {
        if token.eq_ignore_ascii_case("close") {
            return false;
        }
        keep |= token.eq_ignore_ascii_case("keep-alive");
    }
    keep
}

/// A [`TcpStream`] that counts the bytes read off the wire, so the
/// timeout path can distinguish "client never sent anything" (a silent
/// close is fine) from "client stalled mid-request" (worth a 408).
struct MeteredStream {
    inner: TcpStream,
    bytes_read: u64,
}

impl Read for MeteredStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

impl std::io::Write for MeteredStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Bytes `reader` has handed to consumers so far: everything metered
/// off the socket minus what still sits unread in the buffer.
fn consumed(reader: &BufReader<MeteredStream>) -> u64 {
    reader.get_ref().bytes_read - reader.buffer().len() as u64
}

/// Whole microseconds of a duration, saturating (traces carry `u64` µs).
pub(crate) fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Serve one connection: parse requests, answer them, and honor
/// `Connection: keep-alive` up to the configured per-connection request
/// cap and idle timeout. Any error — malformed request, oversized body,
/// or a handler answer of 4xx/5xx — closes the connection
/// (`Connection: close`), so a confused peer can never wedge the framing.
///
/// Every request gets a [`RequestTrace`]: `parse` covers reading the
/// head and body off the socket (including waiting for the first
/// byte), `queue` is the connection's wait for this worker (first
/// request only — follow-ups on a kept-alive connection never queue),
/// `handle` wraps the handler (whose own spans nest inside via the
/// thread-local trace), and `write` covers response serialization.
fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    handler: &dyn Handler,
    queue_wait: Duration,
) {
    let _open = GaugeGuard::acquire(&shared.open_conns);
    // A silent client must not wedge a worker forever.
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut reader = BufReader::new(MeteredStream {
        inner: stream,
        bytes_read: 0,
    });
    let cap = shared.config.keep_alive_requests.max(1);
    let mut queue_wait = Some(queue_wait);
    for served in 1..=cap {
        let consumed_before = consumed(&reader);
        let req_start = Instant::now();
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(req) => {
                let mut req_trace = RequestTrace::new();
                req_trace.record(phase::PARSE, micros(req_start.elapsed()));
                let wait = queue_wait.take().unwrap_or(Duration::ZERO);
                req_trace.record(phase::QUEUE, micros(wait));
                let _ = trace::install(req_trace);
                let span = trace::PhaseSpan::start(phase::HANDLE);
                // A handler panic answers 500 and keeps the worker alive.
                let mut resp = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handler.handle(&req, &shared.request_context())
                }))
                .unwrap_or_else(|_| Response::error(500, "internal server error"));
                drop(span);
                let mut req_trace = trace::take().expect("trace installed above");
                resp = resp.with_header("X-Request-Id", req_trace.id());
                if req.header("x-gpa-server-timing").is_some() {
                    resp = resp.with_header("Server-Timing", &req_trace.server_timing());
                }
                shared.count_response(resp.status);
                let client_keep = wants_keep_alive(&req);
                let keep = client_keep && served < cap && resp.status < 400;
                let write_start = Instant::now();
                if http::write_response_with(reader.get_mut(), &resp, keep).is_err() {
                    return;
                }
                req_trace.record(phase::WRITE, micros(write_start.elapsed()));
                shared.telemetry.finish_request(&RequestOutcome {
                    trace: Some(&req_trace),
                    method: &req.method,
                    target: &req.target,
                    status: resp.status,
                    bytes: resp.body.len(),
                    total: wait + req_start.elapsed(),
                });
                if !keep {
                    if client_keep {
                        // The client asked for keep-alive and may have
                        // pipelined a follow-up we refused (cap reached,
                        // error status): closing with those bytes unread
                        // would RST the socket and could destroy this
                        // response in flight — drain first, exactly like
                        // the parse-error path below.
                        let mut stream = reader.into_inner().inner;
                        let _ = stream.shutdown(Shutdown::Write);
                        drain(&mut stream);
                    }
                    // Otherwise the one request was fully read, so
                    // closing now is a clean FIN.
                    return;
                }
                // Between keep-alive requests the shorter idle timeout
                // applies: a parked connection frees its worker quickly.
                // The wait happens in fill_buf so that once the next
                // request *starts* arriving, its head and body get the
                // full read-timeout budget again (a slow uplink is not
                // "idle").
                let _ = reader
                    .get_ref()
                    .inner
                    .set_read_timeout(Some(shared.config.keep_alive_idle));
                let idle = GaugeGuard::acquire(&shared.idle_conns);
                match reader.fill_buf() {
                    Ok([]) | Err(_) => return, // clean close or idle timeout
                    Ok(_) => {
                        drop(idle);
                        let _ = reader
                            .get_ref()
                            .inner
                            .set_read_timeout(Some(shared.config.read_timeout));
                    }
                }
            }
            Err(HttpError::Closed) => {
                // Clean pre-request hang-up: nothing to answer.
                return;
            }
            Err(HttpError::Io(e)) => {
                // A read timeout *after* request bytes started arriving
                // is a mid-transfer stall: tell the client before
                // closing (best-effort — it may be gone) and count it.
                // Anything else — a dead socket, a reset, or a timeout
                // with zero bytes (a parked keep-alive connection) —
                // stays a silent close.
                let timed_out = matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                );
                if timed_out && consumed(&reader) > consumed_before {
                    shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    let resp =
                        Response::error(408, "timed out waiting for the rest of the request");
                    shared.count_response(resp.status);
                    let wait = queue_wait.take().unwrap_or(Duration::ZERO);
                    let mut stream = reader.into_inner().inner;
                    if http::write_response(&mut stream, &resp).is_ok() {
                        shared.telemetry.finish_request(&RequestOutcome {
                            trace: None,
                            method: "-",
                            target: "-",
                            status: resp.status,
                            bytes: resp.body.len(),
                            total: wait + req_start.elapsed(),
                        });
                        let _ = stream.shutdown(Shutdown::Write);
                        drain(&mut stream);
                    }
                }
                return;
            }
            Err(e) => {
                let resp = Response::error(e.status(), &e.message());
                shared.count_response(resp.status);
                let wait = queue_wait.take().unwrap_or(Duration::ZERO);
                let mut stream = reader.into_inner().inner;
                if http::write_response(&mut stream, &resp).is_ok() {
                    shared.telemetry.finish_request(&RequestOutcome {
                        trace: None,
                        method: "-",
                        target: "-",
                        status: resp.status,
                        bytes: resp.body.len(),
                        total: wait + req_start.elapsed(),
                    });
                    // The request may have unread bytes (an oversized body
                    // we refused to read, trailing garbage): drain before
                    // closing so the error response survives the trip.
                    let _ = stream.shutdown(Shutdown::Write);
                    drain(&mut stream);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_resolves_auto() {
        let auto = ServerConfig::default();
        assert!(auto.worker_count() >= 1);
        let fixed = ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        };
        assert_eq!(fixed.worker_count(), 3);
    }

    #[test]
    fn keep_alive_negotiation_parses_token_lists() {
        let req = |connection: &[&str]| Request {
            method: "GET".into(),
            target: "/healthz".into(),
            headers: connection
                .iter()
                .map(|v| ("Connection".to_owned(), (*v).to_owned()))
                .collect(),
            body: Vec::new(),
        };
        // Plain spellings, any case.
        assert!(wants_keep_alive(&req(&["keep-alive"])));
        assert!(wants_keep_alive(&req(&["Keep-Alive"])));
        assert!(!wants_keep_alive(&req(&["close"])));
        assert!(!wants_keep_alive(&req(&[])));
        // RFC 7230 token lists: the other tokens must not mask the ask.
        assert!(wants_keep_alive(&req(&["keep-alive, TE"])));
        assert!(wants_keep_alive(&req(&["TE , Keep-Alive"])));
        assert!(!wants_keep_alive(&req(&["TE"])));
        // A close token is authoritative wherever it appears.
        assert!(!wants_keep_alive(&req(&["keep-alive, close"])));
        assert!(!wants_keep_alive(&req(&["close, keep-alive"])));
        // Repeated Connection headers are one combined list.
        assert!(wants_keep_alive(&req(&["TE", "keep-alive"])));
        assert!(!wants_keep_alive(&req(&["keep-alive", "close"])));
    }

    #[test]
    fn stats_classify_statuses() {
        let shared = Shared::new(2, ServerConfig::default());
        shared.count_response(200);
        shared.count_response(404);
        shared.count_response(500);
        let snap = shared.snapshot();
        assert_eq!((snap.served, snap.errors, snap.rejected), (1, 2, 0));
        assert_eq!((snap.deadline_expired, snap.admission_rejected), (0, 0));
        assert_eq!(snap.workers, 2);
    }

    #[test]
    fn io_model_parses_flag_spellings() {
        assert_eq!(IoModel::parse("threads"), Ok(IoModel::Threads));
        assert_eq!(IoModel::parse("reactor"), Ok(IoModel::Reactor));
        assert!(IoModel::parse("epoll").is_err());
    }

    #[test]
    fn gauges_balance_via_guards() {
        let shared = Shared::new(1, ServerConfig::default());
        {
            let _a = GaugeGuard::acquire(&shared.open_conns);
            let _b = GaugeGuard::acquire(&shared.open_conns);
            assert_eq!(shared.snapshot().open_connections, 2);
        }
        assert_eq!(shared.snapshot().open_connections, 0);
        shared.jobs_queued.fetch_add(3, Ordering::Relaxed);
        assert_eq!(shared.snapshot().queue_depth, 3);
    }
}
