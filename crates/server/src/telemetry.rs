//! The server's observability bundle: the metrics registry behind
//! `GET /v1/metrics`, per-request finishing (histograms + access log +
//! slow-request promotion), and build/uptime identity.
//!
//! One [`ServerTelemetry`] is created per [`crate::Server`] and shared
//! by both io models, which is what guarantees `/v1/metrics` exposes an
//! identical set of metric names and labels whichever engine is
//! selected. See [`gpa_telemetry::Registry::render`] for the exposition
//! format contract.

use crate::server::{IoModel, StatsSnapshot};
use gpa_service::ReportCacheStats;
use gpa_telemetry::{log, phase, AdHoc, Counter, Histogram, Registry, RequestTrace};
use std::time::{Duration, Instant};

/// Log-field key for each phase (`<phase>_us`), precomputed so access
/// logging allocates nothing per phase.
const PHASE_KEYS: [(&str, &str); 11] = [
    (phase::PARSE, "parse_us"),
    (phase::QUEUE, "queue_us"),
    (phase::HANDLE, "handle_us"),
    (phase::WRITE, "write_us"),
    (phase::CACHE_LOOKUP, "cache_lookup_us"),
    (phase::CALIBRATION_FETCH, "calibration_fetch_us"),
    (phase::BUILD, "build_us"),
    (phase::FUNCTIONAL_SIM, "functional_sim_us"),
    (phase::TIMING_REPLAY, "timing_replay_us"),
    (phase::WHAT_IFS, "what_ifs_us"),
    (phase::SERIALIZE, "serialize_us"),
];

/// Per-server metrics, identity, and access-log policy.
pub struct ServerTelemetry {
    registry: Registry,
    requests_total: Counter,
    request_duration: Histogram,
    phases: Vec<(&'static str, &'static str, Histogram)>,
    started: Instant,
    io_model: IoModel,
    slow_request: Option<Duration>,
}

/// Everything known about one finished request, fed to
/// [`ServerTelemetry::finish_request`] by both engines at the moment
/// the response bytes are fully on the socket.
pub(crate) struct RequestOutcome<'a> {
    /// The trace carried through the request, when one was created
    /// (overload rejections and pre-parse failures have none).
    pub trace: Option<&'a RequestTrace>,
    /// Request method, or `-` when parsing never produced one.
    pub method: &'a str,
    /// Request target, or `-`.
    pub target: &'a str,
    /// Response status.
    pub status: u16,
    /// Response body bytes.
    pub bytes: usize,
    /// Wall-clock time from first request byte to last response byte.
    pub total: Duration,
}

impl ServerTelemetry {
    /// A fresh registry with every serving metric pre-registered, so
    /// the exposed label set does not depend on traffic.
    pub fn new(io_model: IoModel, slow_request_ms: Option<u64>) -> ServerTelemetry {
        let registry = Registry::new();
        let requests_total = registry.counter(
            "gpa_requests_total",
            "Requests answered through the serving path (any status).",
        );
        let request_duration = registry.histogram(
            "gpa_request_duration_us",
            "End-to-end request latency in microseconds; the +Inf bucket equals gpa_requests_total.",
        );
        let phases = PHASE_KEYS
            .iter()
            .map(|&(name, key)| {
                let h = registry.histogram_with(
                    "gpa_request_phase_us",
                    "Per-phase request latency in microseconds, from trace spans.",
                    &[("phase", name)],
                );
                (name, key, h)
            })
            .collect();
        registry
            .gauge_with(
                "gpa_build_info",
                "Constant 1; the labels carry the build version.",
                &[("version", Self::version())],
            )
            .set(1);
        ServerTelemetry {
            registry,
            requests_total,
            request_duration,
            phases,
            started: Instant::now(),
            io_model,
            slow_request: slow_request_ms.map(Duration::from_millis),
        }
    }

    /// The engine this server runs, as the `--io-model` flag spelling.
    pub fn io_model_str(&self) -> &'static str {
        match self.io_model {
            IoModel::Threads => "threads",
            IoModel::Reactor => "reactor",
        }
    }

    /// Whole seconds since this server started.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The crate version baked into the binary.
    pub fn version() -> &'static str {
        env!("CARGO_PKG_VERSION")
    }

    /// Total requests finished so far (the `gpa_requests_total` value).
    pub fn requests_total(&self) -> u64 {
        self.requests_total.get()
    }

    /// Render the full `/v1/metrics` exposition: registered serving
    /// metrics plus scrape-time families derived from the stats
    /// snapshot and (when enabled) the report cache.
    pub fn render(&self, stats: &StatsSnapshot, cache: Option<&ReportCacheStats>) -> String {
        let mut extra = vec![
            AdHoc::counter(
                "gpa_server_served_total",
                "Requests answered with a 2xx status.",
                stats.served,
            ),
            AdHoc::counter(
                "gpa_server_errors_total",
                "Requests answered with a 4xx/5xx status.",
                stats.errors,
            ),
            AdHoc::counter(
                "gpa_server_rejected_total",
                "Connections refused 503 because the queue was full.",
                stats.rejected,
            ),
            AdHoc::counter(
                "gpa_server_timeouts_total",
                "Requests that stalled mid-transfer and were answered 408.",
                stats.timeouts,
            ),
            AdHoc::counter(
                "gpa_server_deadline_expired_total",
                "Queued requests answered 503 after the request deadline.",
                stats.deadline_expired,
            ),
            AdHoc::counter(
                "gpa_server_admission_rejected_total",
                "Connections refused 503 at accept by admission control.",
                stats.admission_rejected,
            ),
            AdHoc::gauge(
                "gpa_server_queue_depth",
                "Connections or parsed requests waiting for a worker.",
                stats.queue_depth as u64,
            ),
            AdHoc::gauge(
                "gpa_server_open_connections",
                "Connections currently open.",
                stats.open_connections as u64,
            ),
            AdHoc::gauge(
                "gpa_server_idle_connections",
                "Open connections parked idle between keep-alive requests.",
                stats.idle_connections as u64,
            ),
            AdHoc::gauge(
                "gpa_server_workers",
                "Worker threads serving requests.",
                stats.workers as u64,
            ),
            AdHoc::gauge(
                "gpa_process_uptime_seconds",
                "Whole seconds since the server started.",
                self.uptime_seconds(),
            ),
        ];
        if let Some(cache) = cache {
            extra.extend([
                AdHoc::counter(
                    "gpa_report_cache_hits_total",
                    "Report-cache lookups answered from memory or disk.",
                    cache.hits,
                ),
                AdHoc::counter(
                    "gpa_report_cache_misses_total",
                    "Report-cache lookups that fell through to simulation.",
                    cache.misses,
                ),
                AdHoc::counter(
                    "gpa_report_cache_evictions_total",
                    "Entries evicted from the in-memory report cache.",
                    cache.evictions,
                ),
                AdHoc::gauge(
                    "gpa_report_cache_entries",
                    "Entries resident in the in-memory report cache.",
                    cache.entries as u64,
                ),
                AdHoc::gauge(
                    "gpa_report_cache_bytes",
                    "Bytes charged against the report-cache budget.",
                    cache.bytes as u64,
                ),
            ]);
        }
        self.registry.render(&extra)
    }

    /// Count one finished request: bump `gpa_requests_total`, observe
    /// the duration and phase histograms, and emit the access-log line
    /// (promoted to WARN past the `--slow-request-ms` threshold).
    ///
    /// Both engines call this exactly once per response written through
    /// the normal serving path, at the same point the counter and the
    /// histogram are advanced — which is why bucket counts always sum
    /// to the counter.
    pub(crate) fn finish_request(&self, outcome: &RequestOutcome<'_>) {
        let total_us = u64::try_from(outcome.total.as_micros()).unwrap_or(u64::MAX);
        self.requests_total.inc();
        self.request_duration.observe_micros(total_us);
        if let Some(trace) = outcome.trace {
            for &(name, us) in trace.phases() {
                if let Some((_, _, h)) = self.phases.iter().find(|(n, _, _)| *n == name) {
                    h.observe_micros(us);
                }
            }
        }
        let slow = self.slow_request.is_some_and(|t| outcome.total >= t);
        let level = if slow {
            log::Level::Warn
        } else {
            log::Level::Info
        };
        if !log::enabled(level) {
            return;
        }
        let mut fields: Vec<(&str, log::FieldValue)> = Vec::with_capacity(8 + PHASE_KEYS.len());
        if let Some(trace) = outcome.trace {
            fields.push(("id", trace.id().into()));
        }
        fields.push(("method", outcome.method.into()));
        fields.push(("path", outcome.target.into()));
        fields.push(("status", outcome.status.into()));
        fields.push(("bytes", outcome.bytes.into()));
        fields.push(("total_us", total_us.into()));
        if let Some(trace) = outcome.trace {
            for &(name, us) in trace.phases() {
                if let Some(&(_, key, _)) = self.phases.iter().find(|(n, _, _)| *n == name) {
                    fields.push((key, us.into()));
                }
            }
            if let Some(hit) = trace.cache_hit() {
                fields.push(("cache", if hit { "hit".into() } else { "miss".into() }));
            }
        }
        let msg = if slow { "slow request" } else { "request" };
        log::log(level, "access", msg, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_names_are_traffic_independent() {
        let quiet = ServerTelemetry::new(IoModel::Threads, None);
        let busy = ServerTelemetry::new(IoModel::Reactor, Some(1));
        let mut trace = RequestTrace::new();
        trace.record(phase::PARSE, 10);
        busy.finish_request(&RequestOutcome {
            trace: Some(&trace),
            method: "GET",
            target: "/healthz",
            status: 200,
            bytes: 2,
            total: Duration::from_micros(25),
        });
        let stats = crate::server::Shared::new(1, crate::ServerConfig::default()).snapshot();
        let names = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split_whitespace().next().unwrap().to_string())
                .collect()
        };
        assert_eq!(
            names(&quiet.render(&stats, None)),
            names(&busy.render(&stats, None)),
        );
        assert_eq!(busy.requests_total(), 1);
    }

    #[test]
    fn duration_bucket_total_tracks_the_counter() {
        let t = ServerTelemetry::new(IoModel::Threads, None);
        for us in [3, 70, 9_000] {
            t.finish_request(&RequestOutcome {
                trace: None,
                method: "-",
                target: "-",
                status: 400,
                bytes: 0,
                total: Duration::from_micros(us),
            });
        }
        let stats = crate::server::Shared::new(1, crate::ServerConfig::default()).snapshot();
        let text = t.render(&stats, None);
        let inf = text
            .lines()
            .find(|l| l.starts_with("gpa_request_duration_us_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket rendered");
        assert_eq!(inf.split_whitespace().last(), Some("3"));
        assert!(text.contains("gpa_requests_total 3\n"));
    }
}
