#![warn(missing_docs)]

//! The HTTP serving subsystem: the paper's calibrate-once/query-many
//! workflow ([`gpa_service::Analyzer`]) behind a network front end, with
//! zero dependencies outside `std` and the workspace.
//!
//! # Shape
//!
//! * [`http`] — a strict HTTP/1.1 message layer: request parsing with
//!   size ceilings, `Content-Length` framing, correct
//!   400/404/405/413/500/503 responses.
//! * [`server`] — the connection engine: an acceptor feeding a
//!   **bounded queue** and a worker thread pool sharing one calibrated
//!   [`Analyzer`](gpa_service::Analyzer) behind an `Arc`. Queue-full
//!   answers 503 so overload degrades predictably; shutdown drains
//!   queued and in-flight work before returning.
//! * [`reactor`] — the event-driven alternative to thread-per-connection
//!   (`ServerConfig::io_model = IoModel::Reactor`): one thread
//!   multiplexes every connection over `poll(2)` via direct FFI, parses
//!   requests incrementally, enforces read/idle/request deadlines, and
//!   hands ready requests to the same worker pool — byte-identical
//!   responses, but parked keep-alive connections no longer pin
//!   threads.
//! * [`api`] — the route table: `POST /v1/analyze` (single object or
//!   batch array, the same `gpa_service::wire` JSON as `gpa-analyze`,
//!   byte-identical output at matching calibration effort),
//!   `GET /v1/machines`, `GET /healthz`, `GET /v1/stats`.
//! * [`client`] — a minimal blocking HTTP client (tests, CI, and the
//!   `gpa-http` binary drive the server with it; no curl required).
//! * [`telemetry`] — the observability bundle behind `GET /v1/metrics`:
//!   a Prometheus-text registry (request counter, latency histogram,
//!   per-phase histograms fed by [`gpa_telemetry`] trace spans), the
//!   structured access log with `--slow-request-ms` WARN promotion, and
//!   the `X-Request-Id` / opt-in `Server-Timing` response headers.
//!
//! The `gpa-serve` binary ties it together: calibrate the requested
//! machines through the shared on-disk curve cache
//! ([`gpa_ubench::cache`], also used by `gpa-analyze` and `gpa-bench`,
//! so co-located processes measure each machine once), then serve.
//!
//! ```no_run
//! use gpa_server::{api::AnalyzeApi, client::Client, server::{Server, ServerConfig}};
//! use gpa_service::Analyzer;
//! use gpa_hw::Machine;
//! use gpa_ubench::MeasureOpts;
//! use std::sync::Arc;
//!
//! let mut analyzer = Analyzer::new();
//! analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
//! let server = Server::start(
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//!     Arc::new(AnalyzeApi::new(Arc::new(analyzer))),
//! )
//! .unwrap();
//! let client = Client::new(server.local_addr().to_string());
//! let health = client.get("/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! server.shutdown();
//! ```

pub mod api;
pub mod client;
pub mod http;
#[cfg(unix)]
pub mod reactor;
pub mod server;
pub mod telemetry;

pub use api::AnalyzeApi;
pub use client::{Client, HttpResponse};
pub use http::{Request, Response};
pub use server::{Handler, IoModel, RequestContext, Server, ServerConfig, StatsSnapshot};
pub use telemetry::ServerTelemetry;
