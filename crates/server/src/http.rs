//! A minimal HTTP/1.1 message layer over `std::io` streams.
//!
//! Exactly the subset the serving subsystem needs, implemented from
//! scratch (the build image has no crates.io access): request-line and
//! header parsing with hard size ceilings, `Content-Length`-framed
//! bodies, and a response writer that always emits `Content-Length` plus
//! an explicit `Connection:` disposition — `close` by default,
//! `keep-alive` via [`write_response_with`] for the server's persistent
//! connections (the framing makes back-to-back requests unambiguous).
//!
//! The parser is deliberately strict — anything outside the subset
//! (chunked transfer encoding, HTTP/2 preludes, missing versions) is a
//! clean [`HttpError::BadRequest`], never a panic or a mis-framed read.

use std::io::{self, BufRead, Read, Write};

/// Default ceiling on request bodies (1 MiB — a batch of thousands of
/// analysis requests fits in a few hundred KiB).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// Ceiling on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read. Each variant maps onto exactly one
/// response status ([`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed before a single request byte arrived — a
    /// normal hang-up, not worth a response.
    Closed,
    /// The bytes are not a well-formed HTTP/1.x request (or use a
    /// feature outside the supported subset). Maps to 400.
    BadRequest(String),
    /// The declared body exceeds the configured ceiling. Maps to 413.
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured ceiling it exceeded.
        limit: usize,
    },
    /// The underlying socket failed (timeout, reset) mid-request.
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps to (`Closed` and `Io` get no
    /// response; by convention they report as 400 here).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::PayloadTooLarge { .. } => 413,
            _ => 400,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Closed => "connection closed".into(),
            HttpError::BadRequest(m) => m.clone(),
            HttpError::PayloadTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request: method, target path, headers, and the complete
/// (`Content-Length`-framed) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (`/v1/analyze`).
    pub target: String,
    /// Header name/value pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not valid UTF-8".into()))
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, charging its bytes
/// against `budget`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut take = reader.take(*budget as u64 + 1);
    let n = take.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None); // EOF
    }
    if n > *budget {
        return Err(HttpError::BadRequest(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    *budget -= n;
    if raw.last() != Some(&b'\n') {
        return Err(HttpError::BadRequest("truncated header line".into()));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("header line is not valid UTF-8".into()))
}

/// Read and parse one request from `reader`, enforcing the
/// [`MAX_HEAD_BYTES`] head ceiling and the caller's body ceiling.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean pre-request hang-up, otherwise the
/// variant naming what was malformed or oversized.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(line) if line.is_empty() => {
            return Err(HttpError::BadRequest("empty request line".into()))
        }
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::BadRequest("EOF inside request head".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }

    let req = Request {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body: Vec::new(),
    };
    if req.header("Transfer-Encoding").is_some() {
        // Refusing is the only safe option: honoring Content-Length on a
        // chunked body would mis-frame the connection.
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let body_len = match req.header("Content-Length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable Content-Length `{v}`")))?,
    };
    if body_len > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: body_len,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..req })
}

/// One response: status, content type, extra headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Allow` on a 405).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error response: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = gpa_json::Value::Object(vec![(
            "error".into(),
            gpa_json::Value::String(message.to_owned()),
        )])
        .to_string_pretty();
        Response::json(status, body)
    }

    /// The response with an extra header attached.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }
}

/// The reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `writer` (HTTP/1.1, explicit `Content-Length`,
/// `Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_response_with(writer, resp, false)
}

/// [`write_response`] with an explicit connection disposition: the
/// response always carries `Content-Length` framing, so `keep_alive`
/// only switches the advertised `Connection:` header (the server's
/// keep-alive loop relies on this — see `gpa_server::server`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&resp.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/analyze");
        assert_eq!(req.header("CONTENT-LENGTH"), Some("4"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_a_bare_lf_get() {
        let req = parse(b"GET /healthz HTTP/1.0\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_heads() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /healthz HTTP/2\r\n\r\n",
            b"GET nothing-absolute HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\r\n\r\n",
        ] {
            let err = parse(bytes).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{bytes:?}: {err:?}"
            );
        }
    }

    #[test]
    fn clean_hangup_is_distinguished_from_garbage() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let err = read_request(
            &mut BufReader::new(&b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n"[..]),
            64,
        )
        .unwrap_err();
        match err {
            HttpError::PayloadTooLarge { declared, limit } => {
                assert_eq!((declared, limit), (100, 64));
            }
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
        assert_eq!(
            err_status_of(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 64),
            413
        );
    }

    fn err_status_of(bytes: &[u8], max_body: usize) -> u16 {
        read_request(&mut BufReader::new(bytes), max_body)
            .unwrap_err()
            .status()
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            head.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
        }
        head.extend_from_slice(b"\r\n");
        assert_eq!(err_status_of(&head, DEFAULT_MAX_BODY_BYTES), 400);
    }

    #[test]
    fn responses_round_trip_the_writer() {
        let resp = Response::json(200, "{}").with_header("Allow", "GET");
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Allow: GET\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_bodies_are_json() {
        let resp = Response::error(400, "nope");
        assert_eq!(resp.status, 400);
        let v = gpa_json::Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str().unwrap(), "nope");
    }
}
