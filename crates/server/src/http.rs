//! A minimal HTTP/1.1 message layer over `std::io` streams.
//!
//! Exactly the subset the serving subsystem needs, implemented from
//! scratch (the build image has no crates.io access): request-line and
//! header parsing with hard size ceilings, `Content-Length`-framed
//! bodies, and a response writer that always emits `Content-Length` plus
//! an explicit `Connection:` disposition — `close` by default,
//! `keep-alive` via [`write_response_with`] for the server's persistent
//! connections (the framing makes back-to-back requests unambiguous).
//!
//! The parser is deliberately strict — anything outside the subset
//! (chunked transfer encoding, HTTP/2 preludes, missing versions) is a
//! clean [`HttpError::BadRequest`], never a panic or a mis-framed read.

use std::io::{self, BufRead, Read, Write};

/// Default ceiling on request bodies (1 MiB — a batch of thousands of
/// analysis requests fits in a few hundred KiB).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// Ceiling on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read. Each variant maps onto exactly one
/// response status ([`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed before a single request byte arrived — a
    /// normal hang-up, not worth a response.
    Closed,
    /// The bytes are not a well-formed HTTP/1.x request (or use a
    /// feature outside the supported subset). Maps to 400.
    BadRequest(String),
    /// The declared body exceeds the configured ceiling. Maps to 413.
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured ceiling it exceeded.
        limit: usize,
    },
    /// The underlying socket failed (timeout, reset) mid-request.
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps to (`Closed` and `Io` get no
    /// response; by convention they report as 400 here).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::PayloadTooLarge { .. } => 413,
            _ => 400,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Closed => "connection closed".into(),
            HttpError::BadRequest(m) => m.clone(),
            HttpError::PayloadTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => format!("i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request: method, target path, headers, and the complete
/// (`Content-Length`-framed) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (`/v1/analyze`).
    pub target: String,
    /// Header name/value pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not valid UTF-8".into()))
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, charging its bytes
/// against `budget`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut take = reader.take(*budget as u64 + 1);
    let n = take.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None); // EOF
    }
    if n > *budget {
        return Err(HttpError::BadRequest(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    *budget -= n;
    if raw.last() != Some(&b'\n') {
        return Err(HttpError::BadRequest("truncated header line".into()));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("header line is not valid UTF-8".into()))
}

/// Read and parse one request from `reader`, enforcing the
/// [`MAX_HEAD_BYTES`] head ceiling and the caller's body ceiling.
///
/// # Errors
///
/// [`HttpError::Closed`] on a clean pre-request hang-up, otherwise the
/// variant naming what was malformed or oversized.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::Closed),
        Some(line) if line.is_empty() => {
            return Err(HttpError::BadRequest("empty request line".into()))
        }
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::BadRequest("EOF inside request head".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }

    let req = Request {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body: Vec::new(),
    };
    if req.header("Transfer-Encoding").is_some() {
        // Refusing is the only safe option: honoring Content-Length on a
        // chunked body would mis-frame the connection.
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let body_len = match req.header("Content-Length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable Content-Length `{v}`")))?,
    };
    if body_len > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: body_len,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..req })
}

/// One response: status, content type, extra headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Allow` on a 405).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error response: `{"error": <message>}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body = gpa_json::Value::Object(vec![(
            "error".into(),
            gpa_json::Value::String(message.to_owned()),
        )])
        .to_string_pretty();
        Response::json(status, body)
    }

    /// The response with an extra header attached.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }
}

/// The reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `writer` (HTTP/1.1, explicit `Content-Length`,
/// `Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_response_with(writer, resp, false)
}

/// [`write_response`] with an explicit connection disposition: the
/// response always carries `Content-Length` framing, so `keep_alive`
/// only switches the advertised `Connection:` header (the server's
/// keep-alive loop relies on this — see `gpa_server::server`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    writer: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    writer.write_all(&response_bytes(resp, keep_alive))?;
    writer.flush()
}

/// The exact bytes [`write_response_with`] would put on the wire, as one
/// buffer. The reactor path serializes through this so that both I/O
/// models emit byte-identical responses by construction.
pub fn response_bytes(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// A [`BufRead`] over the bytes buffered so far from a nonblocking
/// socket. While `eof` is false, running out of buffered bytes raises
/// [`io::ErrorKind::WouldBlock`] instead of reporting end-of-stream, so
/// [`read_request`] run over it either finishes on the buffered prefix
/// exactly as it would on a blocking socket, or surfaces "need more
/// bytes" as a distinguishable error.
struct PartialInput<'a> {
    data: &'a [u8],
    pos: usize,
    eof: bool,
}

impl Read for PartialInput<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let chunk = self.fill_buf()?;
        let n = chunk.len().min(out.len());
        out[..n].copy_from_slice(&chunk[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for PartialInput<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos == self.data.len() && !self.eof {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "awaiting more request bytes",
            ));
        }
        Ok(&self.data[self.pos..])
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Verdict of [`parse_buffered`] on the bytes accumulated so far.
#[derive(Debug)]
pub enum ParseOutcome {
    /// A complete request, plus how many buffered bytes it consumed
    /// (trailing bytes belong to the next pipelined request).
    Request(Request, usize),
    /// The buffered prefix is consistent with a request still in
    /// flight; more bytes must arrive before there is a verdict.
    Incomplete,
    /// The buffered bytes already doom the request — same error, at the
    /// same point, as the blocking parser would report.
    Failed(HttpError),
}

/// Run the request parser over the bytes buffered from a nonblocking
/// socket. `eof` says the peer half-closed, i.e. no more bytes can
/// arrive. Because [`read_request`] is deterministic on the byte prefix
/// it consumes, calling this after every arrival and acting on the first
/// non-[`Incomplete`](ParseOutcome::Incomplete) outcome yields exactly
/// the blocking path's verdicts — including early 400s on malformed
/// lines that precede the end of the head.
pub fn parse_buffered(data: &[u8], eof: bool, max_body: usize) -> ParseOutcome {
    let mut input = PartialInput { data, pos: 0, eof };
    match read_request(&mut input, max_body) {
        Ok(req) => ParseOutcome::Request(req, input.pos),
        Err(HttpError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => ParseOutcome::Incomplete,
        Err(e) => ParseOutcome::Failed(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/analyze");
        assert_eq!(req.header("CONTENT-LENGTH"), Some("4"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_a_bare_lf_get() {
        let req = parse(b"GET /healthz HTTP/1.0\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_heads() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /healthz HTTP/2\r\n\r\n",
            b"GET nothing-absolute HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\r\n\r\n",
        ] {
            let err = parse(bytes).unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{bytes:?}: {err:?}"
            );
        }
    }

    #[test]
    fn clean_hangup_is_distinguished_from_garbage() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let err = read_request(
            &mut BufReader::new(&b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n"[..]),
            64,
        )
        .unwrap_err();
        match err {
            HttpError::PayloadTooLarge { declared, limit } => {
                assert_eq!((declared, limit), (100, 64));
            }
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
        assert_eq!(
            err_status_of(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 64),
            413
        );
    }

    fn err_status_of(bytes: &[u8], max_body: usize) -> u16 {
        read_request(&mut BufReader::new(bytes), max_body)
            .unwrap_err()
            .status()
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            head.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
        }
        head.extend_from_slice(b"\r\n");
        assert_eq!(err_status_of(&head, DEFAULT_MAX_BODY_BYTES), 400);
    }

    #[test]
    fn responses_round_trip_the_writer() {
        let resp = Response::json(200, "{}").with_header("Allow", "GET");
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Allow: GET\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    /// At every prefix length, the incremental parser must either say
    /// `Incomplete` or agree exactly with the blocking parser on the
    /// full input — same request or same error variant and message.
    fn assert_incremental_matches_blocking(bytes: &[u8], max_body: usize) {
        let blocking = read_request(&mut BufReader::new(bytes), max_body);
        let mut settled = None;
        for cut in 0..=bytes.len() {
            match parse_buffered(&bytes[..cut], false, max_body) {
                ParseOutcome::Incomplete => {
                    assert!(settled.is_none(), "verdict regressed at cut {cut}");
                }
                outcome => {
                    settled.get_or_insert(cut);
                    match (&outcome, &blocking) {
                        (ParseOutcome::Request(req, consumed), Ok(want)) => {
                            assert_eq!(req, want, "cut {cut}");
                            assert!(*consumed <= cut);
                        }
                        (ParseOutcome::Failed(got), Err(want)) => {
                            assert_eq!(got.status(), want.status(), "cut {cut}");
                            assert_eq!(got.message(), want.message(), "cut {cut}");
                        }
                        other => panic!("cut {cut}: mismatched verdicts {other:?}"),
                    }
                }
            }
        }
        // The full input with eof must settle to the blocking verdict
        // even if no prefix did (e.g. a head truncated mid-line).
        match (parse_buffered(bytes, true, max_body), blocking) {
            (ParseOutcome::Request(req, consumed), Ok(want)) => {
                assert_eq!(req, want);
                assert!(consumed <= bytes.len());
            }
            (ParseOutcome::Failed(got), Err(want)) => {
                assert_eq!(got.message(), want.message());
            }
            (got, want) => panic!("eof verdicts disagree: {got:?} vs {want:?}"),
        }
    }

    #[test]
    fn incremental_parse_matches_blocking_at_every_split() {
        let cases: &[&[u8]] = &[
            b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\ncontent-length: 4\r\n\r\n{\"a\"",
            b"GET /healthz HTTP/1.0\n\n",
            b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n",
            b"NOT-HTTP\r\n\r\n",
            b"GET /healthz HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\r\n\r\n",
        ];
        for bytes in cases {
            assert_incremental_matches_blocking(bytes, DEFAULT_MAX_BODY_BYTES);
        }
        assert_incremental_matches_blocking(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 64);
    }

    #[test]
    fn incremental_parse_handles_eof_and_pipelining() {
        // Clean pre-request hangup: no bytes, peer closed.
        assert!(matches!(
            parse_buffered(b"", true, DEFAULT_MAX_BODY_BYTES),
            ParseOutcome::Failed(HttpError::Closed)
        ));
        // No bytes, peer still connected: keep waiting.
        assert!(matches!(
            parse_buffered(b"", false, DEFAULT_MAX_BODY_BYTES),
            ParseOutcome::Incomplete
        ));
        // EOF mid-head surfaces the blocking parser's 400s.
        match parse_buffered(b"GET /x HTTP/1.1\r\nHost", true, DEFAULT_MAX_BODY_BYTES) {
            ParseOutcome::Failed(HttpError::BadRequest(m)) => {
                assert_eq!(m, "truncated header line");
            }
            other => panic!("expected truncated-line 400, got {other:?}"),
        }
        match parse_buffered(b"GET /x HTTP/1.1\r\n", true, DEFAULT_MAX_BODY_BYTES) {
            ParseOutcome::Failed(HttpError::BadRequest(m)) => {
                assert_eq!(m, "EOF inside request head");
            }
            other => panic!("expected EOF-in-head 400, got {other:?}"),
        }
        // A pipelined second request is left in the buffer.
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n";
        match parse_buffered(two, false, DEFAULT_MAX_BODY_BYTES) {
            ParseOutcome::Request(req, consumed) => {
                assert_eq!(req.target, "/healthz");
                assert_eq!(&two[consumed..], b"GET /v1/stats HTTP/1.1\r\n\r\n");
            }
            other => panic!("expected first request, got {other:?}"),
        }
        // An oversized head is doomed as soon as the budget overflows,
        // even with the connection open and no newline in sight.
        let mut junk = b"GET /x HTTP/1.1\r\n".to_vec();
        junk.resize(MAX_HEAD_BYTES + 2, b'y');
        match parse_buffered(&junk, false, DEFAULT_MAX_BODY_BYTES) {
            ParseOutcome::Failed(e) => assert_eq!(e.status(), 400),
            other => panic!("expected head-budget 400, got {other:?}"),
        }
    }

    #[test]
    fn response_bytes_matches_writer() {
        for keep in [false, true] {
            let resp = Response::error(503, "server is at capacity, retry later")
                .with_header("Allow", "GET");
            let mut via_writer = Vec::new();
            write_response_with(&mut via_writer, &resp, keep).unwrap();
            assert_eq!(via_writer, response_bytes(&resp, keep));
        }
    }

    #[test]
    fn error_bodies_are_json() {
        let resp = Response::error(400, "nope");
        assert_eq!(resp.status, 400);
        let v = gpa_json::Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str().unwrap(), "nope");
    }
}
