//! A minimal blocking HTTP/1.1 client — just enough to drive
//! `gpa-serve` from tests, CI, and the `gpa-http` binary without curl.
//!
//! [`Client`] opens one connection per request (matching the server's
//! default `Connection: close`); [`Client::connect`] returns a
//! [`Connection`] that pipelines sequential requests over one socket
//! with `Connection: keep-alive`. `Content-Length`-framed bodies on both
//! sides, and a read timeout so a dead server fails fast instead of
//! hanging a caller.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The complete body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (every `gpa-serve` body is JSON).
    ///
    /// # Errors
    ///
    /// `io::Error` when the body is not valid UTF-8.
    pub fn body_str(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not valid UTF-8"))
    }

    /// The first header with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 60-second read timeout
    /// (analysis requests are allowed to take a while; `gpa-serve`
    /// calibrates up front so requests are answered in milliseconds).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(60),
        }
    }

    /// The same client with a different read timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Connection, timeout, or response-framing failures.
    pub fn get(&self, path: &str) -> io::Result<HttpResponse> {
        self.roundtrip("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Connection, timeout, or response-framing failures.
    pub fn post_json(&self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.roundtrip("POST", path, Some(body.as_bytes()))
    }

    fn roundtrip(&self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<HttpResponse> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        let _ = stream.set_nodelay(true);
        write_request(&mut stream, &self.addr, method, path, body, false)?;
        read_response(&mut BufReader::new(stream))
    }

    /// Open a persistent connection that reuses one socket for
    /// sequential requests (`Connection: keep-alive`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(&self) -> io::Result<Connection> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        // Requests are written head-then-body; TCP_NODELAY keeps Nagle
        // from parking the body behind the server's delayed ACK on
        // long-lived connections.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            addr: self.addr.clone(),
            stream: BufReader::new(stream),
            reusable: true,
        })
    }
}

/// A persistent keep-alive connection from [`Client::connect`].
///
/// Requests are strictly sequential (send, then read the full framed
/// response). The server may close after any response — its request cap,
/// idle timeout, or an error disposition — so callers looping on one
/// `Connection` should reconnect when a call fails or
/// [`Connection::is_reusable`] reports `false`.
///
/// The connection marks itself dead — refusing further requests with
/// `BrokenPipe` instead of desyncing — after any response that ends its
/// framing: an I/O or parse failure, a response without `Content-Length`
/// (read-to-EOF consumed the socket), or a `Connection: close`
/// disposition (the server will not read again; a request written after
/// it could be silently discarded or answered out of sync).
#[derive(Debug)]
pub struct Connection {
    addr: String,
    stream: BufReader<TcpStream>,
    reusable: bool,
}

impl Connection {
    /// `GET path` on the persistent connection.
    ///
    /// # Errors
    ///
    /// Connection, timeout, or response-framing failures (including the
    /// server having closed the connection since the last request).
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.roundtrip("GET", path, None)
    }

    /// `POST path` with a JSON body on the persistent connection.
    ///
    /// # Errors
    ///
    /// As for [`Connection::get`].
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.roundtrip("POST", path, Some(body.as_bytes()))
    }

    /// Whether the socket can carry another request. `false` once a
    /// response ended the framing (see the type docs); reconnect then.
    pub fn is_reusable(&self) -> bool {
        self.reusable
    }

    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<HttpResponse> {
        if !self.reusable {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection is no longer reusable (the previous response ended it); reconnect",
            ));
        }
        let result = write_request(self.stream.get_mut(), &self.addr, method, path, body, true)
            .and_then(|()| read_response(&mut self.stream));
        match &result {
            Ok(resp) => {
                // Without Content-Length the body was read to EOF — the
                // socket is spent. A `close` token means the server
                // stops reading after this answer.
                let eof_framed = resp.header("Content-Length").is_none();
                let closing = resp
                    .header("Connection")
                    .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")));
                if eof_framed || closing {
                    self.reusable = false;
                }
            }
            // After an I/O error mid-exchange the framing state is
            // unknown; anything written next could desync.
            Err(_) => self.reusable = false,
        }
        result
    }
}

fn write_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: {connection}\r\n");
    if body.is_some() {
        head.push_str("Content-Type: application/json\r\n");
    }
    head.push_str(&format!(
        "Content-Length: {}\r\n\r\n",
        body.map_or(0, <[u8]>::len)
    ));
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body)?;
    }
    stream.flush()
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parse a response off `reader`: status line, headers, then either a
/// `Content-Length`-framed body or (absent that header) read-to-EOF.
fn read_response(reader: &mut impl BufRead) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("server closed the connection before responding"));
    }
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let (proto, code) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !proto.starts_with("HTTP/1.") {
        return Err(bad(format!("not an HTTP response: `{status_line}`")));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| bad(format!("unparseable status in `{status_line}`")))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("EOF inside response head"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("Content-Length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad(format!("unparseable Content-Length `{v}`")))
        })
        .transpose()?;
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Split an `http://host:port/path` URL into `(host:port, /path)` for
/// the `gpa-http` binary.
///
/// # Errors
///
/// A description of what is missing (scheme, host, or port).
pub fn split_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("`{url}`: only http:// URLs are supported"))?;
    let (addr, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("`{url}`: expected http://host:port/path"));
    }
    Ok((addr.to_owned(), path.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_framed_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_str().unwrap(), "{}");
    }

    #[test]
    fn parses_an_unframed_response_to_eof() {
        let raw = b"HTTP/1.0 503 Service Unavailable\r\n\r\nbusy";
        let resp = read_response(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, b"busy");
    }

    #[test]
    fn rejects_non_http() {
        assert!(read_response(&mut BufReader::new(&b"SSH-2.0-OpenSSH\r\n"[..])).is_err());
        assert!(read_response(&mut BufReader::new(&b""[..])).is_err());
    }

    /// A scripted one-connection server: accepts once, reads until the
    /// blank line ending the request head, writes `responses` verbatim,
    /// and then — crucially — keeps the socket open until dropped, so a
    /// desynced client would happily (and wrongly) write into it.
    fn scripted_server(responses: &'static str) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut socket, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(socket.try_clone().unwrap());
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                if line == "\r\n" || line == "\n" {
                    break;
                }
                line.clear();
            }
            socket.write_all(responses.as_bytes()).unwrap();
            socket.flush().unwrap();
            // Hold the socket open long enough for a buggy client to
            // attempt (and for the test to catch) a reuse.
            std::thread::sleep(Duration::from_millis(300));
        });
        (addr, handle)
    }

    #[test]
    fn connection_close_response_marks_the_connection_dead() {
        let (addr, server) =
            scripted_server("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}");
        let mut conn = Client::new(addr).connect().unwrap();
        let resp = conn.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert!(!conn.is_reusable());
        // The next request must fail fast instead of writing into a
        // socket the server will never read (desync/hang).
        let err = conn.get("/healthz").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        server.join().unwrap();
    }

    #[test]
    fn eof_framed_response_marks_the_connection_dead() {
        // No Content-Length: the client frames by reading to EOF, which
        // spends the socket even though the server left it open.
        let (addr, server) = scripted_server("HTTP/1.1 200 OK\r\n\r\nunframed body");
        let mut conn = Client::new(addr).connect().unwrap();
        // read_to_end returns once the scripted server closes (~300 ms).
        let resp = conn.get("/healthz").unwrap();
        assert_eq!(resp.body, b"unframed body");
        assert!(!conn.is_reusable());
        assert!(conn.post_json("/v1/analyze", "{}").is_err());
        server.join().unwrap();
    }

    #[test]
    fn framed_keep_alive_response_stays_reusable() {
        let (addr, server) = scripted_server(
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}",
        );
        let mut conn = Client::new(addr).connect().unwrap();
        conn.get("/healthz").unwrap();
        assert!(conn.is_reusable());
        server.join().unwrap();
    }

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:7070/v1/analyze").unwrap(),
            ("127.0.0.1:7070".to_owned(), "/v1/analyze".to_owned())
        );
        assert_eq!(
            split_url("http://localhost:80").unwrap(),
            ("localhost:80".to_owned(), "/".to_owned())
        );
        assert!(split_url("https://x:1/").is_err());
        assert!(split_url("http://nohost/").is_err());
    }
}
