//! The analysis API: routes over one shared, calibrated
//! [`Analyzer`].
//!
//! | Route | Answer |
//! |-------|--------|
//! | `POST /v1/analyze` | report JSON for one request object, or an array of per-request reports/`{"error"}` elements for a batch array — the same `gpa_service::wire` JSON as `gpa-analyze` |
//! | `GET /v1/machines` | `{"machines": [...]}`, the calibrated machine names |
//! | `GET /v1/workloads` | `{"workloads": [{"name", "description", "default_n"}, ...]}`, the workload zoo addressable via `{"case": "named"}` |
//! | `GET /healthz` | `{"status": "ok", "machines": N}` |
//! | `GET /v1/stats` | served/error/rejected/timeout/deadline/admission counters, queue depth, open/idle connection gauges, workers, uptime, build version, the selected io model |
//! | `GET /v1/metrics` | Prometheus text exposition (see [`gpa_telemetry::Registry::render`]): request counter, latency and per-phase histograms, server counters/gauges, report-cache counters when enabled |
//!
//! Unknown paths answer 404, known paths with the wrong method 405
//! (with `Allow`), malformed JSON or failed single requests 400. The
//! analyzer is calibrated **before** the server starts and never
//! mutated afterwards, so every worker shares it read-only.
//!
//! Unlike `gpa-analyze` (which calibrates per run, honoring each
//! request's `"calibration"` effort), the server calibrates once at
//! startup. A request asking for *more* effort than the server
//! calibrated with is refused (400, or an `{"error"}` element in a
//! batch) rather than silently answered from coarser curves — so
//! whenever the server's effort matches what `gpa-analyze` would use,
//! accepted answers are **byte-identical** to `gpa-analyze` stdout.

use crate::http::{Request, Response};
use crate::server::{Handler, RequestContext};
use crate::telemetry::ServerTelemetry;
use gpa_json::Value;
use gpa_service::{AnalysisRequest, Analyzer, Effort, ServiceError};
use gpa_telemetry::{phase, PhaseSpan};
use std::sync::Arc;

/// The route table over a calibrated [`Analyzer`].
pub struct AnalyzeApi {
    analyzer: Arc<Analyzer>,
    effort: Effort,
}

impl AnalyzeApi {
    /// An API over `analyzer` (calibrate it first; the server answers
    /// only machines the analyzer already knows). Defaults to
    /// advertising [`Effort::Paper`] calibration — pass the real effort
    /// via [`AnalyzeApi::with_effort`] if the analyzer was calibrated
    /// more coarsely.
    pub fn new(analyzer: Arc<Analyzer>) -> AnalyzeApi {
        AnalyzeApi {
            analyzer,
            effort: Effort::Paper,
        }
    }

    /// Declare the effort the analyzer was calibrated with; requests
    /// asking for more are refused instead of silently downgraded.
    pub fn with_effort(mut self, effort: Effort) -> AnalyzeApi {
        self.effort = effort;
        self
    }

    /// Refuse requests wanting finer calibration than the server has.
    fn check_effort(&self, request: &AnalysisRequest) -> Result<(), ServiceError> {
        if request.options.calibration > self.effort {
            return Err(ServiceError::InvalidRequest(format!(
                "request asks for {:?} calibration but this server calibrated at {:?}",
                request.options.calibration, self.effort
            )));
        }
        Ok(())
    }

    fn analyze(&self, req: &Request) -> Response {
        let text = match req.body_utf8() {
            Ok(t) => t,
            Err(e) => return Response::error(400, &e.message()),
        };
        let doc = match Value::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("malformed JSON: {e}")),
        };
        match &doc {
            Value::Array(items) => {
                let parsed: Result<Vec<AnalysisRequest>, _> =
                    items.iter().map(AnalysisRequest::from_value).collect();
                let reqs = match parsed {
                    Ok(reqs) => reqs,
                    Err(e) => return Response::error(400, &e.to_string()),
                };
                // Effort refusals become per-request errors; the rest go
                // through the sharded batch path in request order.
                let admitted: Vec<AnalysisRequest> = reqs
                    .iter()
                    .filter(|r| self.check_effort(r).is_ok())
                    .cloned()
                    .collect();
                let mut answers = self.analyzer.analyze_batch(&admitted).into_iter();
                // Batch answers mirror `gpa-analyze`: healthy reports in
                // request order, failures degraded to `{"error"}`
                // elements — the transport never hides partial success.
                let _span = PhaseSpan::start(phase::SERIALIZE);
                let items: Vec<Value> = reqs
                    .iter()
                    .map(|r| {
                        let answer = match self.check_effort(r) {
                            Ok(()) => answers.next().expect("one answer per admitted request"),
                            Err(e) => Err(e),
                        };
                        match answer {
                            Ok(report) => report.to_value(),
                            Err(e) => {
                                Value::Object(vec![("error".into(), Value::String(e.to_string()))])
                            }
                        }
                    })
                    .collect();
                Response::json(200, Value::Array(items).to_string_pretty())
            }
            v => {
                let request = match AnalysisRequest::from_value(v) {
                    Ok(r) => r,
                    Err(e) => return Response::error(400, &e.to_string()),
                };
                let answer = self
                    .check_effort(&request)
                    .and_then(|()| self.analyzer.analyze(&request));
                match answer {
                    Ok(report) => {
                        let _span = PhaseSpan::start(phase::SERIALIZE);
                        Response::json(200, report.to_json())
                    }
                    // Every analysis failure is something the request
                    // asked for (unknown machine, out-of-range size,
                    // failed verification): a client error, not a 500.
                    Err(e) => Response::error(400, &e.to_string()),
                }
            }
        }
    }

    fn machines(&self) -> Response {
        let names = self
            .analyzer
            .machines()
            .into_iter()
            .map(Value::from)
            .collect();
        Response::json(
            200,
            Value::Object(vec![("machines".into(), Value::Array(names))]).to_string_pretty(),
        )
    }

    /// The workload zoo: static (the library is compiled in), but served
    /// as a route so clients can discover names/defaults before posting
    /// a `{"case": "named"}` request.
    fn workloads() -> Response {
        let items = gpa_service::zoo::WORKLOADS
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("name".into(), Value::from(w.name)),
                    ("description".into(), Value::from(w.description)),
                    ("default_n".into(), Value::from(w.default_n)),
                ])
            })
            .collect();
        Response::json(
            200,
            Value::Object(vec![("workloads".into(), Value::Array(items))]).to_string_pretty(),
        )
    }

    fn healthz(&self) -> Response {
        Response::json(
            200,
            Value::Object(vec![
                ("status".into(), Value::from("ok")),
                (
                    "machines".into(),
                    Value::from(self.analyzer.machines().len() as u32),
                ),
            ])
            .to_string_pretty(),
        )
    }

    fn stats(&self, ctx: &RequestContext<'_>) -> Response {
        let stats = ctx.stats;
        let mut fields = vec![
            ("served".into(), Value::Number(stats.served as f64)),
            ("errors".into(), Value::Number(stats.errors as f64)),
            ("rejected".into(), Value::Number(stats.rejected as f64)),
            ("timeouts".into(), Value::Number(stats.timeouts as f64)),
            (
                "deadline_expired".into(),
                Value::Number(stats.deadline_expired as f64),
            ),
            (
                "admission_rejected".into(),
                Value::Number(stats.admission_rejected as f64),
            ),
            (
                "queue_depth".into(),
                Value::Number(stats.queue_depth as f64),
            ),
            (
                "open_connections".into(),
                Value::Number(stats.open_connections as f64),
            ),
            (
                "idle_connections".into(),
                Value::Number(stats.idle_connections as f64),
            ),
            ("workers".into(), Value::Number(stats.workers as f64)),
            (
                "uptime_seconds".into(),
                Value::Number(ctx.telemetry.uptime_seconds() as f64),
            ),
            ("version".into(), Value::from(ServerTelemetry::version())),
            ("io_model".into(), Value::from(ctx.telemetry.io_model_str())),
        ];
        // Only present when the analyzer memoizes reports, so a scraper
        // can tell "cache off" from "cache cold".
        if let Some(cache) = self.analyzer.report_cache_stats() {
            fields.push((
                "report_cache".into(),
                Value::Object(vec![
                    ("hits".into(), Value::Number(cache.hits as f64)),
                    ("misses".into(), Value::Number(cache.misses as f64)),
                    ("evictions".into(), Value::Number(cache.evictions as f64)),
                    ("entries".into(), Value::Number(cache.entries as f64)),
                    ("bytes".into(), Value::Number(cache.bytes as f64)),
                ]),
            ));
        }
        Response::json(200, Value::Object(fields).to_string_pretty())
    }

    /// The Prometheus scrape: the server's registered metrics plus the
    /// stats-snapshot and report-cache families, rendered by
    /// [`ServerTelemetry::render`].
    fn metrics(&self, ctx: &RequestContext<'_>) -> Response {
        let text = ctx
            .telemetry
            .render(&ctx.stats, self.analyzer.report_cache_stats().as_ref());
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: text.into_bytes(),
        }
    }
}

impl Handler for AnalyzeApi {
    fn handle(&self, req: &Request, ctx: &RequestContext<'_>) -> Response {
        // Route on the path first so a wrong method gets a 405 naming
        // the right one, not a 404.
        let allowed: &'static str = match req.target.as_str() {
            "/v1/analyze" => "POST",
            "/v1/machines" | "/v1/workloads" | "/v1/stats" | "/v1/metrics" | "/healthz" => "GET",
            _ => return Response::error(404, &format!("no such path `{}`", req.target)),
        };
        if req.method != allowed {
            return Response::error(405, &format!("use {allowed} for `{}`", req.target))
                .with_header("Allow", allowed);
        }
        match req.target.as_str() {
            "/v1/analyze" => self.analyze(req),
            "/v1/machines" => self.machines(),
            "/v1/workloads" => Self::workloads(),
            "/v1/stats" => self.stats(ctx),
            "/v1/metrics" => self.metrics(ctx),
            "/healthz" => self.healthz(),
            _ => unreachable!("routed above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{IoModel, StatsSnapshot};

    fn api() -> AnalyzeApi {
        AnalyzeApi::new(Arc::new(Analyzer::new()))
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn stats0() -> StatsSnapshot {
        StatsSnapshot {
            served: 5,
            errors: 2,
            rejected: 1,
            timeouts: 7,
            deadline_expired: 6,
            admission_rejected: 8,
            queue_depth: 3,
            open_connections: 9,
            idle_connections: 1,
            workers: 4,
        }
    }

    fn ctx(telemetry: &ServerTelemetry) -> RequestContext<'_> {
        RequestContext {
            stats: stats0(),
            telemetry,
        }
    }

    #[test]
    fn routes_without_an_analyzer_entry() {
        let api = api();
        let t = ServerTelemetry::new(IoModel::Threads, None);
        assert_eq!(api.handle(&get("/healthz"), &ctx(&t)).status, 200);
        assert_eq!(api.handle(&get("/v1/machines"), &ctx(&t)).status, 200);
        assert_eq!(api.handle(&get("/nope"), &ctx(&t)).status, 404);
        let post = Request {
            method: "POST".into(),
            ..get("/healthz")
        };
        let resp = api.handle(&post, &ctx(&t));
        assert_eq!(resp.status, 405);
        assert!(resp.headers.contains(&("Allow".into(), "GET".into())));
    }

    #[test]
    fn stats_serialize_every_counter() {
        let api = api();
        let t = ServerTelemetry::new(IoModel::Reactor, None);
        let resp = api.handle(&get("/v1/stats"), &ctx(&t));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("served").unwrap().as_u64().unwrap(), 5);
        assert_eq!(v.get("errors").unwrap().as_u64().unwrap(), 2);
        assert_eq!(v.get("rejected").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.get("timeouts").unwrap().as_u64().unwrap(), 7);
        assert_eq!(v.get("deadline_expired").unwrap().as_u64().unwrap(), 6);
        assert_eq!(v.get("admission_rejected").unwrap().as_u64().unwrap(), 8);
        assert_eq!(v.get("queue_depth").unwrap().as_u64().unwrap(), 3);
        assert_eq!(v.get("open_connections").unwrap().as_u64().unwrap(), 9);
        assert_eq!(v.get("idle_connections").unwrap().as_u64().unwrap(), 1);
        assert_eq!(v.get("workers").unwrap().as_u64().unwrap(), 4);
        // The identity satellite: uptime, build version, io model.
        assert!(v.get("uptime_seconds").unwrap().as_u64().is_ok());
        assert_eq!(
            v.get("version").unwrap().as_str().unwrap(),
            env!("CARGO_PKG_VERSION")
        );
        assert_eq!(v.get("io_model").unwrap().as_str().unwrap(), "reactor");
        // No report cache enabled: the section is absent, not zeroed.
        assert!(v.get("report_cache").is_err());
    }

    #[test]
    fn stats_surface_report_cache_counters_when_enabled() {
        let mut analyzer = Analyzer::new();
        analyzer.enable_report_cache(gpa_service::ReportCacheConfig::default());
        let api = AnalyzeApi::new(Arc::new(analyzer));
        let t = ServerTelemetry::new(IoModel::Threads, None);
        let resp = api.handle(&get("/v1/stats"), &ctx(&t));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let cache = v.get("report_cache").unwrap();
        for field in ["hits", "misses", "evictions", "entries", "bytes"] {
            assert_eq!(cache.get(field).unwrap().as_u64().unwrap(), 0, "{field}");
        }
    }

    #[test]
    fn metrics_expose_server_and_cache_families() {
        let mut analyzer = Analyzer::new();
        analyzer.enable_report_cache(gpa_service::ReportCacheConfig::default());
        let api = AnalyzeApi::new(Arc::new(analyzer));
        let t = ServerTelemetry::new(IoModel::Threads, None);
        let resp = api.handle(&get("/v1/metrics"), &ctx(&t));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        let text = String::from_utf8(resp.body).unwrap();
        for family in [
            "gpa_requests_total 0\n",
            "gpa_request_duration_us_bucket{le=\"+Inf\"} 0\n",
            "gpa_request_phase_us_count{phase=\"handle\"} 0\n",
            "gpa_server_served_total 5\n",
            "gpa_server_errors_total 2\n",
            "gpa_report_cache_hits_total 0\n",
            "gpa_process_uptime_seconds",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        // Without a report cache the cache families disappear entirely
        // (absent, not zeroed — same contract as /v1/stats).
        let bare = api_no_cache_metrics(&t);
        assert!(!bare.contains("gpa_report_cache_"));
    }

    fn api_no_cache_metrics(t: &ServerTelemetry) -> String {
        let resp = api().handle(&get("/v1/metrics"), &ctx(t));
        String::from_utf8(resp.body).unwrap()
    }

    #[test]
    fn requests_beyond_the_server_effort_are_refused_not_downgraded() {
        let api = AnalyzeApi::new(Arc::new(Analyzer::new())).with_effort(Effort::Quick);
        let body = |calibration: &str| {
            format!(
                "{{\"kernel\": {{\"case\": \"matmul\", \"n\": 64, \"tile\": 16}}, \
                 \"machine\": \"gtx285\", \"options\": {{\"calibration\": \"{calibration}\"}}}}"
            )
        };
        let post = |payload: String| Request {
            method: "POST".into(),
            target: "/v1/analyze".into(),
            headers: Vec::new(),
            body: payload.into_bytes(),
        };
        let t = ServerTelemetry::new(IoModel::Threads, None);
        // Paper-effort request on a quick-effort server: refused with a
        // message naming both efforts.
        let resp = api.handle(&post(body("paper")), &ctx(&t));
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("Paper") && text.contains("Quick"), "{text}");
        // Matching effort passes the gate (and then fails on the empty
        // analyzer, proving the gate ran first).
        let resp = api.handle(&post(body("quick")), &ctx(&t));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("no calibrated machine"), "{text}");
        // In a batch, the refusal is an {"error"} element in order.
        let batch = format!("[{}, {}]", body("quick"), body("paper"));
        let resp = api.handle(&post(batch), &ctx(&t));
        assert_eq!(resp.status, 200);
        let doc = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let items = doc.as_array().unwrap();
        assert!(items[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("no calibrated machine"));
        assert!(items[1]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("calibration"));
    }

    #[test]
    fn analyze_rejects_bad_payloads_cleanly() {
        let api = api();
        let t = ServerTelemetry::new(IoModel::Threads, None);
        for (body, want) in [
            (&b"\xff\xfe"[..], "not valid UTF-8"),
            (b"{", "malformed JSON"),
            (b"{\"machine\": \"gtx285\"}", "missing"),
            (b"{\"kernel\": {\"case\": \"matmul\", \"n\": 64, \"tile\": 16}, \"machine\": \"gtx285\"}",
             "no calibrated machine"),
        ] {
            let req = Request {
                method: "POST".into(),
                target: "/v1/analyze".into(),
                headers: Vec::new(),
                body: body.to_vec(),
            };
            let resp = api.handle(&req, &ctx(&t));
            assert_eq!(resp.status, 400, "{want}");
            let text = String::from_utf8(resp.body).unwrap();
            assert!(text.contains(want), "`{text}` missing `{want}`");
        }
    }
}
