//! The event-driven connection engine: one thread multiplexing every
//! connection over `poll(2)`, in front of the same worker pool as the
//! threaded engine.
//!
//! Selected by `ServerConfig::io_model = IoModel::Reactor`. The point is
//! the C10K decoupling: a parked keep-alive connection costs one table
//! entry and one `pollfd` instead of a pinned worker thread, so
//! thousands of mostly-idle clients can sit on a pool of a few workers.
//!
//! # Shape
//!
//! * **Nonblocking everything.** The listener and every accepted socket
//!   run nonblocking; the loop sleeps only inside `poll(2)`, declared by
//!   hand via `extern "C"` FFI (the build image has no crates.io, so no
//!   `libc` crate — see the private `sys` module below).
//! * **Per-connection state machine.** `Reading` (accumulate bytes, run
//!   the incremental parser after every arrival) → `InFlight` (the
//!   parsed request sits in the job queue or a worker is running it) →
//!   `Writing` (flush the serialized response) → `Parked` (keep-alive,
//!   waiting for the next request) or `Draining` (discard unread input
//!   so an error response survives the close). Responses serialize
//!   through `http::response_bytes`, so the bytes on the wire are
//!   identical to the threaded path's by construction.
//! * **Deadline wheel.** Every connection carries at most one deadline —
//!   `read_timeout` while a request is in flight on the wire,
//!   `keep_alive_idle` while parked, a 2-second stall bound while
//!   draining — and queued jobs carry `request_deadline`. The poll
//!   timeout is the minimum over all of them; expiry answers 408 /
//!   silent-close / 503 exactly like the threaded engine's
//!   per-socket timeouts.
//! * **Admission control.** At `max_connections` open connections, new
//!   accepts are answered 503 immediately (counted in
//!   `admission_rejected`) instead of letting the backlog grow.
//! * **Self-pipe wakeup.** Workers finish requests on their own threads
//!   and push completions; a byte down the pipe interrupts `poll` so
//!   the loop writes the response out. Shutdown wakes the same way,
//!   stops accepting, closes idle connections, and drains in-flight
//!   work before the loop exits and the workers are joined.

use crate::http::{self, HttpError, ParseOutcome, Request, Response};
use crate::server::{micros, wants_keep_alive, Handler, Shared, MAX_REJECTORS};
use crate::telemetry::RequestOutcome;
use gpa_telemetry::{phase, trace, RequestTrace};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The hand-declared slice of the C interface the reactor needs:
/// `poll(2)` plus the pipe/fcntl trio for the self-pipe. Declared
/// directly because the build image has no crates.io access (no `libc`
/// crate); the values are the Linux ABI ones, with the small macOS
/// divergences gated by `target_os`.
mod sys {
    use std::os::raw::{c_int, c_void};

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[cfg(target_os = "macos")]
    pub type NfdsT = u32;
    #[cfg(not(target_os = "macos"))]
    pub type NfdsT = std::os::raw::c_ulong;

    pub const F_SETFD: c_int = 2;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const FD_CLOEXEC: c_int = 1;
    #[cfg(target_os = "macos")]
    pub const O_NONBLOCK: c_int = 0x0004;
    #[cfg(not(target_os = "macos"))]
    pub const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Bytes read per connection per poll round before yielding to the
/// other ready connections (poll is level-triggered, so the remainder
/// is re-reported immediately).
const READ_ROUND_BYTES: usize = 256 * 1024;

/// Unread-input budget while draining before an error-response close —
/// mirrors the threaded engine's `drain`.
const DRAIN_BUDGET: usize = 256 * 1024;

/// Stall bound between drain reads — mirrors the threaded engine's
/// 2-second drain read timeout.
const DRAIN_STALL: Duration = Duration::from_secs(2);

/// The self-pipe: workers (and `Server::shutdown`) write a byte to
/// interrupt `poll`; the loop drains it on wakeup. Both ends are
/// nonblocking — a full pipe means a wakeup is already pending, which
/// is exactly what the writer wanted.
pub(crate) struct Waker {
    read_fd: std::os::raw::c_int,
    write_fd: std::os::raw::c_int,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let mut fds = [0 as std::os::raw::c_int; 2];
        // SAFETY: `pipe` writes two fds into the array it is given.
        if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        for fd in fds {
            // SAFETY: plain fcntl flag updates on fds this process owns.
            let ok = unsafe {
                let flags = sys::fcntl(fd, sys::F_GETFL);
                flags >= 0
                    && sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) >= 0
                    && sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) >= 0
            };
            if !ok {
                return Err(io::Error::last_os_error()); // drop closes both ends
            }
        }
        Ok(waker)
    }

    /// Interrupt the poll loop (idempotent while a wakeup is pending).
    pub(crate) fn wake(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a live stack buffer to an fd we
        // own; EAGAIN (pipe full) is fine — a wakeup is already queued.
        let _ = unsafe { sys::write(self.write_fd, byte.as_ptr().cast(), 1) };
    }

    /// Consume pending wakeup bytes after poll reports the pipe readable.
    fn drain(&self) {
        let mut sink = [0u8; 64];
        // SAFETY: reading into a live stack buffer from an fd we own;
        // the loop ends on EAGAIN (negative return) or EOF.
        while unsafe { sys::read(self.read_fd, sink.as_mut_ptr().cast(), sink.len()) } > 0 {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct owns, exactly once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// A parsed request waiting for (or being run by) a worker.
struct Job {
    conn: u64,
    request: Request,
    enqueued: Instant,
    /// The request's trace (`parse` already recorded by `dispatch`).
    trace: RequestTrace,
    /// When the request's first bytes arrived, for the end-to-end total.
    started: Instant,
}

struct JobQueue {
    pending: VecDeque<Job>,
    closed: bool,
}

/// A finished response on its way back to the event loop, carrying
/// everything [`crate::telemetry::ServerTelemetry::finish_request`]
/// needs once the bytes are on the wire.
struct Completion {
    conn: u64,
    response: Response,
    trace: RequestTrace,
    method: String,
    target: String,
    started: Instant,
}

/// Telemetry held on a connection while its response flushes; recorded
/// by `flush` the moment the last byte is written, mirroring the point
/// where the threaded engine calls `finish_request`. Pre-parse answers
/// (408s, malformed requests) carry no trace, exactly like the threaded
/// path.
struct Finish {
    trace: Option<RequestTrace>,
    method: String,
    target: String,
    status: u16,
    bytes: usize,
    started: Instant,
    write_start: Instant,
}

/// State shared between the event loop and the reactor's worker pool.
struct ReactorShared {
    shared: Arc<Shared>,
    jobs: Mutex<JobQueue>,
    ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

/// Everything `Server::start` needs to own a running reactor.
pub(crate) struct Started {
    pub(crate) event_loop: JoinHandle<()>,
    pub(crate) workers: Vec<JoinHandle<()>>,
    pub(crate) waker: Arc<Waker>,
}

/// Spawn the event loop and its worker pool over an already-bound
/// listener.
pub(crate) fn start(
    listener: TcpListener,
    shared: Arc<Shared>,
    handler: Arc<dyn Handler>,
) -> io::Result<Started> {
    listener.set_nonblocking(true)?;
    let waker = Arc::new(Waker::new()?);
    let rs = Arc::new(ReactorShared {
        shared: Arc::clone(&shared),
        jobs: Mutex::new(JobQueue {
            pending: VecDeque::new(),
            closed: false,
        }),
        ready: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });
    let workers = (0..shared.workers)
        .map(|i| {
            let rs = Arc::clone(&rs);
            let handler = Arc::clone(&handler);
            std::thread::Builder::new()
                .name(format!("gpa-serve-worker-{i}"))
                .spawn(move || worker_loop(&rs, handler.as_ref()))
                .expect("spawn worker thread")
        })
        .collect();
    let event_loop = std::thread::Builder::new()
        .name("gpa-serve-reactor".into())
        .spawn(move || Reactor::new(listener, rs).run())
        .expect("spawn reactor thread");
    Ok(Started {
        event_loop,
        workers,
        waker,
    })
}

/// Pull jobs, run the handler, push completions, wake the loop. The
/// same panic/counting contract as the threaded `worker_loop`: a
/// handler panic answers 500, every response is counted before it is
/// written.
fn worker_loop(rs: &ReactorShared, handler: &dyn Handler) {
    loop {
        let job = {
            let mut jobs = rs.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = jobs.pending.pop_front() {
                    break Some(job);
                }
                if jobs.closed {
                    break None;
                }
                jobs = rs.ready.wait(jobs).expect("job queue poisoned");
            }
        };
        let Some(mut job) = job else {
            return; // shutdown, queue fully drained
        };
        rs.shared.jobs_queued.fetch_sub(1, Ordering::Relaxed);
        job.trace
            .record(phase::QUEUE, micros(job.enqueued.elapsed()));
        let deadline = rs.shared.config.request_deadline;
        let (response, req_trace) = if !deadline.is_zero() && job.enqueued.elapsed() >= deadline {
            // The event loop expires queued jobs proactively, but a job
            // can still cross the line between its scan and this pop.
            rs.shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
            let resp = deadline_response().with_header("X-Request-Id", job.trace.id());
            (resp, job.trace)
        } else {
            // The trace rides the worker's thread-local slot so the
            // handler's own spans (cache lookup, simulation phases)
            // nest inside `handle` — same contract as the threaded
            // engine.
            let _ = trace::install(job.trace);
            let span = trace::PhaseSpan::start(phase::HANDLE);
            let mut resp = std::panic::catch_unwind(AssertUnwindSafe(|| {
                handler.handle(&job.request, &rs.shared.request_context())
            }))
            .unwrap_or_else(|_| Response::error(500, "internal server error"));
            drop(span);
            let req_trace = trace::take().expect("trace installed above");
            resp = resp.with_header("X-Request-Id", req_trace.id());
            if job.request.header("x-gpa-server-timing").is_some() {
                resp = resp.with_header("Server-Timing", &req_trace.server_timing());
            }
            rs.shared.count_response(resp.status);
            (resp, req_trace)
        };
        rs.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                conn: job.conn,
                response,
                trace: req_trace,
                method: job.request.method,
                target: job.request.target,
                started: job.started,
            });
        rs.waker.wake();
    }
}

/// Where a connection sits in its lifecycle; one variant per poll
/// interest.
enum State {
    /// Accumulating request bytes (head or body); parse after every
    /// arrival. Interest: readable.
    Reading,
    /// A parsed request is queued or running; the socket is not polled
    /// (matching the threaded engine, which does not read while the
    /// handler runs).
    InFlight,
    /// Flushing the serialized response. Interest: writable.
    Writing {
        out: Vec<u8>,
        off: usize,
        then: After,
    },
    /// Keep-alive: between requests, waiting for the next first byte.
    /// Interest: readable.
    Parked,
    /// Response written, discarding unread input before closing so the
    /// response survives the trip (closing with unread data would RST).
    /// Interest: readable.
    Draining { budget: usize },
}

/// What to do once a `Writing` state finishes flushing.
#[derive(Clone, Copy)]
enum After {
    /// Keep-alive honored: park (or parse the pipelined next request).
    Keep,
    /// Clean close — the one request was fully read, a plain FIN is safe.
    Close,
    /// Half-close and drain unread input first (error responses,
    /// refused keep-alive), mirroring the threaded engine's
    /// write → `shutdown(Write)` → drain sequence.
    Drain,
}

struct Conn {
    stream: TcpStream,
    state: State,
    /// Received-but-unparsed bytes (and, while `InFlight`/`Writing`,
    /// any pipelined follow-up request).
    buf: Vec<u8>,
    /// Peer half-closed its sending side.
    eof: bool,
    /// Requests parsed off this connection so far (the keep-alive cap
    /// compares against this).
    served: usize,
    /// Whether the *current* request asked for keep-alive.
    client_keep: bool,
    deadline: Option<Instant>,
    /// When the current request's first bytes arrived (cleared once a
    /// request parses; reset for a pipelined follow-up).
    req_started: Option<Instant>,
    /// Telemetry to record when the response now flushing completes.
    finish: Option<Finish>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: State::Reading,
            buf: Vec::new(),
            eof: false,
            served: 0,
            client_keep: false,
            deadline: None,
            req_started: None,
            finish: None,
        }
    }

    fn interest(&self) -> i16 {
        match self.state {
            State::Reading | State::Parked | State::Draining { .. } => sys::POLLIN,
            State::Writing { .. } => sys::POLLOUT,
            State::InFlight => 0,
        }
    }
}

fn overload_response() -> Response {
    Response::error(503, "server is at capacity, retry later")
}

fn deadline_response() -> Response {
    Response::error(503, "request deadline exceeded while queued")
}

fn timeout_response() -> Response {
    Response::error(408, "timed out waiting for the rest of the request")
}

/// Outcome of trying to advance a connection's state machine.
enum Step {
    /// Blocked on I/O (or parked/in-flight); keep the connection.
    Wait,
    /// The connection is finished; drop it.
    Close,
}

struct Reactor {
    listener: Option<TcpListener>,
    rs: Arc<ReactorShared>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Accept backoff after a persistent accept failure (e.g. EMFILE):
    /// the listener is left out of the poll set until this passes.
    accept_cooldown: Option<Instant>,
    /// Shutdown observed: listener dropped, idle connections closed,
    /// loop exits once the table drains.
    draining: bool,
}

impl Reactor {
    fn new(listener: TcpListener, rs: Arc<ReactorShared>) -> Reactor {
        Reactor {
            listener: Some(listener),
            rs,
            conns: HashMap::new(),
            next_id: 0,
            accept_cooldown: None,
            draining: false,
        }
    }

    fn run(mut self) {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut order: Vec<u64> = Vec::new();
        loop {
            self.apply_completions();
            if !self.draining && self.rs.shared.stopping.load(Ordering::SeqCst) {
                self.draining = true;
                self.listener = None; // stop accepting; pending connects get reset
                                      // Idle connections have nothing to drain: close them now
                                      // instead of waiting out their idle windows.
                self.conns.retain(|_, conn| match conn.state {
                    State::Parked => false,
                    State::Reading => !conn.buf.is_empty(),
                    _ => true,
                });
            }
            if self.draining && self.conns.is_empty() {
                break;
            }

            fds.clear();
            order.clear();
            fds.push(sys::PollFd {
                fd: self.rs.waker.read_fd,
                events: sys::POLLIN,
                revents: 0,
            });
            let now = Instant::now();
            let cooling = self.accept_cooldown.is_some_and(|until| until > now);
            if !cooling {
                self.accept_cooldown = None;
            }
            let poll_listener = match (&self.listener, cooling) {
                (Some(listener), false) => {
                    fds.push(sys::PollFd {
                        fd: listener.as_raw_fd(),
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    true
                }
                _ => false,
            };
            let mut idle = 0usize;
            for (&id, conn) in &self.conns {
                if matches!(conn.state, State::Parked) {
                    idle += 1;
                }
                let events = conn.interest();
                if events != 0 {
                    order.push(id);
                    fds.push(sys::PollFd {
                        fd: conn.stream.as_raw_fd(),
                        events,
                        revents: 0,
                    });
                }
            }
            self.rs
                .shared
                .open_conns
                .store(self.conns.len(), Ordering::Relaxed);
            self.rs.shared.idle_conns.store(idle, Ordering::Relaxed);

            let timeout = self.poll_timeout(now);
            // SAFETY: `fds` is a live, exclusively-borrowed slice of
            // repr(C) pollfds; the kernel only writes their `revents`.
            let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NfdsT, timeout) };
            if rc < 0 {
                if io::Error::last_os_error().kind() != io::ErrorKind::Interrupted {
                    // Unexpected poll failure: back off instead of
                    // spinning a core on a persistent error.
                    std::thread::sleep(Duration::from_millis(50));
                }
                continue;
            }

            if fds[0].revents != 0 {
                self.rs.waker.drain();
            }
            if poll_listener && fds[1].revents != 0 {
                self.accept_ready();
            }
            let base = 1 + usize::from(poll_listener);
            for (i, &id) in order.iter().enumerate() {
                if fds[base + i].revents != 0 {
                    self.step(id);
                }
            }
            self.expire_deadlines();
        }

        self.rs.shared.open_conns.store(0, Ordering::Relaxed);
        self.rs.shared.idle_conns.store(0, Ordering::Relaxed);
        let mut jobs = self.rs.jobs.lock().expect("job queue poisoned");
        jobs.closed = true;
        self.rs.ready.notify_all();
    }

    /// Write out every response the workers have finished.
    fn apply_completions(&mut self) {
        let done = std::mem::take(&mut *self.rs.completions.lock().expect("completions poisoned"));
        for completion in done {
            self.deliver(completion);
        }
    }

    /// Start (and opportunistically finish) writing a completed
    /// request's response, parking its telemetry on the connection
    /// until the bytes are fully out.
    fn deliver(&mut self, completion: Completion) {
        let Completion {
            conn: id,
            response,
            trace,
            method,
            target,
            started,
        } = completion;
        let Some(mut conn) = self.conns.remove(&id) else {
            return; // connection died while the request ran
        };
        let cap = self.rs.shared.config.keep_alive_requests.max(1);
        let keep = conn.client_keep && conn.served < cap && response.status < 400 && !self.draining;
        let then = if keep {
            After::Keep
        } else if conn.client_keep {
            // The client asked for keep-alive we are refusing (cap
            // reached, error status): it may have pipelined a follow-up,
            // so drain before closing — same as the threaded path.
            After::Drain
        } else {
            After::Close
        };
        conn.finish = Some(Finish {
            trace: Some(trace),
            method,
            target,
            status: response.status,
            bytes: response.body.len(),
            started,
            write_start: Instant::now(),
        });
        start_response(&self.rs, &mut conn, &response, keep, then);
        if matches!(advance(&self.rs, &mut conn, id), Step::Wait) {
            self.conns.insert(id, conn);
        }
    }

    /// Drive one connection after poll reported its fd ready.
    fn step(&mut self, id: u64) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        if matches!(advance(&self.rs, &mut conn, id), Step::Wait) {
            self.conns.insert(id, conn);
        }
    }

    /// Accept everything the backlog has, applying admission control.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    // Same rationale as the threaded acceptor: without
                    // TCP_NODELAY, head-then-body writes stall ~40 ms on
                    // Nagle + delayed ACK for keep-alive peers.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue; // can't serve a blocking socket here
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    let mut conn = Conn::new(stream);
                    let max = self.rs.shared.config.max_connections;
                    if max > 0 && self.conns.len() >= max {
                        self.rs
                            .shared
                            .admission_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        if self.conns.len() >= max + MAX_REJECTORS {
                            // Overflow slots exhausted (a flood): cheap
                            // best-effort 503, then drop — bounded work
                            // beats guaranteed delivery, as in the
                            // threaded rejector cap.
                            let bytes = http::response_bytes(&overload_response(), false);
                            let _ = conn.stream.write(&bytes);
                            continue;
                        }
                        start_response(
                            &self.rs,
                            &mut conn,
                            &overload_response(),
                            false,
                            After::Drain,
                        );
                        if matches!(advance(&self.rs, &mut conn, id), Step::Wait) {
                            self.conns.insert(id, conn);
                        }
                        continue;
                    }
                    conn.deadline = Some(Instant::now() + self.rs.shared.config.read_timeout);
                    self.conns.insert(id, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Persistent failure (e.g. EMFILE): leave the
                    // listener out of the poll set briefly instead of
                    // spinning — the reactor's version of the threaded
                    // acceptor's 50 ms sleep.
                    self.accept_cooldown = Some(Instant::now() + Duration::from_millis(50));
                    return;
                }
            }
        }
    }

    /// Answer every expired deadline: 408 for mid-request stalls,
    /// silent close for idle sockets, 503 for requests that waited in
    /// the queue past `request_deadline`.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let due: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.deadline.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            let keep = match conn.state {
                State::Reading if !conn.buf.is_empty() => {
                    // A stall *after* request bytes started arriving is
                    // worth telling the client about — the threaded
                    // engine's `consumed > consumed_before` 408 path.
                    self.rs.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    let resp = timeout_response();
                    self.rs.shared.count_response(resp.status);
                    conn.finish = Some(Finish {
                        trace: None,
                        method: "-".into(),
                        target: "-".into(),
                        status: resp.status,
                        bytes: resp.body.len(),
                        started: conn.req_started.take().unwrap_or(now),
                        write_start: Instant::now(),
                    });
                    start_response(&self.rs, &mut conn, &resp, false, After::Drain);
                    matches!(advance(&self.rs, &mut conn, id), Step::Wait)
                }
                // Idle keep-alive reclaim, silent never-sent-a-byte
                // closes, write stalls, drain stalls: just close.
                _ => false,
            };
            if keep {
                self.conns.insert(id, conn);
            }
        }

        let request_deadline = self.rs.shared.config.request_deadline;
        if request_deadline.is_zero() {
            return;
        }
        // Jobs enqueue in arrival order, so expired ones sit at the
        // front. Expiring here (not just at worker pop) means a queued
        // request still gets its 503 on time when every worker is stuck
        // in a long-running handler.
        loop {
            let job = {
                let mut jobs = self.rs.jobs.lock().expect("job queue poisoned");
                match jobs.pending.front() {
                    Some(job) if now.duration_since(job.enqueued) >= request_deadline => {
                        jobs.pending.pop_front()
                    }
                    _ => None,
                }
            };
            let Some(mut job) = job else { break };
            self.rs.shared.jobs_queued.fetch_sub(1, Ordering::Relaxed);
            self.rs
                .shared
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            job.trace
                .record(phase::QUEUE, micros(job.enqueued.elapsed()));
            let response = deadline_response().with_header("X-Request-Id", job.trace.id());
            self.deliver(Completion {
                conn: job.conn,
                response,
                trace: job.trace,
                method: job.request.method,
                target: job.request.target,
                started: job.started,
            });
        }
    }

    /// The poll timeout in milliseconds: sleep exactly until the next
    /// deadline anywhere, or forever when nothing is pending.
    fn poll_timeout(&self, now: Instant) -> std::os::raw::c_int {
        let mut next: Option<Instant> = None;
        let mut merge = |candidate: Instant| {
            next = Some(match next {
                Some(t) if t <= candidate => t,
                _ => candidate,
            });
        };
        for conn in self.conns.values() {
            if let Some(deadline) = conn.deadline {
                merge(deadline);
            }
        }
        if let Some(until) = self.accept_cooldown {
            merge(until);
        }
        let request_deadline = self.rs.shared.config.request_deadline;
        if !request_deadline.is_zero() {
            let jobs = self.rs.jobs.lock().expect("job queue poisoned");
            if let Some(job) = jobs.pending.front() {
                merge(job.enqueued + request_deadline);
            }
        }
        match next {
            None => -1,
            Some(t) if t <= now => 0,
            // +1 rounds up so the deadline has actually passed when the
            // wheel fires; the cap keeps the cast to c_int safe.
            Some(t) => ((t - now).as_millis().min(60_000) as std::os::raw::c_int) + 1,
        }
    }
}

/// Run `conn`'s state machine until it blocks or finishes. This is the
/// whole per-connection protocol: reads, incremental parse, dispatch,
/// response writes, keep-alive transitions, drains.
fn advance(rs: &ReactorShared, conn: &mut Conn, id: u64) -> Step {
    loop {
        match conn.state {
            State::Parked => {
                if !slurp(rs, conn) {
                    return Step::Close;
                }
                if conn.buf.is_empty() && !conn.eof {
                    return Step::Wait; // spurious wakeup: stay parked
                }
                // First bytes of the next request (or a hangup): the
                // idle window ends, the full read budget applies.
                conn.state = State::Reading;
            }
            State::Reading => {
                if !slurp(rs, conn) {
                    return Step::Close;
                }
                match dispatch(rs, conn, id) {
                    Verdict::Wait => return Step::Wait,
                    Verdict::Close => return Step::Close,
                    Verdict::Continue => {}
                }
            }
            State::InFlight => return Step::Wait,
            State::Writing { .. } => match flush(rs, conn) {
                Verdict::Wait => return Step::Wait,
                Verdict::Close => return Step::Close,
                Verdict::Continue => {}
            },
            State::Draining { .. } => {
                return if drain_some(conn) {
                    Step::Wait
                } else {
                    Step::Close
                };
            }
        }
    }
}

enum Verdict {
    Wait,
    Close,
    Continue,
}

/// Read whatever the socket has (bounded per round), appending to the
/// connection buffer. Returns `false` on a hard I/O error — the
/// threaded engine's silent-close path for dead sockets.
fn slurp(rs: &ReactorShared, conn: &mut Conn) -> bool {
    if conn.eof {
        return true;
    }
    let mut scratch = [0u8; 16 * 1024];
    let mut round = READ_ROUND_BYTES;
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.eof = true;
                return true;
            }
            Ok(n) => {
                // The first bytes of a request start its end-to-end
                // clock (the threaded engine's `req_start`).
                if conn.req_started.is_none() {
                    conn.req_started = Some(Instant::now());
                }
                conn.buf.extend_from_slice(&scratch[..n]);
                // Fresh bytes restart the read clock, exactly like the
                // threaded engine's per-read socket timeout.
                conn.deadline = Some(Instant::now() + rs.shared.config.read_timeout);
                round = round.saturating_sub(n);
                if round == 0 {
                    return true; // level-triggered poll re-reports the rest
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Parse the buffered bytes and act on the verdict: queue a complete
/// request, wait for more bytes, or answer the error.
fn dispatch(rs: &ReactorShared, conn: &mut Conn, id: u64) -> Verdict {
    let parse_start = Instant::now();
    match http::parse_buffered(&conn.buf, conn.eof, rs.shared.config.max_body_bytes) {
        ParseOutcome::Incomplete => {
            if conn.eof {
                return Verdict::Close; // unreachable: eof parses always settle
            }
            Verdict::Wait
        }
        ParseOutcome::Request(request, consumed) => {
            // The reactor's `parse` span is the final (settling) parse
            // call — the wait for bytes shows up as wall-clock between
            // `started` and now instead, unlike the threaded engine
            // whose blocking read folds the wait into `parse`.
            let mut req_trace = RequestTrace::new();
            req_trace.record(phase::PARSE, micros(parse_start.elapsed()));
            let started = conn.req_started.take().unwrap_or(parse_start);
            conn.buf.drain(..consumed);
            conn.served += 1;
            conn.client_keep = wants_keep_alive(&request);
            if !conn.buf.is_empty() {
                // Pipelined follow-up bytes already arrived; its clock
                // starts now rather than never.
                conn.req_started = Some(Instant::now());
            }
            let queued = {
                let mut jobs = rs.jobs.lock().expect("job queue poisoned");
                if jobs.closed || jobs.pending.len() >= rs.shared.config.queue_depth {
                    false
                } else {
                    // Incremented before the job becomes visible, so a
                    // fast worker's decrement can never underflow.
                    rs.shared.jobs_queued.fetch_add(1, Ordering::Relaxed);
                    jobs.pending.push_back(Job {
                        conn: id,
                        request,
                        enqueued: Instant::now(),
                        trace: req_trace,
                        started,
                    });
                    true
                }
            };
            if queued {
                rs.ready.notify_one();
                conn.state = State::InFlight;
                conn.deadline = None;
                Verdict::Wait
            } else {
                // The job queue is the reactor's 503 threshold — the
                // same `queue_depth`, message, and counter as the
                // threaded acceptor's overload rejection.
                rs.shared.rejected.fetch_add(1, Ordering::Relaxed);
                start_response(rs, conn, &overload_response(), false, After::Drain);
                Verdict::Continue
            }
        }
        ParseOutcome::Failed(HttpError::Closed) => Verdict::Close,
        ParseOutcome::Failed(HttpError::Io(_)) => Verdict::Close,
        ParseOutcome::Failed(e) => {
            let resp = Response::error(e.status(), &e.message());
            rs.shared.count_response(resp.status);
            conn.finish = Some(Finish {
                trace: None,
                method: "-".into(),
                target: "-".into(),
                status: resp.status,
                bytes: resp.body.len(),
                started: conn.req_started.take().unwrap_or(parse_start),
                write_start: Instant::now(),
            });
            start_response(rs, conn, &resp, false, After::Drain);
            Verdict::Continue
        }
    }
}

/// Serialize `resp` and move the connection into `Writing`. The bytes
/// come from `http::response_bytes`, the same serializer the threaded
/// path writes through — byte identity by construction.
fn start_response(rs: &ReactorShared, conn: &mut Conn, resp: &Response, keep: bool, then: After) {
    conn.state = State::Writing {
        out: http::response_bytes(resp, keep),
        off: 0,
        then,
    };
    // An unwritable peer must not hold the connection forever; reuse
    // the read stall bound for the write direction.
    conn.deadline = Some(Instant::now() + rs.shared.config.read_timeout);
}

/// Push response bytes until done or blocked, then take the `After`
/// transition.
fn flush(rs: &ReactorShared, conn: &mut Conn) -> Verdict {
    let State::Writing { out, off, then } = &mut conn.state else {
        return Verdict::Close;
    };
    let then = *then;
    while *off < out.len() {
        match conn.stream.write(&out[*off..]) {
            Ok(0) => return Verdict::Close,
            Ok(n) => *off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.deadline = Some(Instant::now() + rs.shared.config.read_timeout);
                return Verdict::Wait;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Close,
        }
    }
    // The last byte just left: record the request exactly where the
    // threaded engine does (a response that never finishes writing is
    // never counted there either).
    if let Some(mut finish) = conn.finish.take() {
        if let Some(req_trace) = finish.trace.as_mut() {
            req_trace.record(phase::WRITE, micros(finish.write_start.elapsed()));
        }
        rs.shared.telemetry.finish_request(&RequestOutcome {
            trace: finish.trace.as_ref(),
            method: &finish.method,
            target: &finish.target,
            status: finish.status,
            bytes: finish.bytes,
            total: finish.started.elapsed(),
        });
    }
    match then {
        After::Keep => {
            if conn.buf.is_empty() && !conn.eof {
                conn.state = State::Parked;
                conn.deadline = Some(Instant::now() + rs.shared.config.keep_alive_idle);
                Verdict::Wait
            } else {
                // A pipelined follow-up already arrived (or the peer
                // hung up): parse it immediately.
                conn.state = State::Reading;
                conn.deadline = Some(Instant::now() + rs.shared.config.read_timeout);
                Verdict::Continue
            }
        }
        After::Close => Verdict::Close,
        After::Drain => {
            let _ = conn.stream.shutdown(Shutdown::Write);
            // Already-buffered bytes are part of the unread input being
            // discarded (the threaded path drops its BufReader the same
            // way).
            conn.buf.clear();
            conn.state = State::Draining {
                budget: DRAIN_BUDGET,
            };
            conn.deadline = Some(Instant::now() + DRAIN_STALL);
            Verdict::Continue
        }
    }
}

/// Discard unread input until EOF, an error, the byte budget, or (via
/// the deadline wheel) a 2-second stall. Returns `false` when the
/// connection should close now.
fn drain_some(conn: &mut Conn) -> bool {
    let State::Draining { budget } = &mut conn.state else {
        return false;
    };
    let mut scratch = [0u8; 4096];
    loop {
        if *budget == 0 {
            return false;
        }
        match conn.stream.read(&mut scratch) {
            Ok(0) => return false,
            Ok(n) => {
                *budget -= n.min(*budget);
                conn.deadline = Some(Instant::now() + DRAIN_STALL);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}
