//! Reactor soak: the scaling claim behind the event-driven engine.
//!
//! The thread-per-connection model pays one OS thread per open socket;
//! the reactor's whole reason to exist is that parked keep-alive
//! connections cost a `pollfd` and a buffer, nothing more. This test
//! parks **512 idle keep-alive connections** against a two-worker
//! reactor and then checks the properties that make that scaling real:
//!
//! * every connection is accepted, served once, and held open (no
//!   admission rejects, no errors);
//! * the stats gauges see all of them (`open_connections`,
//!   `idle_connections`);
//! * the process thread count stays **flat** while the 512 connections
//!   park (linux-only check via `/proc/self/status`);
//! * a fresh request threads through the parked crowd with bounded
//!   latency — idle sockets never occupy a worker;
//! * once `keep_alive_idle` elapses, the reactor reclaims every parked
//!   connection on its own (gauges drain to zero, sockets see EOF).
//!
//! Kept in one `#[test]` on purpose: the phases share the parked fleet,
//! and the fleet is the expensive part.
#![cfg(unix)]

use gpa_server::api::AnalyzeApi;
use gpa_server::client::Client;
use gpa_server::{IoModel, Server, ServerConfig};
use gpa_service::Analyzer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many connections to park. Well past any per-thread design's
/// comfort zone with a two-worker pool, comfortably inside the default
/// fd budget (each end of the pair costs one descriptor in-process).
const FLEET: usize = 512;

/// How long parked connections may idle before the reactor hangs up.
/// Long enough that the fleet survives its own setup on a slow CI
/// machine, short enough that the reclaim phase doesn't drag.
const IDLE: Duration = Duration::from_secs(3);

/// Current thread count of this process, from `/proc/self/status`.
/// `None` off Linux (the flat-thread-count check is skipped there).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Send one keep-alive `GET /healthz` and read exactly its response,
/// leaving the socket open and parked on the server side.
fn park(stream: &mut TcpStream) {
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: keep-alive\r\n\r\n")
        .expect("send healthz");
    // Responses here are small and single-packet in practice, but read
    // to the framed length so a short read can't leave response bytes
    // behind to confuse a later phase.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).expect("read healthz response");
        assert!(n > 0, "server hung up on a keep-alive connection");
        buf.extend_from_slice(&chunk[..n]);
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("utf8 head");
            assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
            let body_len: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::to_owned)
                })
                .expect("content-length")
                .trim()
                .parse()
                .expect("numeric content-length");
            if buf.len() >= head_end + 4 + body_len {
                assert_eq!(
                    buf.len(),
                    head_end + 4 + body_len,
                    "bytes beyond one response"
                );
                return;
            }
        }
    }
}

#[test]
fn five_hundred_twelve_parked_connections_cost_no_threads_and_reclaim() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            io_model: IoModel::Reactor,
            workers: 2,
            keep_alive_idle: IDLE,
            max_connections: FLEET + 64,
            ..ServerConfig::default()
        },
        Arc::new(AnalyzeApi::new(Arc::new(Analyzer::new()))),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Baseline AFTER startup: the pool and reactor threads exist, and
    // from here on the count must not move with connection count.
    let threads_before = thread_count();

    let mut fleet: Vec<TcpStream> = Vec::with_capacity(FLEET);
    for i in 0..FLEET {
        let mut stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        park(&mut stream);
        fleet.push(stream);
    }

    // The gauges see the whole parked fleet. They are republished at
    // the top of each reactor loop iteration, so give the reactor a
    // moment to wrap around after the last park — the client reading a
    // response proves the write happened, not that the loop has come
    // back to the gauge store yet (a real window on a one-core box).
    let gauge_deadline = Instant::now() + Duration::from_secs(2);
    let stats = loop {
        let stats = server.stats();
        if stats.idle_connections >= FLEET || Instant::now() >= gauge_deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        stats.idle_connections >= FLEET,
        "expected >= {FLEET} parked connections, gauges saw {stats:?}"
    );
    assert!(
        stats.open_connections >= stats.idle_connections,
        "{stats:?}"
    );
    assert_eq!(stats.served, FLEET as u64, "{stats:?}");
    assert_eq!(stats.admission_rejected, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");

    // Flat thread count: parked sockets must not have hired anybody.
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        assert_eq!(
            before, after,
            "thread count moved while {FLEET} connections parked"
        );
    }

    // A fresh request gets a worker promptly — 512 idle sockets hold no
    // worker hostage. The bound is deliberately loose (slow CI), but a
    // blocked pool would time out, not dawdle.
    let client = Client::new(addr.to_string());
    let t0 = Instant::now();
    let resp = client.get("/healthz").expect("probe through parked fleet");
    assert_eq!(resp.status, 200);
    let latency = t0.elapsed();
    assert!(
        latency < Duration::from_secs(2),
        "healthz took {latency:?} with {FLEET} parked connections"
    );

    // Reclaim: past the idle deadline the reactor hangs up on its own.
    // Poll the gauge rather than sleeping blind — reclaim is driven by
    // poll timeouts, not a hidden background thread.
    let deadline = Instant::now() + IDLE + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.idle_connections == 0 && stats.open_connections == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "parked connections never reclaimed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The client side observes the hangup as clean EOF, not an error.
    for (i, stream) in fleet.iter_mut().enumerate() {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {}
            other => panic!("connection #{i}: expected EOF after idle reclaim, got {other:?}"),
        }
    }
    drop(fleet);

    let stats = server.shutdown();
    assert_eq!(stats.served, FLEET as u64 + 1, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
}
