//! Protocol-level behavior of the connection engine, tested against
//! small deterministic handlers: malformed requests, oversized bodies,
//! unknown paths, wrong methods, queue-full 503s, and graceful-shutdown
//! draining. No analysis work happens here — the analyzer-specific
//! behavior is covered by `e2e.rs`.
//!
//! Every test runs under **both** I/O models ([`IoModel::Threads`] and,
//! on unix, [`IoModel::Reactor`]): the reactor's contract is that no
//! client — well-behaved or hostile — can tell the engines apart, down
//! to the stats counters.

use gpa_json::Value;
use gpa_server::api::AnalyzeApi;
use gpa_server::client::Client;
use gpa_server::http::{Request, Response};
use gpa_server::server::{IoModel, RequestContext, Server, ServerConfig};
use gpa_service::Analyzer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Run `test` once per available I/O model. The reactor only exists on
/// unix; elsewhere the thread engine is the whole matrix.
fn for_each_model(test: impl Fn(IoModel)) {
    let mut models = vec![IoModel::Threads];
    if cfg!(unix) {
        models.push(IoModel::Reactor);
    }
    for model in models {
        test(model);
    }
}

/// An API server over an uncalibrated analyzer (routing behavior only).
fn api_server(config: ServerConfig) -> Server {
    Server::start(
        "127.0.0.1:0",
        config,
        Arc::new(AnalyzeApi::new(Arc::new(Analyzer::new()))),
    )
    .expect("bind loopback")
}

/// Raw socket exchange: write `bytes`, read the full response text.
fn raw_roundtrip(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn malformed_and_oversized_requests_get_correct_statuses() {
    for_each_model(|io| {
        let server = api_server(ServerConfig {
            max_body_bytes: 1024,
            io_model: io,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();

        // Not HTTP at all → 400.
        let resp = raw_roundtrip(addr, b"NOT-HTTP\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400 "), "{io:?}: {resp}");

        // Unsupported framing → 400.
        let resp = raw_roundtrip(
            addr,
            b"POST /v1/analyze HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 400 "), "{io:?}: {resp}");

        // A body over the ceiling → 413, even though the body was sent.
        let mut oversized = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 2048\r\n\r\n".to_vec();
        oversized.extend(vec![b'x'; 2048]);
        let resp = raw_roundtrip(addr, &oversized);
        assert!(resp.starts_with("HTTP/1.1 413 "), "{io:?}: {resp}");
        assert!(resp.contains("exceeds the 1024-byte limit"), "{resp}");

        let client = Client::new(addr.to_string());
        // Unknown path → 404.
        assert_eq!(client.get("/v2/analyze").unwrap().status, 404);
        // Known path, wrong method → 405 with Allow.
        let resp = client.post_json("/healthz", "{}").unwrap();
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header("allow"), Some("GET"));
        let resp = client.get("/v1/analyze").unwrap();
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header("allow"), Some("POST"));

        let stats = server.shutdown();
        assert_eq!(stats.served, 0, "{io:?}");
        assert_eq!(stats.errors, 6, "{io:?}");
    });
}

/// A trivial 200-everything handler for connection-behavior tests.
fn echo_handler() -> Arc<dyn gpa_server::server::Handler> {
    Arc::new(|req: &Request, _: &RequestContext| {
        Response::json(200, format!("{{\"path\": \"{}\"}}", req.target))
    })
}

#[test]
fn keep_alive_answers_many_requests_on_one_socket() {
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                io_model: io,
                ..ServerConfig::default()
            },
            echo_handler(),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        let mut conn = client.connect().expect("keep-alive connect");
        for i in 0..10 {
            let resp = conn.get(&format!("/req{i}")).expect("keep-alive roundtrip");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.header("connection"),
                Some("keep-alive"),
                "{io:?} req {i}"
            );
            assert_eq!(
                resp.body_str().unwrap(),
                format!("{{\"path\": \"/req{i}\"}}")
            );
        }

        let stats = server.shutdown();
        assert_eq!((stats.served, stats.errors), (10, 0), "{io:?}");
    });
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                keep_alive_requests: 3,
                io_model: io,
                ..ServerConfig::default()
            },
            echo_handler(),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        let mut conn = client.connect().expect("keep-alive connect");
        for i in 0..2 {
            let resp = conn.get("/again").unwrap();
            assert_eq!(
                resp.header("connection"),
                Some("keep-alive"),
                "{io:?} req {i}"
            );
        }
        // The capped (3rd) response still succeeds but announces the close…
        let resp = conn.get("/last").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("close"), "{io:?}");
        // …and the socket is then really closed: the next roundtrip fails.
        assert!(conn.get("/dead").is_err(), "{io:?}");

        let stats = server.shutdown();
        assert_eq!((stats.served, stats.errors), (3, 0), "{io:?}");
    });
}

#[test]
fn keep_alive_idle_timeout_reclaims_the_worker() {
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                keep_alive_idle: Duration::from_millis(100),
                io_model: io,
                ..ServerConfig::default()
            },
            echo_handler(),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        let mut conn = client.connect().expect("keep-alive connect");
        assert_eq!(conn.get("/first").unwrap().status, 200);
        // Sit idle past the window; the server hangs up…
        std::thread::sleep(Duration::from_millis(400));
        assert!(conn.get("/tardy").is_err(), "{io:?}");
        // …and the (single) worker is free again for new connections.
        assert_eq!(client.get("/fresh").unwrap().status, 200, "{io:?}");

        server.shutdown();
    });
}

#[test]
fn errors_close_even_under_keep_alive() {
    for_each_model(|io| {
        let server = api_server(ServerConfig {
            workers: 1,
            io_model: io,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();

        // Two well-formed keep-alive requests to an unknown path on one
        // socket: the 404 must carry Connection: close, and everything after
        // the first request must go unanswered (read_to_string sees exactly
        // one response before EOF).
        let two = b"GET /nope HTTP/1.1\r\nConnection: keep-alive\r\n\r\n\
                    GET /nope HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let resp = raw_roundtrip(addr, two);
        assert!(resp.starts_with("HTTP/1.1 404 "), "{io:?}: {resp}");
        assert!(resp.contains("Connection: close"), "{io:?}: {resp}");
        assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{io:?}: {resp}");

        // Clients that do not opt in keep the one-request contract even on a
        // healthy exchange.
        let plain = b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let resp = raw_roundtrip(addr, plain);
        assert!(resp.starts_with("HTTP/1.1 200 "), "{io:?}: {resp}");
        assert!(resp.contains("Connection: close"), "{io:?}: {resp}");
        assert_eq!(resp.matches("HTTP/1.1").count(), 1, "{io:?}: {resp}");

        server.shutdown();
    });
}

#[test]
fn connection_token_lists_negotiate_keep_alive() {
    // RFC 7230 §6.1: Connection carries a comma-separated token list.
    // `keep-alive, TE` opts in; a `close` token anywhere is
    // authoritative no matter what else rides along.
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                keep_alive_idle: Duration::from_millis(100),
                io_model: io,
                ..ServerConfig::default()
            },
            echo_handler(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        // Two pipelined requests whose Connection header lists extra
        // tokens: both must be answered on the one socket, the first with
        // an explicit keep-alive acknowledgement.
        let two = b"GET /a HTTP/1.1\r\nConnection: keep-alive, TE\r\n\r\n\
                    GET /b HTTP/1.1\r\nConnection: Keep-Alive , trailers\r\n\r\n";
        let resp = raw_roundtrip(addr, two);
        assert_eq!(resp.matches("HTTP/1.1 200").count(), 2, "{io:?}: {resp}");
        assert!(resp.contains("Connection: keep-alive"), "{io:?}: {resp}");

        // `close` wins even when keep-alive is also present: exactly one
        // answer, marked close, then EOF.
        let mixed = b"GET /a HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n\
                      GET /b HTTP/1.1\r\n\r\n";
        let resp = raw_roundtrip(addr, mixed);
        assert_eq!(resp.matches("HTTP/1.1 200").count(), 1, "{io:?}: {resp}");
        assert!(resp.contains("Connection: close"), "{io:?}: {resp}");

        let stats = server.shutdown();
        assert_eq!((stats.served, stats.errors), (3, 0), "{io:?}");
    });
}

#[test]
fn stalled_request_heads_get_408_and_idle_sockets_do_not() {
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                read_timeout: Duration::from_millis(300),
                io_model: io,
                ..ServerConfig::default()
            },
            echo_handler(),
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        // A connection that sends part of a request head and stalls: the
        // server owes the client a diagnosis, not a silent hangup.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"GET /x HT").expect("partial head");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 408 "), "{io:?}: {response}");
        assert!(response.contains("timed out"), "{io:?}: {response}");
        drop(stream);

        // A connection that sends *nothing* is just a speculative socket
        // (browser preconnect, health probe): closed silently, not counted.
        let mut idle = TcpStream::connect(addr).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut nothing = String::new();
        idle.read_to_string(&mut nothing).expect("read EOF");
        assert_eq!(nothing, "", "{io:?}: idle close must carry no bytes");

        let stats = server.shutdown();
        assert_eq!(stats.timeouts, 1, "{io:?}: only the mid-head stall counts");
        assert_eq!(stats.served, 0, "{io:?}");
    });
}

#[test]
fn handler_panics_become_500s_and_the_worker_survives() {
    for_each_model(|io| {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                io_model: io,
                ..ServerConfig::default()
            },
            Arc::new(|req: &Request, _: &RequestContext| {
                if req.target == "/boom" {
                    panic!("handler exploded");
                }
                Response::json(200, "{}")
            }),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        assert_eq!(client.get("/boom").unwrap().status, 500, "{io:?}");
        // The single worker must still be alive to answer this.
        assert_eq!(client.get("/fine").unwrap().status, 200, "{io:?}");
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.errors), (1, 1), "{io:?}");
    });
}

/// A handler whose requests block until the test opens the gate —
/// making "worker busy" and "queue occupied" deterministic states.
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn handler(self: &Arc<Gate>) -> Arc<dyn gpa_server::server::Handler> {
        let gate = Arc::clone(self);
        Arc::new(move |_: &Request, _: &RequestContext| {
            gate.entered.fetch_add(1, Ordering::SeqCst);
            let mut open = gate.open.lock().unwrap();
            while !*open {
                open = gate.opened.wait(open).unwrap();
            }
            Response::json(200, "{\"done\": true}")
        })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    /// Spin until `n` requests have entered the handler.
    fn await_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "handler never entered");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Spin until the queue holds exactly `n` connections.
fn await_queue_depth(server: &Server, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queue_depth != n {
        assert!(
            Instant::now() < deadline,
            "queue never reached depth {n}: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn queue_full_rejects_with_503_and_overload_is_counted() {
    for_each_model(|io| {
        let gate = Gate::new();
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                io_model: io,
                ..ServerConfig::default()
            },
            gate.handler(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();

        std::thread::scope(|scope| {
            // A: occupies the single worker (blocked inside the handler).
            let a = {
                let addr = addr.clone();
                scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
            };
            gate.await_entered(1);

            // B: occupies the single queue slot.
            let b = {
                let addr = addr.clone();
                scope.spawn(move || Client::new(addr).get("/b").unwrap().status)
            };
            await_queue_depth(&server, 1);

            // C: over quota → an immediate 503, no queueing, no handler work.
            let c = Client::new(addr.clone()).get("/c").unwrap();
            assert_eq!(c.status, 503, "{io:?}");
            let doc = Value::parse(c.body_str().unwrap()).unwrap();
            assert!(doc
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("capacity"));

            // The flood is over: let A and B complete normally.
            gate.release();
            assert_eq!(a.join().unwrap(), 200, "{io:?}");
            assert_eq!(b.join().unwrap(), 200, "{io:?}");
        });
        assert_eq!(
            gate.entered.load(Ordering::SeqCst),
            2,
            "{io:?}: only A and B may reach the handler"
        );

        let stats = server.shutdown();
        assert_eq!(stats.served, 2, "{io:?}");
        assert_eq!(stats.rejected, 1, "{io:?}");
        assert_eq!(stats.errors, 0, "{io:?}");
    });
}

#[test]
fn malformed_custom_kernels_are_http_400s_never_500s() {
    use gpa_hw::Machine;
    use gpa_ubench::ThroughputCurves;

    for_each_model(|io| {
        // Synthetic curves suffice: every request below fails validation
        // before the model would consult them.
        let curves = ThroughputCurves {
            machine_name: "GeForce GTX 285".into(),
            warps: vec![1, 32],
            instr: std::array::from_fn(|_| vec![1e9, 1e10]),
            smem: vec![1e10, 1e11],
        };
        let mut analyzer = Analyzer::new();
        analyzer.install(Machine::gtx285(), curves).unwrap();
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                io_model: io,
                ..ServerConfig::default()
            },
            Arc::new(AnalyzeApi::new(Arc::new(analyzer))),
        )
        .expect("bind loopback");
        let client = Client::new(server.local_addr().to_string());

        let wrap = |kernel: &str| format!(r#"{{"kernel": {kernel}, "machine": "gtx285"}}"#);
        for (body, want) in [
            // Unknown mnemonic: an AsmError with its source line, not a panic.
            (
                wrap(
                    r#"{"case": "custom",
                        "asm": ".kernel x\n.threads 32\n    warp.drive r0\n    exit\n",
                        "launch": {"grid": 1, "block": 32}}"#,
                ),
                "warp.drive",
            ),
            // Branch-target overflow caught by the hardened parser.
            (
                wrap(
                    r#"{"case": "custom",
                        "asm": ".kernel x\n.threads 32\n    bra 4294967296\n    exit\n",
                        "launch": {"grid": 1, "block": 32}}"#,
                ),
                "out of range",
            ),
            // Oversized memory region: rejected before any allocation.
            (
                wrap(
                    r#"{"case": "custom", "asm": "    exit\n",
                        "launch": {"grid": 1, "block": 32},
                        "memory": [{"name": "m", "len": 1099511627776,
                                    "init": {"kind": "zero"}}]}"#,
                ),
                "limit",
            ),
            // Parameter/register mismatch: ld.param past the declared block.
            (
                wrap(
                    r#"{"case": "custom",
                        "asm": ".kernel x\n.threads 32\n.param 4\n    ld.param.b32 r0, c[0x8]\n    exit\n",
                        "launch": {"grid": 1, "block": 32}, "params": [0]}"#,
                ),
                "param",
            ),
            // Wire-level garbage in the memory image.
            (
                wrap(
                    r#"{"case": "custom", "asm": "    exit\n",
                        "launch": {"grid": 1, "block": 32},
                        "memory": [{"name": "m", "len": 64, "init": {"kind": "entropy"}}]}"#,
                ),
                "entropy",
            ),
        ] {
            let resp = client.post_json("/v1/analyze", &body).unwrap();
            // 400 (typed error), never 500 (which would mean catch_unwind
            // swallowed a panic).
            assert_eq!(resp.status, 400, "{want}: {}", resp.body_str().unwrap());
            assert!(
                resp.body_str().unwrap().contains(want),
                "`{}` does not mention `{want}`",
                resp.body_str().unwrap()
            );
        }

        let stats = server.shutdown();
        assert_eq!(stats.served, 0, "{io:?}");
    });
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    for_each_model(|io| {
        let gate = Gate::new();
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_depth: 4,
                io_model: io,
                ..ServerConfig::default()
            },
            gate.handler(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();

        std::thread::scope(|scope| {
            // A in-flight, B queued.
            let a = {
                let addr = addr.clone();
                scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
            };
            gate.await_entered(1);
            let b = {
                let addr = addr.clone();
                scope.spawn(move || Client::new(addr).get("/b").unwrap().status)
            };
            await_queue_depth(&server, 1);

            // Open the gate a beat after shutdown starts, so the drain
            // provably begins while work is still queued and in flight.
            let release = {
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(100));
                    gate.release();
                })
            };
            let stats = server.shutdown();
            release.join().unwrap();

            // Both the in-flight and the queued request got real answers.
            assert_eq!(a.join().unwrap(), 200, "{io:?}");
            assert_eq!(b.join().unwrap(), 200, "{io:?}");
            assert_eq!(stats.served, 2, "{io:?}");
            assert_eq!(stats.queue_depth, 0, "{io:?}");
        });
    });
}

/// Reactor-only semantics: the open-connection ceiling answers 503 at
/// accept time and counts separately from queue-full rejections.
#[cfg(unix)]
#[test]
fn reactor_admission_control_rejects_excess_connections() {
    let gate = Gate::new();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_connections: 2,
            io_model: IoModel::Reactor,
            ..ServerConfig::default()
        },
        gate.handler(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        // Two connections occupy the whole admission budget: one in the
        // handler, one queued.
        let a = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
        };
        gate.await_entered(1);
        let b = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/b").unwrap().status)
        };
        await_queue_depth(&server, 1);

        // A third connection is over the ceiling: 503 before a single
        // request byte is read.
        let c = Client::new(addr.clone()).get("/c").unwrap();
        assert_eq!(c.status, 503);
        assert!(c.body_str().unwrap().contains("capacity"));

        gate.release();
        assert_eq!(a.join().unwrap(), 200);
        assert_eq!(b.join().unwrap(), 200);
    });

    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.admission_rejected, 1);
    assert_eq!(stats.rejected, 0, "admission is not a queue-full rejection");
}

/// Reactor-only semantics: a parsed request that waits in the queue past
/// `request_deadline` is answered 503 and counted as expired, without
/// reaching the handler.
#[cfg(unix)]
#[test]
fn reactor_request_deadline_expires_queued_work() {
    let gate = Gate::new();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            request_deadline: Duration::from_millis(150),
            io_model: IoModel::Reactor,
            ..ServerConfig::default()
        },
        gate.handler(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        // A pins the single worker well past B's deadline.
        let a = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
        };
        gate.await_entered(1);

        // B parses, queues, and can only age: its deadline must fire
        // while A still holds the worker.
        let b = Client::new(addr.clone()).get("/b").unwrap();
        assert_eq!(b.status, 503, "{}", b.body_str().unwrap());
        assert!(b.body_str().unwrap().contains("deadline"));

        gate.release();
        assert_eq!(a.join().unwrap(), 200);
    });
    assert_eq!(
        gate.entered.load(Ordering::SeqCst),
        1,
        "the expired request must never reach the handler"
    );

    let stats = server.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.errors, 0, "expiry is its own ledger, not an error");
}

#[test]
fn every_handled_response_carries_a_unique_request_id() {
    for_each_model(|io| {
        let server = api_server(ServerConfig {
            io_model: io,
            ..ServerConfig::default()
        });
        let client = Client::new(server.local_addr().to_string());

        let mut ids = std::collections::HashSet::new();
        for i in 0..5 {
            let resp = client.get("/healthz").unwrap();
            let id = resp
                .header("x-request-id")
                .expect("X-Request-Id on every handled response")
                .to_string();
            assert!(!id.is_empty(), "{io:?}");
            assert!(ids.insert(id), "{io:?} req {i}: request ids must be unique");
        }

        // Server-Timing is opt-in: absent by default, present (with the
        // server phases) when the request carries x-gpa-server-timing.
        let plain = client.get("/healthz").unwrap();
        assert_eq!(plain.header("server-timing"), None, "{io:?}");
        let resp = raw_roundtrip(
            server.local_addr(),
            b"GET /healthz HTTP/1.1\r\nx-gpa-server-timing: 1\r\n\r\n",
        );
        assert!(resp.contains("X-Request-Id: "), "{io:?}: {resp}");
        assert!(resp.contains("Server-Timing: "), "{io:?}: {resp}");
        assert!(resp.contains("handle;dur="), "{io:?}: {resp}");

        server.shutdown();
    });
}

#[test]
fn metrics_exposition_is_identical_across_io_models() {
    // One series-name shape per model; compared at the end.
    let shapes: std::cell::RefCell<Vec<Vec<String>>> = std::cell::RefCell::new(Vec::new());
    for_each_model(|io| {
        let server = api_server(ServerConfig {
            io_model: io,
            workers: 2,
            ..ServerConfig::default()
        });
        let client = Client::new(server.local_addr().to_string());
        for _ in 0..3 {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        assert_eq!(client.get("/nope").unwrap().status, 404); // error path too

        // finish_request lands a hair after the response bytes reach the
        // client (and each scrape counts itself once finished), so poll
        // until a scrape shows the books balanced: at least the 4
        // requests above, with the histogram agreeing with the counter.
        let deadline = Instant::now() + Duration::from_secs(10);
        let (text, requests) = loop {
            let text = client
                .get("/v1/metrics")
                .unwrap()
                .body_str()
                .unwrap()
                .to_string();
            let value = |prefix: &str| -> Option<u64> {
                text.lines()
                    .find(|l| l.starts_with(prefix))
                    .and_then(|l| l.rsplit(' ').next())
                    .and_then(|v| v.parse().ok())
            };
            let requests = value("gpa_requests_total ").unwrap_or(0);
            if requests >= 4
                && value("gpa_request_duration_us_count ") == Some(requests)
                && value("gpa_request_duration_us_bucket{le=\"+Inf\"} ") == Some(requests)
            {
                break (text, requests);
            }
            assert!(
                Instant::now() < deadline,
                "{io:?}: books never balanced:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(requests >= 4, "{io:?}");
        shapes.borrow_mut().push(
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| {
                    l.rsplit_once(' ')
                        .map_or(l, |(series, _)| series)
                        .to_string()
                })
                .collect(),
        );
        server.shutdown();
    });
    let shapes = shapes.into_inner();
    if shapes.len() == 2 {
        assert_eq!(
            shapes[0], shapes[1],
            "metric names and labels must not depend on the io model"
        );
    }
}

#[test]
fn slow_requests_warn_with_a_phase_breakdown_that_adds_up() {
    // One model suffices: the WARN promotion and span accounting live in
    // finish_request, which both engines share.
    let capture = Arc::new(Mutex::new(Vec::new()));
    gpa_telemetry::log::set_capture(Some(Arc::clone(&capture)));
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            slow_request_ms: Some(10),
            ..ServerConfig::default()
        },
        Arc::new(|_: &Request, _: &RequestContext| {
            std::thread::sleep(Duration::from_millis(30));
            Response::json(200, "{}")
        }),
    )
    .expect("bind loopback");
    let client = Client::new(server.local_addr().to_string());
    let resp = client.get("/slow").unwrap();
    let id = resp.header("x-request-id").unwrap().to_string();
    // shutdown joins the workers, so the access line is captured by now.
    server.shutdown();
    gpa_telemetry::log::set_capture(None);

    let lines = capture.lock().unwrap();
    let needle = format!("id={id}");
    let line = lines
        .iter()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no access line for {id} in {lines:?}"));
    assert!(line.contains("WARN"), "{line}");
    assert!(line.contains("slow request"), "{line}");
    assert!(line.contains("status=200"), "{line}");
    let field = |key: &str| -> u64 {
        let prefix = format!("{key}=");
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(prefix.as_str()))
            .unwrap_or_else(|| panic!("missing {key} in {line}"))
            .parse()
            .unwrap()
    };
    let total = field("total_us");
    let sum = field("parse_us") + field("queue_us") + field("handle_us") + field("write_us");
    assert!(total >= 30_000, "slept 30ms but total_us={total}");
    // The acceptance bound: the four server phases account for the
    // request within 10% of wall clock.
    assert!(
        sum * 10 >= total * 9 && sum <= total + total / 10,
        "phases sum to {sum}us vs total {total}us: {line}"
    );
}
