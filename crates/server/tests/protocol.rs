//! Protocol-level behavior of the connection engine, tested against
//! small deterministic handlers: malformed requests, oversized bodies,
//! unknown paths, wrong methods, queue-full 503s, and graceful-shutdown
//! draining. No analysis work happens here — the analyzer-specific
//! behavior is covered by `e2e.rs`.

use gpa_json::Value;
use gpa_server::api::AnalyzeApi;
use gpa_server::client::Client;
use gpa_server::http::{Request, Response};
use gpa_server::server::{Server, ServerConfig, StatsSnapshot};
use gpa_service::Analyzer;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An API server over an uncalibrated analyzer (routing behavior only).
fn api_server(config: ServerConfig) -> Server {
    Server::start(
        "127.0.0.1:0",
        config,
        Arc::new(AnalyzeApi::new(Arc::new(Analyzer::new()))),
    )
    .expect("bind loopback")
}

/// Raw socket exchange: write `bytes`, read the full response text.
fn raw_roundtrip(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn malformed_and_oversized_requests_get_correct_statuses() {
    let server = api_server(ServerConfig {
        max_body_bytes: 1024,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Not HTTP at all → 400.
    let resp = raw_roundtrip(addr, b"NOT-HTTP\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // Unsupported framing → 400.
    let resp = raw_roundtrip(
        addr,
        b"POST /v1/analyze HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // A body over the ceiling → 413, even though the body was sent.
    let mut oversized = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 2048\r\n\r\n".to_vec();
    oversized.extend(vec![b'x'; 2048]);
    let resp = raw_roundtrip(addr, &oversized);
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");
    assert!(resp.contains("exceeds the 1024-byte limit"), "{resp}");

    let client = Client::new(addr.to_string());
    // Unknown path → 404.
    assert_eq!(client.get("/v2/analyze").unwrap().status, 404);
    // Known path, wrong method → 405 with Allow.
    let resp = client.post_json("/healthz", "{}").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    let resp = client.get("/v1/analyze").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    let stats = server.shutdown();
    assert_eq!(stats.served, 0);
    assert_eq!(stats.errors, 6);
}

#[test]
fn handler_panics_become_500s_and_the_worker_survives() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        Arc::new(|req: &Request, _: StatsSnapshot| {
            if req.target == "/boom" {
                panic!("handler exploded");
            }
            Response::json(200, "{}")
        }),
    )
    .expect("bind loopback");
    let client = Client::new(server.local_addr().to_string());

    assert_eq!(client.get("/boom").unwrap().status, 500);
    // The single worker must still be alive to answer this.
    assert_eq!(client.get("/fine").unwrap().status, 200);
    let stats = server.shutdown();
    assert_eq!((stats.served, stats.errors), (1, 1));
}

/// A handler whose requests block until the test opens the gate —
/// making "worker busy" and "queue occupied" deterministic states.
struct Gate {
    open: Mutex<bool>,
    opened: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: Mutex::new(false),
            opened: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn handler(self: &Arc<Gate>) -> Arc<dyn gpa_server::server::Handler> {
        let gate = Arc::clone(self);
        Arc::new(move |_: &Request, _: StatsSnapshot| {
            gate.entered.fetch_add(1, Ordering::SeqCst);
            let mut open = gate.open.lock().unwrap();
            while !*open {
                open = gate.opened.wait(open).unwrap();
            }
            Response::json(200, "{\"done\": true}")
        })
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    /// Spin until `n` requests have entered the handler.
    fn await_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "handler never entered");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Spin until the queue holds exactly `n` connections.
fn await_queue_depth(server: &Server, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queue_depth != n {
        assert!(
            Instant::now() < deadline,
            "queue never reached depth {n}: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn queue_full_rejects_with_503_and_overload_is_counted() {
    let gate = Gate::new();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..ServerConfig::default()
        },
        gate.handler(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        // A: occupies the single worker (blocked inside the handler).
        let a = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
        };
        gate.await_entered(1);

        // B: occupies the single queue slot.
        let b = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/b").unwrap().status)
        };
        await_queue_depth(&server, 1);

        // C: over quota → an immediate 503, no queueing, no handler work.
        let c = Client::new(addr.clone()).get("/c").unwrap();
        assert_eq!(c.status, 503);
        let doc = Value::parse(c.body_str().unwrap()).unwrap();
        assert!(doc
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("capacity"));

        // The flood is over: let A and B complete normally.
        gate.release();
        assert_eq!(a.join().unwrap(), 200);
        assert_eq!(b.join().unwrap(), 200);
    });
    assert_eq!(
        gate.entered.load(Ordering::SeqCst),
        2,
        "only A and B may reach the handler"
    );

    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.errors, 0);
}

#[test]
fn graceful_shutdown_drains_queued_work() {
    let gate = Gate::new();
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            ..ServerConfig::default()
        },
        gate.handler(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        // A in-flight, B queued.
        let a = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/a").unwrap().status)
        };
        gate.await_entered(1);
        let b = {
            let addr = addr.clone();
            scope.spawn(move || Client::new(addr).get("/b").unwrap().status)
        };
        await_queue_depth(&server, 1);

        // Open the gate a beat after shutdown starts, so the drain
        // provably begins while work is still queued and in flight.
        let release = {
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                gate.release();
            })
        };
        let stats = server.shutdown();
        release.join().unwrap();

        // Both the in-flight and the queued request got real answers.
        assert_eq!(a.join().unwrap(), 200);
        assert_eq!(b.join().unwrap(), 200);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.queue_depth, 0);
    });
}
