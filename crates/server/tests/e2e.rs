//! End-to-end acceptance: the real `gpa-serve` binary, driven over
//! loopback with the built-in client, answers the checked-in sample
//! request with report JSON **byte-identical** to the in-process wire
//! serialization — which `crates/service/tests/cli_roundtrip.rs`
//! separately proves byte-identical to `gpa-analyze` output, so server
//! and CLI answers are interchangeable. Concurrent clients get the same
//! bytes as sequential in-process calls.

use gpa_hw::Machine;
use gpa_json::Value;
use gpa_server::api::AnalyzeApi;
use gpa_server::client::Client;
use gpa_server::server::{Server, ServerConfig};
use gpa_service::{AnalysisRequest, Analyzer, KernelSpec, ReportCacheConfig};
use gpa_ubench::MeasureOpts;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

fn sample_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../service/data/sample_request.json")
}

fn sample_custom_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../service/data/sample_custom_kernel.json")
}

fn quick_analyzer() -> Analyzer {
    let mut analyzer = Analyzer::new();
    analyzer.calibrate(Machine::gtx285(), MeasureOpts::quick());
    analyzer
}

/// A running `gpa-serve` child whose process dies with the test.
struct ServeGuard {
    child: Child,
    addr: String,
}

impl ServeGuard {
    fn spawn(extra_args: &[&str]) -> ServeGuard {
        let cache_dir =
            std::env::temp_dir().join(format!("gpa-serve-e2e-cache-{}", std::process::id()));
        let mut child = Command::new(env!("CARGO_BIN_EXE_gpa-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--machines",
                "gtx285",
                "--effort",
                "quick",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
            ])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn gpa-serve");
        // The first stdout line carries the ephemeral port.
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected startup line `{line}`"))
            .to_owned();
        ServeGuard { child, addr }
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone())
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn binary_answers_the_sample_request_byte_identically() {
    let server = ServeGuard::spawn(&[]);
    let client = server.client();

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let health_doc = Value::parse(health.body_str().unwrap()).unwrap();
    assert_eq!(health_doc.get("status").unwrap().as_str().unwrap(), "ok");
    assert_eq!(health_doc.get("machines").unwrap().as_u64().unwrap(), 1);

    let machines = client.get("/v1/machines").expect("machines");
    assert_eq!(machines.status, 200);
    let doc = Value::parse(machines.body_str().unwrap()).unwrap();
    let names = doc.get("machines").unwrap().as_array().unwrap();
    assert_eq!(names.len(), 1);
    assert_eq!(names[0].as_str().unwrap(), "GeForce GTX 285");

    // The acceptance bar: the HTTP answer to the checked-in sample
    // request is byte-identical to the in-process wire serialization
    // (and therefore, via cli_roundtrip.rs, to `gpa-analyze` stdout).
    let sample = std::fs::read_to_string(sample_path()).expect("sample request");
    let response = client.post_json("/v1/analyze", &sample).expect("analyze");
    assert_eq!(
        response.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&response.body)
    );
    assert_eq!(response.header("content-type"), Some("application/json"));
    let request = AnalysisRequest::from_json(&sample).expect("sample parses");
    let expected = quick_analyzer()
        .analyze(&request)
        .expect("in-process answer");
    assert_eq!(response.body_str().unwrap(), expected.to_json());

    let stats = client.get("/v1/stats").expect("stats");
    let doc = Value::parse(stats.body_str().unwrap()).unwrap();
    // healthz + machines + analyze answered 200 before this call.
    assert!(doc.get("served").unwrap().as_u64().unwrap() >= 3);
    assert_eq!(doc.get("errors").unwrap().as_u64().unwrap(), 0);
    assert_eq!(doc.get("rejected").unwrap().as_u64().unwrap(), 0);
    assert!(doc.get("workers").unwrap().as_u64().unwrap() >= 1);

    // A request wanting finer calibration than the server holds is
    // refused, never silently answered from the quick-effort curves.
    let mut paper = request.clone();
    paper.options.calibration = gpa_service::Effort::Paper;
    let refused = client
        .post_json("/v1/analyze", &paper.to_json())
        .expect("refusal roundtrip");
    assert_eq!(refused.status, 400);
    assert!(
        refused.body_str().unwrap().contains("calibrated at Quick"),
        "{}",
        refused.body_str().unwrap()
    );
}

#[test]
fn binary_serves_custom_kernels_byte_identically() {
    let server = ServeGuard::spawn(&[]);
    let client = server.client();

    // A kernel the server was never hand-wired for: the checked-in saxpy
    // sample rides the portable kernel encoding, and the HTTP answer —
    // dynamic flops, traffic attribution, and the readback block
    // included — must be byte-identical to the in-process answer.
    let sample = std::fs::read_to_string(sample_custom_path()).expect("custom sample");
    let response = client.post_json("/v1/analyze", &sample).expect("analyze");
    assert_eq!(
        response.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&response.body)
    );
    let request = AnalysisRequest::from_json(&sample).expect("custom sample parses");
    assert!(matches!(request.kernel, KernelSpec::Custom(_)));
    let expected = quick_analyzer()
        .analyze(&request)
        .expect("in-process answer");
    assert!(expected.flops > 0);
    assert!(!expected.outputs.is_empty());
    assert_eq!(response.body_str().unwrap(), expected.to_json());

    // Batch sharding treats custom kernels like any other request:
    // custom + case study + a failing request mix in one array, with
    // answers in order.
    let case = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
    let bad = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "no-such-gpu");
    let batch =
        Value::Array(vec![request.to_value(), case.to_value(), bad.to_value()]).to_string_pretty();
    let response = client.post_json("/v1/analyze", &batch).expect("batch");
    assert_eq!(response.status, 200);
    let doc = Value::parse(response.body_str().unwrap()).unwrap();
    let items = doc.as_array().unwrap();
    assert_eq!(items.len(), 3);
    assert_eq!(items[0].to_string_pretty(), expected.to_json());
    assert!(items[1].get("analysis").is_ok(), "case study answered");
    assert!(items[2].get("error").is_ok(), "failure stays isolated");
}

#[test]
#[cfg(unix)]
fn reactor_binary_answers_byte_identically_to_threads() {
    // The acceptance bar for `--io-model reactor`: the same request
    // posted to both engines yields byte-identical bodies — report
    // JSON, batch arrays, and error documents alike. The two children
    // share one curve-cache directory, so calibration happens once.
    let threads = ServeGuard::spawn(&["--io-model", "threads"]);
    let reactor = ServeGuard::spawn(&["--io-model", "reactor"]);

    let sample = std::fs::read_to_string(sample_path()).expect("sample request");
    let custom = std::fs::read_to_string(sample_custom_path()).expect("custom sample");
    let bad = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "no-such-gpu");
    let batch = Value::Array(vec![
        AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285").to_value(),
        bad.to_value(),
    ])
    .to_string_pretty();

    for (label, path, body) in [
        ("healthz", "/healthz", None),
        ("machines", "/v1/machines", None),
        ("sample", "/v1/analyze", Some(&sample)),
        ("custom", "/v1/analyze", Some(&custom)),
        ("batch", "/v1/analyze", Some(&batch)),
        ("garbage", "/v1/analyze", Some(&"not json".to_string())),
    ] {
        let (a, b) = match body {
            Some(body) => (
                threads.client().post_json(path, body).expect(label),
                reactor.client().post_json(path, body).expect(label),
            ),
            None => (
                threads.client().get(path).expect(label),
                reactor.client().get(path).expect(label),
            ),
        };
        assert_eq!(a.status, b.status, "{label}");
        assert_eq!(
            a.body_str().unwrap(),
            b.body_str().unwrap(),
            "{label}: bodies must be byte-identical across io models"
        );
    }

    // The reactor's stats document carries the connection gauges.
    let stats = reactor.client().get("/v1/stats").expect("stats");
    let doc = Value::parse(stats.body_str().unwrap()).unwrap();
    assert!(doc.get("open_connections").unwrap().as_u64().unwrap() >= 1);
    assert!(doc.get("idle_connections").is_ok());
    assert_eq!(doc.get("deadline_expired").unwrap().as_u64().unwrap(), 0);
    assert_eq!(doc.get("admission_rejected").unwrap().as_u64().unwrap(), 0);
}

#[test]
fn batch_arrays_mirror_gpa_analyze_output() {
    let server = ServeGuard::spawn(&[]);
    let client = server.client();

    let good = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
    let bad = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "no-such-gpu");
    let batch = Value::Array(vec![good.to_value(), bad.to_value()]).to_string_pretty();
    let response = client.post_json("/v1/analyze", &batch).expect("batch");
    // Per-request failures degrade to {"error"} elements, not a failed
    // transport status — exactly like gpa-analyze batch output.
    assert_eq!(response.status, 200);

    let analyzer = quick_analyzer();
    let expected = Value::Array(vec![
        analyzer.analyze(&good).unwrap().to_value(),
        Value::Object(vec![(
            "error".into(),
            Value::String(analyzer.analyze(&bad).unwrap_err().to_string()),
        )]),
    ])
    .to_string_pretty();
    assert_eq!(response.body_str().unwrap(), expected);
}

#[test]
fn report_cache_serves_repeat_traffic_byte_identically() {
    // The real binary with its default configuration: the report cache
    // is on, so the second posting of the same request is a hit — and
    // the hit must be byte-identical to the miss.
    let server = ServeGuard::spawn(&[]);
    let client = server.client();
    // Not the checked-in sample: that one asks for `verify`, which is
    // deliberately uncacheable. Plain requests are the cached shape.
    let body = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285").to_json();

    let first = client.post_json("/v1/analyze", &body).expect("first post");
    assert_eq!(
        first.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&first.body)
    );
    let second = client.post_json("/v1/analyze", &body).expect("second post");
    assert_eq!(second.status, 200);
    assert_eq!(first.body_str().unwrap(), second.body_str().unwrap());

    let stats = client.get("/v1/stats").expect("stats");
    let doc = Value::parse(stats.body_str().unwrap()).unwrap();
    let cache = doc.get("report_cache").expect("cache block present");
    assert!(
        cache.get("hits").unwrap().as_u64().unwrap() >= 1,
        "{}",
        stats.body_str().unwrap()
    );
    assert!(cache.get("entries").unwrap().as_u64().unwrap() >= 1);
}

#[test]
fn no_report_cache_flag_disables_the_cache() {
    let server = ServeGuard::spawn(&["--no-report-cache"]);
    let client = server.client();

    // Still a fully working server…
    let sample = std::fs::read_to_string(sample_path()).expect("sample request");
    let resp = client.post_json("/v1/analyze", &sample).expect("analyze");
    assert_eq!(resp.status, 200);

    // …but the stats document carries no cache block at all.
    let stats = client.get("/v1/stats").expect("stats");
    let doc = Value::parse(stats.body_str().unwrap()).unwrap();
    assert!(
        doc.get("report_cache").is_err(),
        "{}",
        stats.body_str().unwrap()
    );
}

#[test]
fn in_process_cache_counters_are_exact() {
    // An in-process server with a memory-only cache: no disk tier, no
    // sibling processes, so hit/miss/entry counts are exact.
    let mut analyzer = quick_analyzer();
    analyzer.enable_report_cache(ReportCacheConfig::default());
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(AnalyzeApi::new(Arc::new(analyzer))),
    )
    .expect("bind loopback");
    let client = Client::new(server.local_addr().to_string());

    let request = AnalysisRequest::new(KernelSpec::Matmul { n: 64, tile: 16 }, "gtx285");
    let first = client
        .post_json("/v1/analyze", &request.to_json())
        .expect("miss");
    let second = client
        .post_json("/v1/analyze", &request.to_json())
        .expect("hit");
    assert_eq!(first.status, 200);
    assert_eq!(first.body_str().unwrap(), second.body_str().unwrap());

    let stats = client.get("/v1/stats").expect("stats");
    let doc = Value::parse(stats.body_str().unwrap()).unwrap();
    let cache = doc.get("report_cache").expect("cache block present");
    assert_eq!(cache.get("hits").unwrap().as_u64().unwrap(), 1);
    assert_eq!(cache.get("misses").unwrap().as_u64().unwrap(), 1);
    assert_eq!(cache.get("entries").unwrap().as_u64().unwrap(), 1);
    assert!(cache.get("bytes").unwrap().as_u64().unwrap() > 0);

    server.shutdown();
}

#[test]
fn concurrent_clients_get_sequential_answers() {
    // In-process server so the test owns the calibration (and the
    // comparison analyzer shares it bit-exactly by construction).
    let analyzer = Arc::new(quick_analyzer());
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(AnalyzeApi::new(Arc::clone(&analyzer))),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // Distinct problem sizes so answers cannot be confused across
    // threads; each thread hammers its own request a few times.
    let specs = [
        KernelSpec::Matmul { n: 64, tile: 16 },
        KernelSpec::Matmul { n: 128, tile: 16 },
        KernelSpec::Matmul { n: 64, tile: 8 },
        KernelSpec::Matmul { n: 128, tile: 32 },
        KernelSpec::Matmul { n: 256, tile: 16 },
        KernelSpec::Matmul { n: 192, tile: 16 },
        KernelSpec::Matmul { n: 64, tile: 32 },
        KernelSpec::Matmul { n: 128, tile: 8 },
    ];
    let num_specs = specs.len() as u64;
    std::thread::scope(|scope| {
        for spec in specs {
            let addr = addr.clone();
            let analyzer = Arc::clone(&analyzer);
            scope.spawn(move || {
                let request = AnalysisRequest::new(spec, "gtx285");
                let expected = analyzer.analyze(&request).expect("in-process").to_json();
                let client = Client::new(addr);
                for _ in 0..3 {
                    let response = client
                        .post_json("/v1/analyze", &request.to_json())
                        .expect("roundtrip");
                    assert_eq!(response.status, 200, "{:?}", request.kernel);
                    assert_eq!(
                        response.body_str().unwrap(),
                        expected,
                        "{:?}",
                        request.kernel
                    );
                }
            });
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.served, num_specs * 3);
    assert_eq!(stats.errors, 0);
}
