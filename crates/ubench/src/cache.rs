//! Shared on-disk cache for measured [`ThroughputCurves`].
//!
//! Calibration is the expensive step of the paper's workflow, and several
//! processes want to amortize it against the same `results/` directory:
//! the `gpa-bench` exhibit binaries, the `gpa-analyze` CLI, and the
//! `gpa-serve` HTTP front end. This module is the one implementation they
//! share. Entries are keyed by a content hash of the full [`Machine`]
//! description plus the effort knobs of [`MeasureOpts`], so per-SKU and
//! per-effort curves never collide; the `threads` selection is excluded
//! because it changes wall-clock, not results.
//!
//! Writes are **atomic**: the JSON is staged to a process-unique temp
//! file in the same directory and `rename`d into place, so a reader
//! never observes a torn entry even while another process is writing the
//! same key. A cache entry that fails to read, parse, or validate is
//! treated as absent (falling back to recalibration), never a panic —
//! concurrent `gpa-serve` / `gpa-analyze` processes can share one
//! directory safely.

use crate::{MeasureOpts, ThroughputCurves};
use gpa_hw::Machine;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The workspace-relative default cache directory (`results/` at the
/// repository root) shared by the bench harness, the CLI, and the
/// server. Created on first use by [`load_or_measure`].
pub fn default_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// 64-bit FNV-1a (dependency-free stable content hash). Public so
/// other caches keyed the same way — notably the report cache in
/// `gpa-service` — hash with the identical function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Generation counter folded into every cache key. Bump it whenever a
/// measurement-code change alters the curves a given `(machine, opts)`
/// produces: processes built after the bump then see old entries as
/// misses and recalibrate, instead of silently serving stale curves
/// measured by an older binary.
// Generation 4: the atomic-unit component changed report content (new
// `atomic` time, contention factor, causes), so reports memoized by
// older binaries must not be served.
pub const CACHE_GENERATION: u32 = 4;

/// Content-hashed cache file for one `(machine, effort)` combination:
/// `<dir>/curves-<name-slug>-<hash>.json`.
///
/// The hash covers [`CACHE_GENERATION`], every [`Machine`] field (via
/// its `Debug` rendering — a complete fingerprint with no hand-listed,
/// silently missing fields), and the effort knobs of [`MeasureOpts`]
/// (`unroll`, `iters`, `dense`).
pub fn cache_path(dir: &Path, machine: &Machine, opts: &MeasureOpts) -> PathBuf {
    let fingerprint = format!(
        "gen={CACHE_GENERATION}|{machine:?}|unroll={} iters={} dense={}",
        opts.unroll, opts.iters, opts.dense
    );
    let slug: String = machine
        .name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    dir.join(format!(
        "curves-{slug}-{:016x}.json",
        fnv1a(fingerprint.as_bytes())
    ))
}

/// Load the cached curves at `path` if they exist, parse, and were
/// measured on `machine`. Any failure reads as a miss.
fn load(path: &Path, machine: &Machine) -> Option<ThroughputCurves> {
    let text = fs::read_to_string(path).ok()?;
    let curves = ThroughputCurves::from_json(&text).ok()?;
    (curves.machine_name == machine.name).then_some(curves)
}

/// Persist `curves` at `path` atomically: write a process-unique temp
/// file in the target directory, then `rename` over `path` (atomic on
/// POSIX — concurrent writers race benignly, last rename wins, and no
/// reader ever sees a partial file). Errors are swallowed: the cache is
/// an optimization, and the measured curves are already in hand.
fn store(path: &Path, curves: &ThroughputCurves) {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let Ok(json) = curves.to_json() else {
        return; // non-finite measurement: not representable, skip caching
    };
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    let temp = path.with_file_name(format!(
        "{name}.tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if fs::write(&temp, json).is_ok() && fs::rename(&temp, path).is_err() {
        let _ = fs::remove_file(&temp);
    }
}

/// Load the curves for `(machine, opts)` from the cache under `dir`,
/// measuring and caching them on a miss (including a torn or stale
/// entry, which falls back to recalibration rather than panicking).
///
/// The measurement honors `opts.threads`; sample points are independent,
/// so the curves — and the cache key — are identical at any thread count.
pub fn load_or_measure(dir: &Path, machine: &Machine, opts: MeasureOpts) -> ThroughputCurves {
    let _ = fs::create_dir_all(dir);
    let path = cache_path(dir, machine, &opts);
    if let Some(curves) = load(&path, machine) {
        return curves;
    }
    eprintln!(
        "measuring throughput curves (cached at {})...",
        path.display()
    );
    let curves = ThroughputCurves::measure_with(machine, opts);
    store(&path, &curves);
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gpa-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn miss_measures_then_hit_loads_identical_curves() {
        let dir = temp_dir("roundtrip");
        let machine = Machine::gtx285();
        let opts = MeasureOpts::quick();
        let fresh = load_or_measure(&dir, &machine, opts);
        assert!(cache_path(&dir, &machine, &opts).is_file());
        let cached = load_or_measure(&dir, &machine, opts);
        // JSON round-trips are bit-exact, so a cache hit is
        // indistinguishable from a fresh measurement.
        assert_eq!(fresh, cached);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_foreign_entries_fall_back_to_recalibration() {
        let dir = temp_dir("torn");
        let machine = Machine::gtx285();
        let opts = MeasureOpts::quick();
        let path = cache_path(&dir, &machine, &opts);
        // A torn write: truncated JSON must read as a miss, not a panic.
        fs::write(&path, "{\"machine_name\": \"GeForce GT").unwrap();
        let curves = load_or_measure(&dir, &machine, opts);
        assert_eq!(curves.machine_name, machine.name);
        // ...and the recovery rewrote the entry in place.
        let healed = load(&path, &machine).expect("entry healed");
        assert_eq!(healed, curves);
        // An entry measured on a different machine also reads as a miss.
        let mut renamed = curves.clone();
        renamed.machine_name = "Some Other GPU".into();
        store(&path, &renamed);
        assert!(load(&path, &machine).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_leaves_no_temp_files_behind() {
        let dir = temp_dir("tempfiles");
        let machine = Machine::gtx285();
        let opts = MeasureOpts::quick();
        let _ = load_or_measure(&dir, &machine, opts);
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
