//! Synthetic global-memory benchmark (paper §4.3, Figure 3).
//!
//! The paper found global bandwidth too complex for a closed-form model
//! and instead *runs a synthetic benchmark with the same configuration* —
//! the same number of blocks, block size, and memory transactions per
//! thread — and reads the bandwidth off that. This module is that
//! instrument: a streaming, fully-coalesced read kernel parameterized by
//! `(blocks, threads_per_block, transactions_per_thread)`.

use gpa_hw::{KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use std::sync::Arc;

/// Benchmark shape: the three factors paper §4.3 identifies as what global
/// bandwidth is sensitive to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GmemConfig {
    /// Number of blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads: u32,
    /// 4-byte loads per thread.
    pub trans_per_thread: u32,
}

impl GmemConfig {
    /// Convenience constructor.
    pub fn new(blocks: u32, threads: u32, trans_per_thread: u32) -> GmemConfig {
        GmemConfig {
            blocks,
            threads,
            trans_per_thread,
        }
    }

    /// Total bytes read by the whole launch.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.threads) * u64::from(self.trans_per_thread) * 4
    }
}

/// Build the streaming-read kernel: grid-strided, fully coalesced 4-byte
/// loads, unrolled ×4 for memory-level parallelism (×2 when fewer
/// transactions are requested).
///
/// # Errors
///
/// Propagates builder errors.
pub fn kernel(cfg: GmemConfig) -> Result<Kernel, BuildError> {
    let unroll = if cfg.trans_per_thread.is_multiple_of(4) {
        4
    } else if cfg.trans_per_thread.is_multiple_of(2) {
        2
    } else {
        1
    };
    let iters = cfg.trans_per_thread / unroll;

    let mut b = KernelBuilder::new("ub_gmem_stream");
    b.set_threads(cfg.threads);
    let buf_p = b.param_alloc();

    let counter = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    let tid = b.alloc_reg()?;
    let tmp = b.alloc_reg()?;
    b.mov_imm(counter, 0);
    // addr = buf + 4 * (ctaid * ntid + tid)
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(addr, SpecialReg::CtaIdX);
    b.s2r(tmp, SpecialReg::NTidX);
    b.imad(addr, Src::Reg(addr), Src::Reg(tmp), Src::Reg(tid));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    b.ld_param(tmp, buf_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    // Stride between a thread's consecutive accesses: the whole grid row.
    let stride = b.alloc_reg()?;
    b.mov_imm(stride, cfg.blocks * cfg.threads * 4 * unroll);

    let dsts: Vec<_> = (0..unroll)
        .map(|_| b.alloc_reg())
        .collect::<Result<_, _>>()?;
    b.label("loop");
    for (j, d) in dsts.iter().enumerate() {
        let off = (j as u32 * cfg.blocks * cfg.threads * 4) as i32;
        b.ld_global(*d, MemAddr::new(Some(addr), off), Width::B32);
    }
    b.iadd(addr, Src::Reg(addr), Src::Reg(stride));
    b.iadd(counter, Src::Reg(counter), Src::Imm(1));
    b.setp(
        Pred(0),
        CmpOp::Lt,
        NumTy::S32,
        Src::Reg(counter),
        Src::Imm(iters as i32),
    );
    b.bra_if(Pred(0), false, "loop");
    b.exit();
    b.finish()
}

/// Run the synthetic benchmark and return the sustained bandwidth in
/// bytes/second.
///
/// # Panics
///
/// Panics if kernel construction or simulation fails.
pub fn measure(machine: &Machine, cfg: GmemConfig) -> f64 {
    let k = kernel(cfg).expect("gmem microbenchmark kernel");
    let launch = LaunchConfig::new_1d(cfg.blocks, cfg.threads);
    let mut gmem = GlobalMemory::new();
    let buf = gmem.alloc(cfg.total_bytes().max(4), 128);
    let mut sim = FunctionalSim::new(machine, &k, launch).expect("launchable");
    sim.set_params(&[buf as u32]);
    sim.collect_traces(true);
    let mut stats = sim.fresh_stats();
    let trace = sim
        .run_block(&mut gmem, 0, &mut stats)
        .expect("block 0 runs")
        .expect("trace collected");

    let mut timing = TimingSim::new(machine);
    timing.assume_uniform_clusters(true);
    let mut src = TraceSource::Homogeneous(Arc::new(trace));
    let res = KernelResources::new(12, 0, cfg.threads);
    let r = timing.run(&mut src, &launch, res);
    cfg.total_bytes() as f64 / r.seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_counts_loads_exactly() {
        let m = Machine::gtx285();
        let cfg = GmemConfig::new(2, 64, 8);
        let k = kernel(cfg).unwrap();
        let mut gmem = GlobalMemory::new();
        let buf = gmem.alloc(cfg.total_bytes(), 128);
        let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(2, 64)).unwrap();
        sim.set_params(&[buf as u32]);
        let out = sim.run(&mut gmem).unwrap();
        let t = out.stats.total();
        assert_eq!(t.gmem_requested_bytes, cfg.total_bytes());
        // Fully coalesced: bytes moved equal bytes requested.
        assert_eq!(t.gmem[0].bytes, cfg.total_bytes());
    }

    #[test]
    fn saturated_config_approaches_effective_peak() {
        let m = Machine::gtx285();
        // Paper Figure 3: 512 threads × 256 transactions saturates around
        // 120–130 GB/s once blocks cover the clusters.
        let bw = measure(&m, GmemConfig::new(30, 512, 64));
        let effective = m.peak_global_bandwidth() * 0.8;
        assert!(
            bw > 0.75 * effective && bw <= 1.02 * effective,
            "bw {:.1} GB/s vs effective peak {:.1} GB/s",
            bw / 1e9,
            effective / 1e9
        );
    }

    #[test]
    fn tiny_config_is_latency_limited() {
        let m = Machine::gtx285();
        // Paper Figure 3: 512T, 2M stays an order of magnitude below peak.
        let bw = measure(&m, GmemConfig::new(4, 512, 2));
        assert!(
            bw < 0.35 * m.peak_global_bandwidth(),
            "bw {:.1} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn multiples_of_ten_blocks_are_efficient() {
        // The sawtooth: 15 blocks leave half the clusters with double work,
        // so 20 blocks (same work per cluster everywhere) has strictly
        // better efficiency per block.
        let m = Machine::gtx285();
        let bw15 = measure(&m, GmemConfig::new(15, 256, 32));
        let bw20 = measure(&m, GmemConfig::new(20, 256, 32));
        assert!(
            bw20 > bw15 * 1.15,
            "bw20 {:.1} GB/s should clearly beat bw15 {:.1} GB/s",
            bw20 / 1e9,
            bw15 / 1e9
        );
    }

    #[test]
    fn bandwidth_grows_with_blocks_below_saturation() {
        let m = Machine::gtx285();
        let bw1 = measure(&m, GmemConfig::new(1, 128, 32));
        let bw5 = measure(&m, GmemConfig::new(5, 128, 32));
        let bw10 = measure(&m, GmemConfig::new(10, 128, 32));
        assert!(bw5 > 3.0 * bw1, "bw5 {bw5:.3e} vs bw1 {bw1:.3e}");
        assert!(bw10 > 1.5 * bw5, "bw10 {bw10:.3e} vs bw5 {bw5:.3e}");
    }
}
