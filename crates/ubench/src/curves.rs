//! Measured throughput tables with interpolating lookups.
//!
//! [`ThroughputCurves`] is the machine characterization the model consumes:
//! instruction throughput per class and shared-memory bandwidth, both as
//! functions of warps/SM (paper Figure 2). [`GmemBench`] memoizes the
//! synthetic global-memory benchmark (paper Figure 3 and §4.3).

use crate::gmem::{self, GmemConfig};
use crate::{instr, smem};
use gpa_hw::{InstrClass, Machine};
use gpa_json::Value;
use gpa_sim::Threads;
use std::collections::HashMap;

/// Measurement effort knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOpts {
    /// Chain instructions per loop iteration.
    pub unroll: u32,
    /// Loop iterations.
    pub iters: u32,
    /// Measure every warp count `1..=16` plus even counts to 32 when
    /// `true`; a sparse grid when `false`.
    pub dense: bool,
    /// Worker threads measuring warp sample points concurrently. Each
    /// sample point is an independent simulation, so the measured curves
    /// are bit-identical for every [`Threads`] selection; only wall-clock
    /// changes — hence the default of [`Threads::Auto`].
    pub threads: Threads,
}

impl MeasureOpts {
    /// Full-resolution measurement (figure regeneration).
    pub fn paper() -> MeasureOpts {
        MeasureOpts {
            unroll: 64,
            iters: 50,
            dense: true,
            threads: Threads::Auto,
        }
    }

    /// Cheap measurement for tests: sparse warp grid, short loops.
    pub fn quick() -> MeasureOpts {
        MeasureOpts {
            unroll: 24,
            iters: 10,
            dense: false,
            threads: Threads::Auto,
        }
    }

    /// The same effort, measured on an explicit [`Threads`] selection
    /// (plain `usize` counts convert: `0` = auto, `n` = exactly `n`).
    pub fn with_threads(mut self, threads: impl Into<Threads>) -> MeasureOpts {
        self.threads = threads.into();
        self
    }

    /// The warp/SM sample points.
    pub fn warp_samples(&self) -> Vec<u32> {
        if self.dense {
            (1..=16).chain((18..=32).step_by(2)).collect()
        } else {
            vec![1, 2, 4, 6, 8, 12, 16, 24, 32]
        }
    }
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts::paper()
    }
}

/// The measured machine characterization (paper Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputCurves {
    /// Machine these curves were measured on.
    pub machine_name: String,
    /// Warp/SM sample points (ascending).
    pub warps: Vec<u32>,
    /// `instr[class][i]`: warp-instructions/s at `warps[i]`, whole GPU.
    pub instr: [Vec<f64>; 4],
    /// `smem[i]`: shared-memory bytes/s at `warps[i]`, whole GPU.
    pub smem: Vec<f64>,
}

impl ThroughputCurves {
    /// Measure with default (full) effort.
    pub fn measure(machine: &Machine) -> ThroughputCurves {
        Self::measure_with(machine, MeasureOpts::default())
    }

    /// Measure with explicit effort.
    ///
    /// Warp sample points are independent simulations; with more than one
    /// worker (`opts.threads`) they are measured concurrently (striped
    /// across scoped threads) and reassembled in sample order, so the
    /// curves are identical for every thread count.
    pub fn measure_with(machine: &Machine, opts: MeasureOpts) -> ThroughputCurves {
        let warps = opts.warp_samples();
        let n_threads = opts.threads.count().min(warps.len()).max(1);

        let samples: Vec<([f64; 4], f64)> = if n_threads <= 1 {
            warps
                .iter()
                .map(|&w| Self::measure_sample(machine, w, opts))
                .collect()
        } else {
            let mut slots: Vec<Option<([f64; 4], f64)>> = vec![None; warps.len()];
            std::thread::scope(|scope| {
                let warps = &warps;
                let handles: Vec<_> = (0..n_threads)
                    .map(|t| {
                        scope.spawn(move || {
                            warps
                                .iter()
                                .enumerate()
                                .skip(t)
                                .step_by(n_threads)
                                .map(|(i, &w)| (i, Self::measure_sample(machine, w, opts)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, s) in h.join().expect("measurement worker panicked") {
                        slots[i] = Some(s);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("all samples measured"))
                .collect()
        };

        let mut instr: [Vec<f64>; 4] = Default::default();
        for (per_class, _) in &samples {
            for class in InstrClass::ALL {
                instr[class.index()].push(per_class[class.index()]);
            }
        }
        let smem_curve = samples.iter().map(|(_, s)| *s).collect();
        ThroughputCurves {
            machine_name: machine.name.clone(),
            warps,
            instr,
            smem: smem_curve,
        }
    }

    /// All measurements at one warp count: the four class throughputs
    /// plus the shared-memory bandwidth.
    fn measure_sample(machine: &Machine, w: u32, opts: MeasureOpts) -> ([f64; 4], f64) {
        let mut per_class = [0.0f64; 4];
        for class in InstrClass::ALL {
            per_class[class.index()] = instr::measure(machine, class, w, opts.unroll, opts.iters);
        }
        (per_class, smem::measure(machine, w, opts.iters.max(4)))
    }

    fn interp(warps: &[u32], ys: &[f64], w: u32) -> f64 {
        debug_assert_eq!(warps.len(), ys.len());
        debug_assert!(!warps.is_empty());
        if w <= warps[0] {
            // Below the first sample: scale linearly through the origin
            // (throughput is ~linear in warps in the latency-bound regime).
            return ys[0] * f64::from(w) / f64::from(warps[0]);
        }
        if w >= *warps.last().unwrap() {
            return *ys.last().unwrap();
        }
        let i = warps.partition_point(|&x| x < w);
        if warps[i] == w {
            return ys[i];
        }
        let (x0, x1) = (f64::from(warps[i - 1]), f64::from(warps[i]));
        let (y0, y1) = (ys[i - 1], ys[i]);
        y0 + (y1 - y0) * (f64::from(w) - x0) / (x1 - x0)
    }

    /// Sustained instruction throughput for `class` at `warps_per_sm`
    /// (warp-instructions/s, whole GPU), interpolated between samples.
    pub fn instruction_throughput(&self, class: InstrClass, warps_per_sm: u32) -> f64 {
        Self::interp(&self.warps, &self.instr[class.index()], warps_per_sm)
    }

    /// Sustained shared-memory bandwidth at `warps_per_sm` (bytes/s, whole
    /// GPU), interpolated between samples.
    pub fn shared_bandwidth(&self, warps_per_sm: u32) -> f64 {
        Self::interp(&self.warps, &self.smem, warps_per_sm)
    }

    /// Serialize to JSON (for caching expensive measurements on disk).
    ///
    /// # Errors
    ///
    /// Fails if any measurement is non-finite (JSON has no NaN/inf
    /// literals; refusing here keeps the on-disk cache parseable).
    pub fn to_json(&self) -> Result<String, gpa_json::Error> {
        let mut all = self.instr.iter().flatten().chain(&self.smem);
        if let Some(bad) = all.find(|x| !x.is_finite()) {
            return Err(gpa_json::Error::msg(format!(
                "non-finite measurement {bad} cannot be cached as JSON"
            )));
        }
        let num_row = |row: &[f64]| Value::Array(row.iter().copied().map(Value::from).collect());
        let v = Value::Object(vec![
            (
                "machine_name".into(),
                Value::String(self.machine_name.clone()),
            ),
            (
                "warps".into(),
                Value::Array(
                    self.warps
                        .iter()
                        .map(|&w| Value::from(f64::from(w)))
                        .collect(),
                ),
            ),
            (
                "instr".into(),
                Value::Array(self.instr.iter().map(|c| num_row(c)).collect()),
            ),
            ("smem".into(), num_row(&self.smem)),
        ]);
        Ok(v.to_string_pretty())
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Propagates `gpa_json` parse and schema errors.
    pub fn from_json(s: &str) -> Result<ThroughputCurves, gpa_json::Error> {
        let v = Value::parse(s)?;
        let warps = v
            .get("warps")?
            .as_array()?
            .iter()
            .map(Value::as_u32)
            .collect::<Result<Vec<u32>, _>>()?;
        let instr_rows = v.get("instr")?.as_array()?;
        if instr_rows.len() != 4 {
            return Err(gpa_json::Error::msg(format!(
                "expected 4 instruction-class curves, found {}",
                instr_rows.len()
            )));
        }
        if warps.is_empty() {
            return Err(gpa_json::Error::msg("empty warp sample grid"));
        }
        // interp() divides by warps[0] and binary-searches the grid, so the
        // samples must be positive and strictly ascending.
        if warps[0] == 0 || warps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(gpa_json::Error::msg(format!(
                "warp samples must be positive and strictly ascending, got {warps:?}"
            )));
        }
        let mut instr: [Vec<f64>; 4] = Default::default();
        for (slot, row) in instr.iter_mut().zip(instr_rows) {
            *slot = row.as_f64_array()?;
        }
        let smem = v.get("smem")?.as_f64_array()?;
        // interp() indexes rows by warp position; a row of the wrong length
        // must fail here (falling back to re-measurement), not panic later.
        for row in instr.iter().chain(std::iter::once(&smem)) {
            if row.len() != warps.len() {
                return Err(gpa_json::Error::msg(format!(
                    "curve length {} does not match {} warp samples",
                    row.len(),
                    warps.len()
                )));
            }
        }
        Ok(ThroughputCurves {
            machine_name: v.get("machine_name")?.as_str()?.to_owned(),
            warps,
            instr,
            smem,
        })
    }
}

/// Memoized synthetic global-memory benchmark (paper §4.3): the model asks
/// for the bandwidth of a `(blocks, threads, transactions/thread)`
/// configuration; each distinct configuration is simulated once.
#[derive(Debug)]
pub struct GmemBench<'m> {
    machine: &'m Machine,
    cache: HashMap<GmemConfig, f64>,
}

impl<'m> GmemBench<'m> {
    /// A benchmark instrument for `machine`.
    pub fn new(machine: &'m Machine) -> GmemBench<'m> {
        GmemBench {
            machine,
            cache: HashMap::new(),
        }
    }

    /// Bandwidth (bytes/s) of the synthetic benchmark at `cfg`.
    pub fn bandwidth(&mut self, cfg: GmemConfig) -> f64 {
        *self
            .cache
            .entry(cfg)
            .or_insert_with(|| gmem::measure(self.machine, cfg))
    }

    /// Number of distinct configurations measured so far.
    pub fn measured_configs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_curves() -> ThroughputCurves {
        ThroughputCurves::measure_with(&Machine::gtx285(), MeasureOpts::quick())
    }

    #[test]
    fn curves_are_monotone_and_bounded() {
        let m = Machine::gtx285();
        let c = quick_curves();
        for class in InstrClass::ALL {
            let peak = m.peak_warp_instruction_throughput(class);
            let col = &c.instr[class.index()];
            for (i, v) in col.iter().enumerate() {
                assert!(
                    *v <= peak * 1.001,
                    "{class} sample {i}: {v:.3e} > peak {peak:.3e}"
                );
                if i > 0 {
                    assert!(*v >= col[i - 1] * 0.95, "{class} not ~monotone at {i}");
                }
            }
        }
        for (i, v) in c.smem.iter().enumerate() {
            assert!(*v <= m.peak_shared_bandwidth());
            if i > 0 {
                assert!(*v >= c.smem[i - 1] * 0.95);
            }
        }
    }

    #[test]
    fn interpolation_brackets_samples() {
        let c = quick_curves();
        let at4 = c.instruction_throughput(InstrClass::TypeII, 4);
        let at6 = c.instruction_throughput(InstrClass::TypeII, 6);
        let at5 = c.instruction_throughput(InstrClass::TypeII, 5);
        assert!(at4 <= at5 && at5 <= at6, "{at4:.3e} {at5:.3e} {at6:.3e}");
        // Beyond the last sample: clamp.
        assert_eq!(
            c.instruction_throughput(InstrClass::TypeII, 32),
            c.instruction_throughput(InstrClass::TypeII, 40)
        );
        // Below the first: through the origin.
        let at1 = c.shared_bandwidth(1);
        assert!(at1 > 0.0);
    }

    #[test]
    fn parallel_measurement_is_bit_identical() {
        let m = Machine::gtx285();
        let seq = ThroughputCurves::measure_with(&m, MeasureOpts::quick());
        for threads in [2usize, 3, 0] {
            let par =
                ThroughputCurves::measure_with(&m, MeasureOpts::quick().with_threads(threads));
            assert_eq!(seq, par, "curves diverge at {threads} threads");
        }
    }

    #[test]
    fn json_round_trip() {
        let c = quick_curves();
        let json = c.to_json().unwrap();
        let back = ThroughputCurves::from_json(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn gmem_bench_memoizes() {
        let m = Machine::gtx285();
        let mut b = GmemBench::new(&m);
        let cfg = GmemConfig::new(10, 128, 16);
        let x = b.bandwidth(cfg);
        let y = b.bandwidth(cfg);
        assert_eq!(x, y);
        assert_eq!(b.measured_configs(), 1);
        let _ = b.bandwidth(GmemConfig::new(20, 128, 16));
        assert_eq!(b.measured_configs(), 2);
    }
}
