//! Instruction-pipeline microbenchmarks (paper §4.1, Figure 2 left).
//!
//! For each Table 1 class, the benchmark kernel runs a register-dependent
//! chain of that instruction, unrolled inside a counted loop. Dependent
//! chains expose the pipeline latency; sweeping the number of resident
//! warps per SM then traces out the saturation curve, whose knee reveals
//! the pipeline depth (the paper reads ~6 stages off the Type II curve).

use gpa_hw::{InstrClass, KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, NumTy, Pred, Src};
use gpa_isa::Kernel;
use gpa_sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use std::sync::Arc;

/// Build the microbenchmark kernel for one instruction class.
///
/// The loop body is `unroll` copies of a dependent instruction of `class`;
/// the loop runs `iters` times. `threads` is the block size.
///
/// # Errors
///
/// Propagates builder errors (register exhaustion for absurd parameters).
pub fn kernel(
    class: InstrClass,
    unroll: u32,
    iters: u32,
    threads: u32,
) -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new(format!("ub_instr_{class:?}"));
    b.set_threads(threads);
    let counter = b.alloc_reg()?;
    b.mov_imm(counter, 0);

    // Class-specific operand setup.
    let x = b.alloc_reg()?;
    let one = b.alloc_reg()?;
    let zero = b.alloc_reg()?;
    b.mov_imm_f32(x, 1.0);
    b.mov_imm_f32(one, 1.0);
    b.mov_imm_f32(zero, 0.0);
    // Double-precision pair operands (kept at 1.0 and 0.0).
    let (dx, dzero) = if class == InstrClass::TypeIV {
        let dx = b.alloc_contig(2)?;
        let dz = b.alloc_contig(2)?;
        let bits = 1.0f64.to_bits();
        b.mov_imm(dx, bits as u32);
        b.mov_imm(gpa_isa::Reg(dx.0 + 1), (bits >> 32) as u32);
        b.mov_imm(dz, 0);
        b.mov_imm(gpa_isa::Reg(dz.0 + 1), 0);
        (dx, dz)
    } else {
        (x, x)
    };

    b.label("loop");
    for _ in 0..unroll {
        match class {
            // x = x * 1.0 — dependent Type I chain.
            InstrClass::TypeI => {
                b.fmul(x, Src::Reg(x), Src::Reg(one));
            }
            // x = x * 1.0 + 0.0 — dependent MAD chain.
            InstrClass::TypeII => {
                b.fmad(x, Src::Reg(x), Src::Reg(one), Src::Reg(zero));
            }
            // x = 1 / x — dependent SFU chain (stable at 1.0).
            InstrClass::TypeIII => {
                b.rcp(x, Src::Reg(x));
            }
            // dx = dx + 0.0 — dependent double chain.
            InstrClass::TypeIV => {
                b.dadd(dx, dx, dzero);
            }
        }
    }
    b.iadd(counter, Src::Reg(counter), Src::Imm(1));
    b.setp(
        Pred(0),
        CmpOp::Lt,
        NumTy::S32,
        Src::Reg(counter),
        Src::Imm(iters as i32),
    );
    b.bra_if(Pred(0), false, "loop");
    b.exit();
    b.finish()
}

/// Launch shape placing exactly `warps_per_sm` warps on every SM.
///
/// Up to 16 warps fit one block per SM; beyond that two blocks per SM are
/// used (so odd counts above 16 round up to the next even count).
pub fn launch_for_warps(machine: &Machine, warps_per_sm: u32) -> (LaunchConfig, u32) {
    let max_warps_block = machine.max_threads_per_block / machine.warp_size;
    if warps_per_sm <= max_warps_block {
        (
            LaunchConfig::new_1d(machine.num_sms, warps_per_sm * machine.warp_size),
            warps_per_sm,
        )
    } else {
        let per_block = warps_per_sm.div_ceil(2);
        (
            LaunchConfig::new_1d(machine.num_sms * 2, per_block * machine.warp_size),
            per_block * 2,
        )
    }
}

/// Measure the sustained throughput of `class` at `warps_per_sm`, in
/// warp-instructions/second over the whole GPU (counting only the chain
/// instructions, not loop bookkeeping — as a hardware microbenchmark
/// would).
///
/// # Panics
///
/// Panics if kernel construction or simulation fails (these are
/// fixed-shape kernels; failure indicates a bug).
pub fn measure(
    machine: &Machine,
    class: InstrClass,
    warps_per_sm: u32,
    unroll: u32,
    iters: u32,
) -> f64 {
    let (launch, actual_warps) = launch_for_warps(machine, warps_per_sm);
    let threads = launch.threads_per_block();
    let k = kernel(class, unroll, iters, threads).expect("microbenchmark kernel");
    let mut gmem = GlobalMemory::new();
    let mut sim = FunctionalSim::new(machine, &k, launch).expect("launchable");
    sim.collect_traces(true);
    let mut stats = sim.fresh_stats();
    let trace = sim
        .run_block(&mut gmem, 0, &mut stats)
        .expect("block 0 runs")
        .expect("trace collected");

    let mut timing = TimingSim::new(machine);
    timing.assume_uniform_clusters(true);
    let mut src = TraceSource::Homogeneous(Arc::new(trace));
    // Resources: declare enough so the requested blocks per SM are resident.
    let res = KernelResources::new(8, 0, threads);
    let r = timing.run(&mut src, &launch, res);

    let chain_ops = u64::from(unroll)
        * u64::from(iters)
        * u64::from(launch.warps_per_block(machine))
        * u64::from(launch.num_blocks());
    let _ = actual_warps;
    chain_ops as f64 / r.seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_shape() {
        let k = kernel(InstrClass::TypeII, 8, 10, 64).unwrap();
        // setup(4) + 8 chain + 3 loop + exit.
        assert_eq!(k.len(), 4 + 8 + 3 + 1);
    }

    #[test]
    fn launch_shapes() {
        let m = Machine::gtx285();
        let (l, w) = launch_for_warps(&m, 4);
        assert_eq!((l.num_blocks(), l.threads_per_block(), w), (30, 128, 4));
        let (l, w) = launch_for_warps(&m, 24);
        assert_eq!((l.num_blocks(), l.threads_per_block(), w), (60, 384, 24));
        let (l, w) = launch_for_warps(&m, 32);
        assert_eq!((l.num_blocks(), l.threads_per_block(), w), (60, 512, 32));
    }

    #[test]
    fn type_ii_saturates_near_paper_value() {
        // Paper §5.1: sustained MAD throughput ≈ 9.3 G warp-instr/s at high
        // occupancy (84% of the 11.1 G/s theoretical peak).
        let m = Machine::gtx285();
        let thr = measure(&m, InstrClass::TypeII, 16, 32, 20);
        assert!(
            (8.0e9..10.0e9).contains(&thr),
            "throughput {:.3} G/s",
            thr / 1e9
        );
    }

    #[test]
    fn low_warp_counts_underutilize() {
        let m = Machine::gtx285();
        let t1 = measure(&m, InstrClass::TypeII, 1, 32, 20);
        let t6 = measure(&m, InstrClass::TypeII, 6, 32, 20);
        // 1 warp is latency-bound: far below the 6-warp saturation point.
        assert!(t1 < 0.35 * t6, "t1 {t1:.3e} vs t6 {t6:.3e}");
    }

    #[test]
    fn class_ordering_matches_table1() {
        let m = Machine::gtx285();
        let at16: Vec<f64> = InstrClass::ALL
            .iter()
            .map(|c| measure(&m, *c, 16, 16, 10))
            .collect();
        assert!(
            at16[0] > at16[1],
            "Type I ({:.2e}) > Type II ({:.2e})",
            at16[0],
            at16[1]
        );
        assert!(at16[1] > at16[2], "Type II > Type III");
        assert!(at16[2] > at16[3], "Type III > Type IV");
    }
}
