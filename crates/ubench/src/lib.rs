#![warn(missing_docs)]

//! Microbenchmarks and throughput curves (paper §4).
//!
//! The paper's key methodological choice is to *measure first, model
//! after*: purpose-built native-code microbenchmarks characterize the
//! machine, and the performance model is a lookup into those measurements.
//! This crate is that layer:
//!
//! * [`instr`] — the **instruction pipeline** microbenchmarks: dependent
//!   chains of each Table 1 instruction class, swept over warps/SM
//!   (Figure 2, left);
//! * [`smem`] — the **shared memory** copy benchmark swept over warps/SM
//!   (Figure 2, right);
//! * [`gmem`] — the **synthetic global-memory benchmark** parameterized by
//!   (blocks, threads/block, transactions/thread), the paper's instrument
//!   for Figure 3 and for the model's global-memory component;
//! * [`curves`] — [`curves::ThroughputCurves`], the measured tables with
//!   interpolating lookups and JSON persistence, plus the memoizing
//!   [`curves::GmemBench`];
//! * [`cache`] — the shared on-disk curve cache (content-hashed keys,
//!   atomic writes) that lets `gpa-bench`, `gpa-analyze`, and `gpa-serve`
//!   processes amortize calibration against one `results/` directory.
//!
//! Every benchmark builds a kernel with `gpa_isa::KernelBuilder` (exact
//! native instructions, no compiler interference), traces one block with
//! the functional simulator, and replays it on the timing simulator.

pub mod cache;
pub mod curves;
pub mod gmem;
pub mod instr;
pub mod smem;

pub use curves::{GmemBench, MeasureOpts, ThroughputCurves};
