//! Shared-memory bandwidth microbenchmark (paper §4.2, Figure 2 right).
//!
//! The benchmark "repeatedly moves data from one shared memory region to
//! another": each thread load/stores 4-byte words between two conflict-free
//! regions. The load→store chain exposes the shared-memory pipeline
//! latency, which is longer than the ALU's — the paper's observation that
//! shared memory "needs more parallel warps to cover its latency".

use crate::instr::launch_for_warps;
use gpa_hw::{KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use std::sync::Arc;

/// Number of load+store slot pairs per loop iteration. High enough that
/// loop bookkeeping is negligible next to the memory instructions.
pub const UNROLL: u32 = 32;

/// Build the copy kernel: per iteration, [`UNROLL`] dependent
/// load-then-store pairs between two 2 KB regions, conflict-free stride-1
/// addressing.
///
/// # Errors
///
/// Propagates builder errors.
pub fn kernel(iters: u32, threads: u32) -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("ub_smem_copy");
    b.set_threads(threads);
    let region_words: u32 = 512;
    let src_off = b.smem_alloc(region_words * 4, 4)? as i32;
    let dst_off = b.smem_alloc(region_words * 4, 4)? as i32;

    let counter = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    let tid = b.alloc_reg()?;
    let v0 = b.alloc_reg()?;
    let v1 = b.alloc_reg()?;
    b.mov_imm(counter, 0);
    b.s2r(tid, gpa_isa::instr::SpecialReg::TidX);
    // Byte address of the thread's word within a 64-word window; each
    // unroll slot shifts the window so the whole region is touched while
    // every access stays stride-1 across the half-warp (conflict-free)
    // and inside the region.
    b.and(addr, Src::Reg(tid), Src::Imm(63));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));

    b.label("loop");
    // Pairs of independent load/store chains (ILP 2): the natural way to
    // write a fast copy at the native level, and what keeps some
    // memory-level parallelism per warp, as real copy kernels have.
    for pair in 0..UNROLL / 2 {
        let b0 = (pair * 2 * 64 % (region_words - 64)) as i32 * 4;
        let b1 = ((pair * 2 + 1) * 64 % (region_words - 64)) as i32 * 4;
        b.ld_shared(v0, MemAddr::new(Some(addr), src_off + b0), Width::B32);
        b.ld_shared(v1, MemAddr::new(Some(addr), src_off + b1), Width::B32);
        b.st_shared(MemAddr::new(Some(addr), dst_off + b0), v0, Width::B32);
        b.st_shared(MemAddr::new(Some(addr), dst_off + b1), v1, Width::B32);
    }
    b.iadd(counter, Src::Reg(counter), Src::Imm(1));
    b.setp(
        Pred(0),
        CmpOp::Lt,
        NumTy::S32,
        Src::Reg(counter),
        Src::Imm(iters as i32),
    );
    b.bra_if(Pred(0), false, "loop");
    b.exit();
    b.finish()
}

/// Measure sustained shared-memory bandwidth at `warps_per_sm`, in
/// bytes/second over the whole GPU (each warp-level access moves 128 B).
///
/// # Panics
///
/// Panics if kernel construction or simulation fails.
pub fn measure(machine: &Machine, warps_per_sm: u32, iters: u32) -> f64 {
    let (launch, _) = launch_for_warps(machine, warps_per_sm);
    let threads = launch.threads_per_block();
    let k = kernel(iters, threads).expect("smem microbenchmark kernel");
    let mut gmem = GlobalMemory::new();
    let mut sim = FunctionalSim::new(machine, &k, launch).expect("launchable");
    sim.collect_traces(true);
    let mut stats = sim.fresh_stats();
    let trace = sim
        .run_block(&mut gmem, 0, &mut stats)
        .expect("block 0 runs")
        .expect("trace collected");

    let mut timing = TimingSim::new(machine);
    timing.assume_uniform_clusters(true);
    let mut src = TraceSource::Homogeneous(Arc::new(trace));
    let res = KernelResources::new(8, k.resources.smem_per_block, threads);
    let r = timing.run(&mut src, &launch, res);

    let accesses = 2u64
        * u64::from(UNROLL)
        * u64::from(iters)
        * u64::from(launch.warps_per_block(machine))
        * u64::from(launch.num_blocks());
    let bytes = accesses * u64::from(machine.warp_access_bytes());
    bytes as f64 / r.seconds
}

/// One full-grid copy launch for correctness checking (returns the
/// functional statistics).
#[doc(hidden)]
pub fn functional_stats(machine: &Machine, warps_per_sm: u32, iters: u32) -> gpa_sim::DynamicStats {
    let (launch, _) = launch_for_warps(machine, warps_per_sm);
    let k = kernel(iters, launch.threads_per_block()).unwrap();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(
        machine,
        &k,
        LaunchConfig::new_1d(1, launch.threads_per_block()),
    )
    .unwrap();
    sim.run(&mut gmem).unwrap().stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_are_conflict_free() {
        let m = Machine::gtx285();
        let stats = functional_stats(&m, 8, 4);
        let t = stats.total();
        assert_eq!(t.bank_conflict_factor(), 1.0);
        // 2 accesses × UNROLL × iters × warps.
        assert_eq!(t.smem_instrs, 2 * u64::from(UNROLL) * 4 * 8);
    }

    #[test]
    fn bandwidth_saturates_below_theoretical_peak() {
        let m = Machine::gtx285();
        let bw32 = measure(&m, 16, 12);
        let peak = m.peak_shared_bandwidth();
        assert!(
            bw32 < peak,
            "sustained {bw32:.3e} must stay below peak {peak:.3e}"
        );
        assert!(bw32 > 0.6 * peak, "sustained {bw32:.3e} too far below peak");
    }

    #[test]
    fn needs_more_warps_than_the_instruction_pipeline() {
        // Paper §4.2: the shared-memory pipeline is longer, so at the
        // instruction pipeline's saturation point (6 warps) shared memory
        // is still well below its own plateau.
        let m = Machine::gtx285();
        let at6 = measure(&m, 6, 12);
        let at16 = measure(&m, 16, 12);
        assert!(
            at6 < 0.85 * at16,
            "6 warps {at6:.3e} should be below 85% of 16-warp {at16:.3e}"
        );
    }

    #[test]
    fn bandwidth_increases_with_warps() {
        let m = Machine::gtx285();
        let mut last = 0.0;
        for w in [1u32, 2, 4, 8, 16] {
            let bw = measure(&m, w, 10);
            assert!(
                bw > last * 0.98,
                "bw({w}) = {bw:.3e} not ≳ bw(prev) {last:.3e}"
            );
            last = bw;
        }
    }
}
