//! Dense matrix multiply (paper §5.1): Volkov-style register tiling.
//!
//! The computation follows Volkov & Demmel's scheme as the paper describes
//! it: the result matrix is divided into sub-matrices with **only the B
//! sub-matrix staged in shared memory** — A streams through registers. A
//! 64-thread block computes a 64-row × `tile`-column strip of C against a
//! `tile × tile` B tile: thread *t* owns row *t* of the strip and all
//! `tile` accumulator columns, loads its A value with a fully-coalesced
//! scalar load (double-buffered across k so the load latency hides behind
//! the MADs), and reads B directly as a shared-memory MAD operand — the
//! GT200 idiom `mad.f32 rd, ra, s[..], rd`, which broadcasts to the whole
//! half-warp conflict-free.
//!
//! This structure reproduces the paper's Table 2 register footprints
//! (accumulators dominate: 8/16/32 + addressing), its Figure 4a counts
//! (constant MAD count `n³/32`, total instructions decreasing with tile
//! size, global traffic dropping ≈45%/40% per tile-size step), and its
//! bottleneck story (instruction-bound at 8/16, shared-memory-bound at
//! 32×32 where occupancy drops to 6 warps).
//!
//! Layouts: A column-major, B row-major, C column-major — every global
//! stream is coalesced.

use crate::workflow::{run_study, CaseError, CaseRun, CaseStudy, Region, TraceMode};
use gpa_core::Model;
use gpa_hw::{KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, Reg, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{GlobalMemory, LaunchConfig, Threads};

/// Tile sizes the paper studies.
pub const TILES: [u32; 3] = [8, 16, 32];

/// Rows of C computed per block (one per thread).
pub const STRIP_ROWS: u32 = 64;

/// Paper Table 2 resource footprints per tile size
/// (registers/thread, shared bytes/block) for 64-thread blocks.
pub fn paper_resources(tile: u32) -> KernelResources {
    match tile {
        8 => KernelResources::new(16, 348, 64),
        16 => KernelResources::new(30, 1088, 64),
        32 => KernelResources::new(58, 4284, 64),
        _ => panic!("unsupported tile size {tile}"),
    }
}

/// Build the matmul kernel for `n × n` matrices with a `tile × tile` B
/// sub-matrix per 64-thread block.
///
/// # Panics
///
/// Panics unless `tile ∈ {8, 16, 32}`, `n` is a multiple of both `tile`
/// and 64, and `n ≤ 1024` (static offsets are sized for the paper's 1024²
/// experiment).
///
/// # Errors
///
/// Propagates kernel-builder errors.
pub fn kernel(n: u32, tile: u32) -> Result<Kernel, BuildError> {
    assert!(TILES.contains(&tile), "tile must be one of {TILES:?}");
    assert!(
        n.is_multiple_of(tile) && n.is_multiple_of(STRIP_ROWS),
        "n must be a multiple of tile and 64"
    );
    assert!(n <= 1024, "static offsets are sized for n ≤ 1024");
    let ltile = tile.trailing_zeros() as i32;
    let e_stage = (tile * tile / STRIP_ROWS) as usize; // staging loads/thread
    let n4 = n * 4;
    // A k-offsets must fit the 18-bit memory-offset field; for tile=32 and
    // n=1024 a mid-tile base advance keeps them in range.
    let split = tile as usize * n as usize * 4 > MemAddr::MAX_OFFSET as usize;
    let half = (tile / 2) as usize;

    let mut b = KernelBuilder::new(format!("matmul{tile}x{tile}"));
    b.set_threads(64);
    let a_p = b.param_alloc();
    let b_p = b.param_alloc();
    let c_p = b.param_alloc();
    let bsm = b.smem_alloc(tile * tile * 4, 4)? as i32;

    // ---- Prologue ----
    let tid = b.alloc_reg()?;
    b.s2r(tid, SpecialReg::TidX);
    let tmp = b.alloc_reg()?;

    // Global row of this thread: ctaid.y · 64 + tid.
    let row = b.alloc_reg()?;
    b.s2r(row, SpecialReg::CtaIdY);
    b.shl(row, Src::Reg(row), Src::Imm(6));
    b.iadd(row, Src::Reg(row), Src::Reg(tid));

    // a_addr = A + row·4 (column-major, k = 0).
    let a_addr = b.alloc_reg()?;
    b.shl(a_addr, Src::Reg(row), Src::Imm(2));
    b.ld_param(tmp, a_p);
    b.iadd(a_addr, Src::Reg(a_addr), Src::Reg(tmp));

    // bg_addr = B + ((tid/tile)·n + tc·tile + tid%tile)·4 (staging source).
    let tc = b.alloc_reg()?;
    b.s2r(tc, SpecialReg::CtaIdX);
    let bg_addr = b.alloc_reg()?;
    b.shr(bg_addr, Src::Reg(tid), Src::Imm(ltile));
    b.imul(bg_addr, Src::Reg(bg_addr), Src::Imm(n as i32));
    b.shl(tmp, Src::Reg(tc), Src::Imm(ltile));
    b.iadd(bg_addr, Src::Reg(bg_addr), Src::Reg(tmp));
    b.and(tmp, Src::Reg(tid), Src::Imm(tile as i32 - 1));
    b.iadd(bg_addr, Src::Reg(bg_addr), Src::Reg(tmp));
    b.shl(bg_addr, Src::Reg(bg_addr), Src::Imm(2));
    b.ld_param(tmp, b_p);
    b.iadd(bg_addr, Src::Reg(bg_addr), Src::Reg(tmp));

    // bsm_addr = tid·4 (staging destination).
    let bsm_addr = b.alloc_reg()?;
    b.shl(bsm_addr, Src::Reg(tid), Src::Imm(2));

    // c_addr = C + (tc·tile·n + row)·4 (column-major).
    let c_addr = b.alloc_reg()?;
    b.shl(c_addr, Src::Reg(tc), Src::Imm(ltile));
    b.imul(c_addr, Src::Reg(c_addr), Src::Imm(n as i32));
    b.iadd(c_addr, Src::Reg(c_addr), Src::Reg(row));
    b.shl(c_addr, Src::Reg(c_addr), Src::Imm(2));
    b.ld_param(tmp, c_p);
    b.iadd(c_addr, Src::Reg(c_addr), Src::Reg(tmp));

    // Strides and loop counter.
    let stride = b.alloc_reg()?; // tile·n·4 per k-tile (B; A advances in halves when split)
    b.mov_imm(stride, tile * n4);
    let half_stride = if split {
        let r = b.alloc_reg()?;
        b.mov_imm(r, tile / 2 * n4);
        Some(r)
    } else {
        None
    };
    let k = b.alloc_reg()?;
    b.mov_imm(k, 0);

    // Accumulators, double-buffered A, staging temporaries.
    let acc: Vec<Reg> = (0..tile).map(|_| b.alloc_reg()).collect::<Result<_, _>>()?;
    for a in &acc {
        b.mov_imm_f32(*a, 0.0);
    }
    let a_buf = [b.alloc_reg()?, b.alloc_reg()?];
    let stage: Vec<Reg> = (0..e_stage)
        .map(|_| b.alloc_reg())
        .collect::<Result<_, _>>()?;

    // Warm the A pipeline: a_buf[0] = A[row, 0].
    b.ld_global(a_buf[0], MemAddr::new(Some(a_addr), 0), Width::B32);

    // ---- k-tile loop ----
    b.label("ktile");
    // Stage the B tile (loads first for MLP, stores after).
    for (s, reg) in stage.iter().enumerate() {
        let off = (STRIP_ROWS / tile * s as u32 * n4) as i32;
        b.ld_global(*reg, MemAddr::new(Some(bg_addr), off), Width::B32);
    }
    for (s, reg) in stage.iter().enumerate() {
        b.st_shared(
            MemAddr::new(Some(bsm_addr), bsm + 256 * s as i32),
            *reg,
            Width::B32,
        );
    }
    b.bar();

    // Compute the k-tile: per kk, prefetch the next A value and run `tile`
    // broadcast MADs out of shared memory.
    for kk in 0..tile as usize {
        if split && kk == half {
            // Mid-tile base advance keeps prefetch offsets encodable.
            b.iadd(a_addr, Src::Reg(a_addr), Src::Reg(half_stride.unwrap()));
        }
        let prefetch_kk = kk + 1 - if split && kk >= half { half } else { 0 };
        b.ld_global(
            a_buf[(kk + 1) % 2],
            MemAddr::new(Some(a_addr), (prefetch_kk * n4 as usize) as i32),
            Width::B32,
        );
        for (j, a) in acc.iter().enumerate() {
            let word = kk as u32 * tile + j as u32;
            b.fmad(
                *a,
                Src::Reg(a_buf[kk % 2]),
                Src::smem(None, bsm + (word * 4) as i32),
                Src::Reg(*a),
            );
        }
    }
    b.bar();

    // Advance and loop.
    if let Some(hs) = half_stride {
        b.iadd(a_addr, Src::Reg(a_addr), Src::Reg(hs));
    } else {
        b.iadd(a_addr, Src::Reg(a_addr), Src::Reg(stride));
    }
    b.iadd(bg_addr, Src::Reg(bg_addr), Src::Reg(stride));
    b.iadd(k, Src::Reg(k), Src::Imm(1));
    b.setp(
        Pred(0),
        CmpOp::Lt,
        NumTy::S32,
        Src::Reg(k),
        Src::Imm((n / tile) as i32),
    );
    b.bra_if(Pred(0), false, "ktile");

    // ---- Epilogue: write the C strip ----
    for (j, a) in acc.iter().enumerate() {
        let off = (j as u32 * n4) as i32;
        b.st_global(MemAddr::new(Some(c_addr), off), *a, Width::B32);
    }
    b.exit();

    b.declare_resources(paper_resources(tile));
    b.finish()
}

/// Host-side data for one matmul run.
#[derive(Debug)]
pub struct MatmulData {
    /// Matrix dimension.
    pub n: u32,
    /// A, column-major.
    pub a: Vec<f32>,
    /// B, row-major.
    pub b: Vec<f32>,
    /// Device address of A.
    pub a_dev: u64,
    /// Device address of B.
    pub b_dev: u64,
    /// Device address of C.
    pub c_dev: u64,
}

/// Deterministic small pseudo-random values (keeps f32 sums well away from
/// cancellation).
fn fill(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 16) & 0xFF) as f32 / 256.0 - 0.5
        })
        .collect()
}

/// Allocate and initialize matrices in device memory. A carries one k-tile
/// of padding: the software-pipelined A prefetch reads one tile past the
/// end on the final iteration.
pub fn setup(gmem: &mut GlobalMemory, n: u32) -> MatmulData {
    let elems = (n * n) as usize;
    let a = fill(elems, 0x1234);
    let b = fill(elems, 0x5678);
    let a_dev = gmem.alloc(u64::from(n) * u64::from(n + 32) * 4, 128);
    for (i, v) in a.iter().enumerate() {
        gmem.write_u32(a_dev + i as u64 * 4, v.to_bits()).unwrap();
    }
    let b_dev = gmem.alloc_f32(&b);
    let c_dev = gmem.alloc(u64::from(n) * u64::from(n) * 4, 128);
    MatmulData {
        n,
        a,
        b,
        a_dev,
        b_dev,
        c_dev,
    }
}

/// CPU reference: C (column-major) = A (column-major) × B (row-major),
/// accumulating in ascending k with fused multiply-add — the same order
/// and rounding the kernel uses, so results match exactly.
pub fn reference(data: &MatmulData) -> Vec<f32> {
    let n = data.n as usize;
    let mut c = vec![0.0f32; n * n];
    for col in 0..n {
        for row in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc = data.a[k * n + row].mul_add(data.b[k * n + col], acc);
            }
            c[col * n + row] = acc;
        }
    }
    c
}

/// Floating-point operations of an n×n matmul (2n³).
pub fn flops(n: u32) -> u64 {
    2 * u64::from(n) * u64::from(n) * u64::from(n)
}

/// Prepare the matmul case study for one tile size: kernel, device
/// memory image, regions, and the CPU-reference oracle.
///
/// # Panics
///
/// Panics on unsupported `n`/`tile` combinations (see [`kernel`]); the
/// `gpa-service` request path validates before calling.
pub fn case(n: u32, tile: u32) -> CaseStudy {
    let k = kernel(n, tile).expect("matmul kernel builds");
    let mut gmem = GlobalMemory::new();
    let data = setup(&mut gmem, n);
    let launch = LaunchConfig::new_2d((n / tile, n / STRIP_ROWS), (64, 1));
    let params = vec![data.a_dev as u32, data.b_dev as u32, data.c_dev as u32];
    let nn = u64::from(n) * u64::from(n) * 4;
    let regions = vec![
        Region::new("A", data.a_dev, u64::from(n) * u64::from(n + 32) * 4),
        Region::new("B", data.b_dev, nn),
        Region::new("C", data.c_dev, nn),
    ];
    let verify = move |gmem: &GlobalMemory| {
        let c = gmem
            .read_f32s(data.c_dev, (n * n) as usize)
            .map_err(|e| format!("C unreadable: {e:?}"))?;
        let reference = reference(&data);
        for (i, (got, want)) in c.iter().zip(&reference).enumerate() {
            // Negated so a NaN result fails verification too.
            let ok = (got - want).abs() <= 1e-4 * want.abs().max(1.0);
            if !ok {
                return Err(format!(
                    "C[{i}] = {got}, reference {want} (n={n}, tile={tile})"
                ));
            }
        }
        Ok(())
    };
    CaseStudy::new(
        format!("matmul{tile}x{tile} n={n}"),
        k,
        launch,
        params,
        gmem,
        regions,
        TraceMode::Homogeneous,
        flops(n),
        Some(Box::new(verify)),
    )
}

/// Run the full workflow for one tile size on a single thread (the
/// deterministic baseline). When `verify` is set, the device result is
/// checked against [`reference()`].
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run(
    machine: &Machine,
    model: &mut Model<'_>,
    n: u32,
    tile: u32,
    verify: bool,
) -> Result<CaseRun, CaseError> {
    run_with_threads(machine, model, n, tile, verify, 1)
}

/// Like [`run`], with block execution sharded across `threads` worker
/// threads (plain counts convert: `0` = auto). Results are bit-identical
/// to [`run`].
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run_with_threads(
    machine: &Machine,
    model: &mut Model<'_>,
    n: u32,
    tile: u32,
    verify: bool,
    threads: impl Into<Threads>,
) -> Result<CaseRun, CaseError> {
    let mut study = case(n, tile);
    let run = run_study(machine, model, &mut study, threads.into(), None)?;
    if verify {
        study.check().unwrap_or_else(|e| panic!("{e}"));
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::Component;
    use gpa_ubench::{MeasureOpts, ThroughputCurves};
    use std::sync::OnceLock;

    fn machine() -> &'static Machine {
        static M: OnceLock<Machine> = OnceLock::new();
        M.get_or_init(Machine::gtx285)
    }

    fn model() -> Model<'static> {
        static C: OnceLock<ThroughputCurves> = OnceLock::new();
        let curves =
            C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()));
        Model::new(machine(), curves.clone())
    }

    #[test]
    fn all_tiles_compute_correct_products() {
        let mut m = model();
        for tile in TILES {
            run(machine(), &mut m, 64, tile, true).unwrap();
        }
    }

    #[test]
    fn table2_occupancy_is_reproduced() {
        let mut m = model();
        for (tile, blocks, warps) in [(8, 8, 16), (16, 8, 16), (32, 3, 6)] {
            let r = run(machine(), &mut m, 64, tile, false).unwrap();
            assert_eq!(r.input.occupancy.blocks, blocks, "tile {tile}");
            assert_eq!(r.input.occupancy.active_warps, warps, "tile {tile}");
        }
    }

    #[test]
    fn mad_count_is_constant_across_tiles() {
        // Paper Figure 4a: MAD count = n³/warpSize regardless of tile size.
        let mut m = model();
        let n = 128u32;
        let expect = u64::from(n).pow(3) / 32;
        for tile in TILES {
            let r = run(machine(), &mut m, n, tile, false).unwrap();
            assert_eq!(r.input.stats.total().fmad, expect, "tile {tile}");
        }
    }

    #[test]
    fn total_instructions_decrease_with_tile_size() {
        // Paper Figure 4a: larger tiles raise computational density.
        let mut m = model();
        let counts: Vec<u64> = TILES
            .iter()
            .map(|t| {
                run(machine(), &mut m, 128, *t, false)
                    .unwrap()
                    .input
                    .stats
                    .total()
                    .instr_total()
            })
            .collect();
        assert!(
            counts[0] > counts[1],
            "8×8 {} > 16×16 {}",
            counts[0],
            counts[1]
        );
        assert!(
            counts[1] > counts[2],
            "16×16 {} > 32×32 {}",
            counts[1],
            counts[2]
        );
    }

    #[test]
    fn global_traffic_decreases_with_tile_size() {
        // Paper Figure 4a: transactions drop ≈45% and ≈40% per step.
        let mut m = model();
        let bytes: Vec<u64> = TILES
            .iter()
            .map(|t| {
                run(machine(), &mut m, 128, *t, false)
                    .unwrap()
                    .input
                    .stats
                    .total()
                    .gmem[0]
                    .bytes
            })
            .collect();
        let r1 = bytes[1] as f64 / bytes[0] as f64;
        let r2 = bytes[2] as f64 / bytes[1] as f64;
        assert!((0.4..0.75).contains(&r1), "16×16/8×8 byte ratio {r1:.2}");
        assert!((0.4..0.8).contains(&r2), "32×32/16×16 byte ratio {r2:.2}");
    }

    #[test]
    fn computational_density_matches_paper_range() {
        // Paper §5.1: ~80% of instructions are MADs at 16×16.
        let mut m = model();
        let r = run(machine(), &mut m, 128, 16, false).unwrap();
        let d = r.analysis.computational_density;
        assert!((0.7..0.95).contains(&d), "density {d:.2}");
    }

    #[test]
    fn thirty_two_is_shared_memory_bound() {
        // Paper §5.1: 32×32 is shared-memory-bound because occupancy drops
        // to 3 blocks/6 warps; 16×16 is never global-memory-bound. (The
        // full three-way comparison at the paper's saturated 1024² grid is
        // regenerated by the fig4 bench binary; small grids distort the
        // instruction/shared balance because warp counts sit below the
        // knees of both curves.)
        let mut m = model();
        let r16 = run(machine(), &mut m, 128, 16, false).unwrap();
        assert_ne!(r16.analysis.bottleneck, Component::GlobalMemory);
        // n = 384 is the smallest grid giving the paper's 3 resident
        // blocks / 6 warps at the 32×32 tile.
        let r32 = run(machine(), &mut m, 384, 32, false).unwrap();
        assert_eq!(r32.input.occupancy.active_warps, 6);
        assert_eq!(r32.analysis.bottleneck, Component::SharedMemory);
    }

    #[test]
    fn sixteen_beats_thirty_two_even_on_small_grids() {
        // The 32×32 occupancy penalty (6 warps) hurts at any size.
        let mut m = model();
        let t16 = run(machine(), &mut m, 128, 16, false)
            .unwrap()
            .measured_seconds();
        let t32 = run(machine(), &mut m, 128, 32, false)
            .unwrap()
            .measured_seconds();
        assert!(t16 < t32, "16×16 {t16:.3e} < 32×32 {t32:.3e}");
    }

    /// Paper Figure 4b's full ordering (16×16 fastest) needs a grid large
    /// enough to saturate all 30 SMs at each tile size; run with
    /// `cargo test -- --ignored --release` or regenerate via the `fig4`
    /// bench binary at n = 1024.
    #[test]
    #[ignore = "saturated-grid comparison; slow in debug builds"]
    fn sixteen_by_sixteen_is_fastest_saturated() {
        let mut m = model();
        let times: Vec<f64> = TILES
            .iter()
            .map(|t| {
                run(machine(), &mut m, 512, *t, false)
                    .unwrap()
                    .measured_seconds()
            })
            .collect();
        assert!(
            times[1] < times[0],
            "16×16 {:.3e} < 8×8 {:.3e}",
            times[1],
            times[0]
        );
        assert!(
            times[1] < times[2],
            "16×16 {:.3e} < 32×32 {:.3e}",
            times[1],
            times[2]
        );
    }

    #[test]
    fn model_tracks_measurement() {
        // The microbenchmark curves are measured on dependent chains
        // (ILP 1); the matmul's 8–32 independent accumulators out-run them
        // when warps are scarce, so accuracy claims need a grid that fills
        // the SMs reasonably. n = 256 gives 5 resident blocks at 8×8 and
        // 3 at 16×16.
        let mut m = model();
        for tile in [8u32, 16] {
            let r = run(machine(), &mut m, 256, tile, false).unwrap();
            let err = r.model_error().abs();
            assert!(
                err < 0.40,
                "tile {tile}: predicted {:.3e}, measured {:.3e} ({:.0}%)",
                r.predicted_seconds(),
                r.measured_seconds(),
                err * 100.0
            );
        }
    }
}
