//! Sparse matrix–vector multiply (paper §5.3).
//!
//! The paper studies SpMV on a *naturally 3×3-blocked* sparse matrix (the
//! QCD matrix of the Bell & Garland suite) in three storage formats:
//!
//! * **ELL** — the ELLPACK format: rows padded to a uniform width and
//!   stored column-by-column so that value and column-index loads coalesce.
//!   One thread per scalar row; per entry it loads a matrix value, a column
//!   index, and a gathered vector entry.
//! * **BELL+IM** — blocked ELLPACK with interleaved matrix storage: one
//!   thread per 3×3 block-row; a single column index serves nine values
//!   (column-index bytes drop to 4/9 ≈ 0.44 per entry, paper Figure 11a)
//!   and the value planes stay coalesced.
//! * **BELL+IMIV** — additionally stores the **vector interleaved** in
//!   three planes, the paper's contribution: gathers of `x[3c]`,
//!   `x[3c+1]`, `x[3c+2]` become three per-plane gathers at 4-byte stride,
//!   so neighbouring threads' vector entries share transactions far more
//!   often (+18% end-to-end in the paper, Figure 12).
//!
//! The matrix is a synthetic **QCD-like** operator: a periodic 4-D lattice
//! where every site couples to itself and its eight ±1 neighbours with a
//! 3×3 block — exactly the structural properties (block size, nine blocks
//! per block-row, mixed near/far column distances) the paper's analysis
//! depends on. See DESIGN.md §2 for this substitution.
//!
//! All three kernels are global-memory-bound; the texture-cache variants
//! of Figure 12 are produced by routing the vector region through the
//! timing simulator's per-cluster texture cache.

use crate::workflow::{run_study, CaseError, CaseRun, CaseStudy, Region, TraceMode};
use gpa_core::Model;
use gpa_hw::{KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{MemAddr, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{GlobalMemory, LaunchConfig, Threads};

/// Threads per block for all SpMV kernels.
pub const THREADS: u32 = 256;

/// Blocks per block-row of the QCD-like operator (self + 8 neighbours).
pub const BLOCKS_PER_ROW: u32 = 9;

/// Storage formats under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Scalar ELLPACK.
    Ell,
    /// Blocked ELLPACK, interleaved matrix.
    BellIm,
    /// Blocked ELLPACK, interleaved matrix *and* vector.
    BellImIv,
}

impl Format {
    /// All formats in the paper's presentation order.
    pub const ALL: [Format; 3] = [Format::Ell, Format::BellIm, Format::BellImIv];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Format::Ell => "ELL",
            Format::BellIm => "BELL+IM",
            Format::BellImIv => "BELL+IMIV",
        }
    }
}

/// A QCD-like block-sparse matrix: `brows` block-rows of nine 3×3 blocks.
///
/// Storage is already "interleaved matrix" (plane-major): block-column
/// indices as nine planes `bcol[j][brow]`, values as 81 planes
/// `values[j*9 + e][brow]` with `e = r*3 + c` inside the block.
#[derive(Debug, Clone)]
pub struct BlockSparse {
    /// Lattice extent.
    pub l: u32,
    /// Block rows (= lattice sites = L⁴).
    pub brows: u32,
    /// `bcol[j * brows + i]`: block column of slot `j` in block-row `i`.
    pub bcol: Vec<u32>,
    /// `values[(j*9 + e) * brows + i]`: element `e` of slot `j`.
    pub values: Vec<f32>,
}

impl BlockSparse {
    /// Scalar rows.
    pub fn rows(&self) -> u32 {
        3 * self.brows
    }

    /// Scalar non-zeros.
    pub fn nnz(&self) -> u64 {
        u64::from(self.brows) * u64::from(BLOCKS_PER_ROW) * 9
    }

    /// FLOPs of one SpMV (multiply + add per non-zero).
    pub fn flops(&self) -> u64 {
        2 * self.nnz()
    }
}

/// Generate the QCD-like operator on an `l⁴` periodic lattice.
///
/// # Panics
///
/// Panics unless `l ≥ 2` and `l⁴` is a multiple of [`THREADS`] (so kernels
/// need no row guards; `l ∈ {4, 8, 12, 16}` all qualify).
pub fn qcd_like(l: u32, seed: u32) -> BlockSparse {
    let sites = l * l * l * l;
    assert!(l >= 2, "lattice too small");
    assert_eq!(sites % THREADS, 0, "l⁴ must be a multiple of {THREADS}");
    let site = |x: u32, y: u32, z: u32, t: u32| ((t * l + z) * l + y) * l + x;
    let mut bcol = vec![0u32; (BLOCKS_PER_ROW * sites) as usize];
    for x in 0..l {
        for y in 0..l {
            for z in 0..l {
                for t in 0..l {
                    let s = site(x, y, z, t);
                    let up = |v: u32| (v + 1) % l;
                    let dn = |v: u32| (v + l - 1) % l;
                    let neighbours = [
                        s,
                        site(up(x), y, z, t),
                        site(dn(x), y, z, t),
                        site(x, up(y), z, t),
                        site(x, dn(y), z, t),
                        site(x, y, up(z), t),
                        site(x, y, dn(z), t),
                        site(x, y, z, up(t)),
                        site(x, y, z, dn(t)),
                    ];
                    for (j, n) in neighbours.into_iter().enumerate() {
                        bcol[j * sites as usize + s as usize] = n;
                    }
                }
            }
        }
    }
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        ((state >> 16) & 0xFF) as f32 / 256.0 - 0.5
    };
    let values = (0..81 * sites).map(|_| rnd()).collect();
    BlockSparse {
        l,
        brows: sites,
        bcol,
        values,
    }
}

/// Scalar ELLPACK view of a [`BlockSparse`] (27 slots per scalar row,
/// column-major planes).
#[derive(Debug, Clone)]
pub struct EllMatrix {
    /// Scalar rows.
    pub rows: u32,
    /// Entries per row (27 for the QCD-like operator).
    pub width: u32,
    /// `col[slot * rows + row]`.
    pub col: Vec<u32>,
    /// `val[slot * rows + row]`.
    pub val: Vec<f32>,
}

/// Expand the block matrix into scalar ELL (slot order `j*3 + c`, matching
/// the kernels' accumulation order so results agree bitwise).
pub fn to_ell(m: &BlockSparse) -> EllMatrix {
    let rows = m.rows();
    let width = BLOCKS_PER_ROW * 3;
    let brows = m.brows as usize;
    let mut col = vec![0u32; (rows * width) as usize];
    let mut val = vec![0f32; (rows * width) as usize];
    for bi in 0..brows {
        for r in 0..3usize {
            let row = bi * 3 + r;
            for j in 0..BLOCKS_PER_ROW as usize {
                let bc = m.bcol[j * brows + bi];
                for c in 0..3usize {
                    let slot = j * 3 + c;
                    col[slot * rows as usize + row] = bc * 3 + c as u32;
                    val[slot * rows as usize + row] = m.values[(j * 9 + r * 3 + c) * brows + bi];
                }
            }
        }
    }
    EllMatrix {
        rows,
        width,
        col,
        val,
    }
}

/// CPU reference SpMV in the kernels' accumulation order (ascending block
/// slot, then ascending column within the block, fused multiply-add), so
/// device results match exactly.
pub fn reference(m: &BlockSparse, x: &[f32]) -> Vec<f32> {
    let brows = m.brows as usize;
    let mut y = vec![0f32; 3 * brows];
    for bi in 0..brows {
        let mut acc = [0f32; 3];
        for j in 0..BLOCKS_PER_ROW as usize {
            let bc = m.bcol[j * brows + bi] as usize;
            for (r, a) in acc.iter_mut().enumerate() {
                for c in 0..3usize {
                    let v = m.values[(j * 9 + r * 3 + c) * brows + bi];
                    *a = v.mul_add(x[bc * 3 + c], *a);
                }
            }
        }
        for (r, a) in acc.iter().enumerate() {
            y[bi * 3 + r] = *a;
        }
    }
    y
}

/// Build the scalar ELL kernel.
///
/// Parameters: column-index base, value base, x base, y base.
/// One thread per scalar row; 27 slots, plane pointers advanced per slot.
///
/// # Errors
///
/// Propagates kernel-builder errors.
pub fn ell_kernel(m: &BlockSparse) -> Result<Kernel, BuildError> {
    let rows = m.rows();
    let mut b = KernelBuilder::new("spmv_ell");
    b.set_threads(THREADS);
    let col_p = b.param_alloc();
    let val_p = b.param_alloc();
    let x_p = b.param_alloc();
    let y_p = b.param_alloc();

    let row = b.alloc_reg()?;
    let tmp = b.alloc_reg()?;
    b.s2r(row, SpecialReg::TidX);
    b.s2r(tmp, SpecialReg::CtaIdX);
    b.imad(row, Src::Reg(tmp), Src::Imm(THREADS as i32), Src::Reg(row));

    let roff = b.alloc_reg()?; // row byte offset within a plane
    b.shl(roff, Src::Reg(row), Src::Imm(2));
    let cbase = b.alloc_reg()?;
    b.ld_param(cbase, col_p);
    b.iadd(cbase, Src::Reg(cbase), Src::Reg(roff));
    let vbase = b.alloc_reg()?;
    b.ld_param(vbase, val_p);
    b.iadd(vbase, Src::Reg(vbase), Src::Reg(roff));
    let xbase = b.alloc_reg()?;
    b.ld_param(xbase, x_p);
    let plane = b.alloc_reg()?; // plane stride in bytes
    b.mov_imm(plane, rows * 4);

    let acc = b.alloc_reg()?;
    b.mov_imm_f32(acc, 0.0);
    let cidx = b.alloc_reg()?;
    let xv = b.alloc_reg()?;
    let mv = b.alloc_reg()?;

    for _slot in 0..27 {
        b.ld_global(cidx, MemAddr::new(Some(cbase), 0), Width::B32);
        b.ld_global(mv, MemAddr::new(Some(vbase), 0), Width::B32);
        b.shl(cidx, Src::Reg(cidx), Src::Imm(2));
        b.iadd(cidx, Src::Reg(cidx), Src::Reg(xbase));
        b.ld_global(xv, MemAddr::new(Some(cidx), 0), Width::B32);
        b.fmad(acc, Src::Reg(mv), Src::Reg(xv), Src::Reg(acc));
        b.iadd(cbase, Src::Reg(cbase), Src::Reg(plane));
        b.iadd(vbase, Src::Reg(vbase), Src::Reg(plane));
    }

    // y[row] = acc
    b.ld_param(tmp, y_p);
    b.iadd(tmp, Src::Reg(tmp), Src::Reg(roff));
    b.st_global(MemAddr::new(Some(tmp), 0), acc, Width::B32);
    b.exit();

    b.declare_resources(KernelResources::new(14, 256, THREADS));
    b.finish()
}

/// Build a blocked-ELL kernel (`interleaved_vector` selects BELL+IMIV).
///
/// Parameters: block-column base, value base, x base, y base.
/// One thread per block-row; nine blocks, value planes advanced
/// sequentially (j-major layout), three accumulators.
///
/// # Errors
///
/// Propagates kernel-builder errors.
pub fn bell_kernel(m: &BlockSparse, interleaved_vector: bool) -> Result<Kernel, BuildError> {
    let brows = m.brows;
    let name = if interleaved_vector {
        "spmv_bell_imiv"
    } else {
        "spmv_bell_im"
    };
    let mut b = KernelBuilder::new(name);
    b.set_threads(THREADS);
    let col_p = b.param_alloc();
    let val_p = b.param_alloc();
    let x_p = b.param_alloc();
    let y_p = b.param_alloc();

    let brow = b.alloc_reg()?;
    let tmp = b.alloc_reg()?;
    b.s2r(brow, SpecialReg::TidX);
    b.s2r(tmp, SpecialReg::CtaIdX);
    b.imad(
        brow,
        Src::Reg(tmp),
        Src::Imm(THREADS as i32),
        Src::Reg(brow),
    );

    let roff = b.alloc_reg()?;
    b.shl(roff, Src::Reg(brow), Src::Imm(2));
    let cbase = b.alloc_reg()?;
    b.ld_param(cbase, col_p);
    b.iadd(cbase, Src::Reg(cbase), Src::Reg(roff));
    let vbase = b.alloc_reg()?;
    b.ld_param(vbase, val_p);
    b.iadd(vbase, Src::Reg(vbase), Src::Reg(roff));
    let xbase = b.alloc_reg()?;
    b.ld_param(xbase, x_p);
    let plane = b.alloc_reg()?;
    b.mov_imm(plane, brows * 4);

    let acc: Vec<_> = (0..3).map(|_| b.alloc_reg()).collect::<Result<_, _>>()?;
    for a in &acc {
        b.mov_imm_f32(*a, 0.0);
    }
    let vv: Vec<_> = (0..9).map(|_| b.alloc_reg()).collect::<Result<_, _>>()?;
    let xv: Vec<_> = (0..3).map(|_| b.alloc_reg()).collect::<Result<_, _>>()?;
    let bc = b.alloc_reg()?;
    let xa = b.alloc_reg()?;

    for _j in 0..BLOCKS_PER_ROW {
        // Block column index (one per nine values — the BELL saving).
        b.ld_global(bc, MemAddr::new(Some(cbase), 0), Width::B32);
        b.iadd(cbase, Src::Reg(cbase), Src::Reg(plane));
        // Vector entries x[3c..3c+3].
        if interleaved_vector {
            // Three planes of brows entries each: x_p[p][c].
            b.shl(xa, Src::Reg(bc), Src::Imm(2));
            b.iadd(xa, Src::Reg(xa), Src::Reg(xbase));
            b.ld_global(xv[0], MemAddr::new(Some(xa), 0), Width::B32);
            b.iadd(xa, Src::Reg(xa), Src::Reg(plane));
            b.ld_global(xv[1], MemAddr::new(Some(xa), 0), Width::B32);
            b.iadd(xa, Src::Reg(xa), Src::Reg(plane));
            b.ld_global(xv[2], MemAddr::new(Some(xa), 0), Width::B32);
        } else {
            // Straightforward storage: three consecutive entries at 3c.
            b.imul(xa, Src::Reg(bc), Src::Imm(12));
            b.iadd(xa, Src::Reg(xa), Src::Reg(xbase));
            b.ld_global(xv[0], MemAddr::new(Some(xa), 0), Width::B32);
            b.ld_global(xv[1], MemAddr::new(Some(xa), 4), Width::B32);
            b.ld_global(xv[2], MemAddr::new(Some(xa), 8), Width::B32);
        }
        // Nine values (planes are j-major, so the pointer just walks on).
        for v in &vv {
            b.ld_global(*v, MemAddr::new(Some(vbase), 0), Width::B32);
            b.iadd(vbase, Src::Reg(vbase), Src::Reg(plane));
        }
        // acc[r] += v[r][c] · x[c]
        for r in 0..3 {
            for c in 0..3 {
                b.fmad(
                    acc[r],
                    Src::Reg(vv[r * 3 + c]),
                    Src::Reg(xv[c]),
                    Src::Reg(acc[r]),
                );
            }
        }
    }

    // Store y (interleaved when the vector is, so chained SpMV would keep
    // the layout; unpermuted on the host).
    let ya = b.alloc_reg()?;
    b.ld_param(ya, y_p);
    if interleaved_vector {
        b.iadd(ya, Src::Reg(ya), Src::Reg(roff));
        for (r, a) in acc.iter().enumerate() {
            b.st_global(MemAddr::new(Some(ya), 0), *a, Width::B32);
            if r < 2 {
                b.iadd(ya, Src::Reg(ya), Src::Reg(plane));
            }
        }
    } else {
        b.imul(tmp, Src::Reg(brow), Src::Imm(12));
        b.iadd(ya, Src::Reg(ya), Src::Reg(tmp));
        for (r, a) in acc.iter().enumerate() {
            b.st_global(MemAddr::new(Some(ya), (r * 4) as i32), *a, Width::B32);
        }
    }
    b.exit();

    b.declare_resources(KernelResources::new(26, 256, THREADS));
    b.finish()
}

/// Host-side data for one SpMV run.
#[derive(Debug)]
pub struct SpmvData {
    /// The operator.
    pub matrix: BlockSparse,
    /// Input vector (straightforward order).
    pub x: Vec<f32>,
    /// Device addresses: col, val, x, y.
    pub dev: [u64; 4],
    /// Whether x/y are stored interleaved on the device.
    pub interleaved: bool,
}

/// Upload one format's data. `x` is permuted into planes for BELL+IMIV.
pub fn setup(gmem: &mut GlobalMemory, m: &BlockSparse, format: Format, seed: u32) -> SpmvData {
    let brows = m.brows as usize;
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        ((state >> 16) & 0xFF) as f32 / 256.0 - 0.5
    };
    let x: Vec<f32> = (0..3 * brows).map(|_| rnd()).collect();
    let interleaved = format == Format::BellImIv;

    let (col_dev, val_dev) = match format {
        Format::Ell => {
            let e = to_ell(m);
            (gmem.alloc_u32(&e.col), gmem.alloc_f32(&e.val))
        }
        Format::BellIm | Format::BellImIv => (gmem.alloc_u32(&m.bcol), gmem.alloc_f32(&m.values)),
    };
    let x_dev = if interleaved {
        // Plane p holds x[3c + p] at index c.
        let mut planes = vec![0f32; 3 * brows];
        for c in 0..brows {
            for p in 0..3 {
                planes[p * brows + c] = x[3 * c + p];
            }
        }
        gmem.alloc_f32(&planes)
    } else {
        gmem.alloc_f32(&x)
    };
    let y_dev = gmem.alloc(3 * brows as u64 * 4, 128);
    SpmvData {
        matrix: m.clone(),
        x,
        dev: [col_dev, val_dev, x_dev, y_dev],
        interleaved,
    }
}

/// Read back y, undoing the interleaved layout if needed.
pub fn read_y(gmem: &GlobalMemory, data: &SpmvData) -> Vec<f32> {
    let brows = data.matrix.brows as usize;
    let raw = gmem.read_f32s(data.dev[3], 3 * brows).expect("y readable");
    if data.interleaved {
        let mut y = vec![0f32; 3 * brows];
        for c in 0..brows {
            for p in 0..3 {
                y[3 * c + p] = raw[p * brows + c];
            }
        }
        y
    } else {
        raw
    }
}

/// Prepare the SpMV case study for one format, optionally with the
/// vector bound to the texture cache (the `+Cache` variants of paper
/// Figure 12): kernel, device image, regions, and the CPU oracle.
///
/// # Panics
///
/// Panics if the format kernel cannot be built for `m`; the
/// `gpa-service` request path validates before calling.
pub fn case(m: &BlockSparse, format: Format, texture: bool) -> CaseStudy {
    let kernel = match format {
        Format::Ell => ell_kernel(m).expect("ELL kernel builds"),
        Format::BellIm => bell_kernel(m, false).expect("BELL+IM kernel builds"),
        Format::BellImIv => bell_kernel(m, true).expect("BELL+IMIV kernel builds"),
    };
    let mut gmem = GlobalMemory::new();
    let data = setup(&mut gmem, m, format, 0x5151);
    let blocks = match format {
        Format::Ell => m.rows() / THREADS,
        _ => m.brows / THREADS,
    };
    let launch = LaunchConfig::new_1d(blocks, THREADS);
    let params: Vec<u32> = data.dev.iter().map(|d| *d as u32).collect();
    let brows = u64::from(m.brows);
    let (col_len, val_len) = match format {
        Format::Ell => (u64::from(m.rows()) * 27 * 4, u64::from(m.rows()) * 27 * 4),
        _ => (brows * 9 * 4, brows * 81 * 4),
    };
    let xlen = 3 * brows * 4;
    let mut xregion = Region::new("vector", data.dev[2], xlen);
    xregion.texture = texture;
    let regions = vec![
        Region::new("colidx", data.dev[0], col_len),
        Region::new("matrix", data.dev[1], val_len),
        xregion,
        Region::new("y", data.dev[3], xlen),
    ];
    let label = format!(
        "spmv {}{} ({} rows)",
        format.name(),
        if texture { "+Cache" } else { "" },
        m.rows()
    );
    let flops = m.flops();
    let matrix = m.clone();
    let verify = move |gmem: &GlobalMemory| {
        let got = read_y(gmem, &data);
        let want = reference(&matrix, &data.x);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            // Negated so a NaN result fails verification too.
            let ok = (g - w).abs() <= 1e-4 * w.abs().max(1.0);
            if !ok {
                return Err(format!("y[{i}] = {g}, reference {w} ({format:?})"));
            }
        }
        Ok(())
    };
    CaseStudy::new(
        label,
        kernel,
        launch,
        params,
        gmem,
        regions,
        TraceMode::PerBlock,
        flops,
        Some(Box::new(verify)),
    )
}

/// Run the full workflow for one format on a single thread (the
/// deterministic baseline), optionally with the vector bound to the
/// texture cache (the `+Cache` variants of paper Figure 12).
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run(
    machine: &Machine,
    model: &mut Model<'_>,
    m: &BlockSparse,
    format: Format,
    texture: bool,
    verify: bool,
) -> Result<CaseRun, CaseError> {
    run_with_threads(machine, model, m, format, texture, verify, 1)
}

/// Like [`run`], with block execution (and the per-block trace pass)
/// sharded across `threads` worker threads (plain counts convert: `0` =
/// auto). Results are bit-identical to [`run`].
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run_with_threads(
    machine: &Machine,
    model: &mut Model<'_>,
    m: &BlockSparse,
    format: Format,
    texture: bool,
    verify: bool,
    threads: impl Into<Threads>,
) -> Result<CaseRun, CaseError> {
    let mut study = case(m, format, texture);
    let run = run_study(machine, model, &mut study, threads.into(), None)?;
    if verify {
        study.check().unwrap_or_else(|e| panic!("{e}"));
    }
    Ok(run)
}

/// Bytes per scalar non-zero attributed to a named region at coalescing
/// granularity index `g` (the paper's Figure 11a metric).
pub fn bytes_per_entry(run: &CaseRun, m: &BlockSparse, region: &str, g: usize) -> f64 {
    let r = run
        .input
        .stats
        .regions
        .iter()
        .find(|r| r.name == region)
        .unwrap_or_else(|| panic!("region {region} missing"));
    r.gmem[g].bytes as f64 / m.nnz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::Component;
    use gpa_sim::stats::GRAN_GT200;
    use gpa_ubench::{MeasureOpts, ThroughputCurves};
    use std::sync::OnceLock;

    fn machine() -> &'static Machine {
        static M: OnceLock<Machine> = OnceLock::new();
        M.get_or_init(Machine::gtx285)
    }

    fn model() -> Model<'static> {
        static C: OnceLock<ThroughputCurves> = OnceLock::new();
        let curves =
            C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()));
        Model::new(machine(), curves.clone())
    }

    /// Small matrix: structure and correctness checks.
    fn matrix() -> &'static BlockSparse {
        static M: OnceLock<BlockSparse> = OnceLock::new();
        M.get_or_init(|| qcd_like(4, 0xACDC))
    }

    /// Performance matrix: large enough that the 48 KB vector defeats the
    /// 8 KB texture cache and the grid covers the SMs (the paper's QCD
    /// matrix is larger still; the bench binaries use L = 12).
    fn perf_matrix() -> &'static BlockSparse {
        static M: OnceLock<BlockSparse> = OnceLock::new();
        M.get_or_init(|| qcd_like(8, 0xACDC))
    }

    #[test]
    fn qcd_structure() {
        let m = matrix();
        assert_eq!(m.brows, 256);
        assert_eq!(m.rows(), 768);
        assert_eq!(m.nnz(), 256 * 81);
        // Each block-row references itself and eight distinct neighbours.
        for bi in 0..m.brows as usize {
            assert_eq!(m.bcol[bi], bi as u32, "slot 0 is the diagonal");
            let mut n: Vec<u32> = (0..9).map(|j| m.bcol[j * 256 + bi]).collect();
            n.sort_unstable();
            n.dedup();
            assert_eq!(n.len(), 9, "block-row {bi} has duplicate neighbours");
        }
    }

    #[test]
    fn all_formats_compute_the_same_product() {
        let mut md = model();
        for format in Format::ALL {
            run(machine(), &mut md, matrix(), format, false, true).unwrap();
        }
    }

    #[test]
    fn all_formats_are_global_memory_bound() {
        // Paper Figure 11b: "In all three cases, the performance is
        // bottlenecked by global memory access."
        let mut md = model();
        for format in Format::ALL {
            let r = run(machine(), &mut md, perf_matrix(), format, false, false).unwrap();
            assert_eq!(
                r.analysis.bottleneck,
                Component::GlobalMemory,
                "{}",
                format.name()
            );
        }
    }

    #[test]
    fn figure_11a_byte_accounting() {
        let mut md = model();
        let m = matrix();
        let ell = run(machine(), &mut md, m, Format::Ell, false, false).unwrap();
        let im = run(machine(), &mut md, m, Format::BellIm, false, false).unwrap();
        let iv = run(machine(), &mut md, m, Format::BellImIv, false, false).unwrap();

        // Matrix values: 4 B per entry, fully coalesced, in every format.
        for (r, name) in [(&ell, "ELL"), (&im, "BELL+IM"), (&iv, "BELL+IMIV")] {
            let v = bytes_per_entry(r, m, "matrix", GRAN_GT200);
            assert!((v - 4.0).abs() < 0.2, "{name} matrix bytes/entry {v:.2}");
        }
        // Column indices: 4 B in ELL, 4/9 ≈ 0.44 B in BELL.
        let c_ell = bytes_per_entry(&ell, m, "colidx", GRAN_GT200);
        assert!((c_ell - 4.0).abs() < 0.2, "ELL colidx {c_ell:.2}");
        for (r, name) in [(&im, "BELL+IM"), (&iv, "BELL+IMIV")] {
            let c = bytes_per_entry(r, m, "colidx", GRAN_GT200);
            assert!((c - 4.0 / 9.0).abs() < 0.1, "{name} colidx {c:.2}");
        }
        // Vector gathers: interleaving reduces bytes (the key insight),
        // and a finer granularity helps every format (paper's 16 B study).
        let x_im = bytes_per_entry(&im, m, "vector", GRAN_GT200);
        let x_iv = bytes_per_entry(&iv, m, "vector", GRAN_GT200);
        assert!(
            x_iv < 0.8 * x_im,
            "interleaving should cut vector bytes: IM {x_im:.2} vs IV {x_iv:.2}"
        );
        for (r, name) in [(&ell, "ELL"), (&im, "BELL+IM"), (&iv, "BELL+IMIV")] {
            let b32 = bytes_per_entry(r, m, "vector", 0);
            let b16 = bytes_per_entry(r, m, "vector", 1);
            let b4 = bytes_per_entry(r, m, "vector", 2);
            assert!(
                b16 <= b32 && b4 <= b16,
                "{name}: vector bytes must fall with granularity ({b32:.2}, {b16:.2}, {b4:.2})"
            );
        }
    }

    #[test]
    fn interleaved_vector_is_fastest_without_cache() {
        // Paper Figure 12: BELL+IMIV beats BELL+IM (and ELL) even without
        // the texture cache.
        let mut md = model();
        let m = perf_matrix();
        let t: Vec<f64> = Format::ALL
            .iter()
            .map(|f| {
                run(machine(), &mut md, m, *f, false, false)
                    .unwrap()
                    .measured_seconds()
            })
            .collect();
        assert!(t[2] < t[1], "IMIV {:.3e} < IM {:.3e}", t[2], t[1]);
        assert!(t[2] < t[0], "IMIV {:.3e} < ELL {:.3e}", t[2], t[0]);
    }

    #[test]
    fn texture_cache_helps_every_format() {
        let mut md = model();
        let m = perf_matrix();
        for format in Format::ALL {
            let plain = run(machine(), &mut md, m, format, false, false).unwrap();
            let cached = run(machine(), &mut md, m, format, true, false).unwrap();
            assert!(
                cached.measured_seconds() < plain.measured_seconds(),
                "{}: cache {:.3e} should beat plain {:.3e}",
                format.name(),
                cached.measured_seconds(),
                plain.measured_seconds()
            );
        }
    }

    #[test]
    fn best_combination_is_imiv_with_cache() {
        // Paper Figure 12's winner: BELL+IMIV+Cache.
        let mut md = model();
        let m = perf_matrix();
        let best = run(machine(), &mut md, m, Format::BellImIv, true, false).unwrap();
        let prior_best = run(machine(), &mut md, m, Format::BellIm, true, false).unwrap();
        assert!(
            best.measured_seconds() < prior_best.measured_seconds(),
            "IMIV+Cache {:.3e} < IM+Cache {:.3e}",
            best.measured_seconds(),
            prior_best.measured_seconds()
        );
    }

    #[test]
    fn model_error_within_band() {
        // Paper §5.3: bottleneck-component error within 5%; we allow a
        // wider reproduction band.
        let mut md = model();
        let m = perf_matrix();
        for format in Format::ALL {
            let r = run(machine(), &mut md, m, format, false, false).unwrap();
            let err = r.model_error().abs();
            assert!(
                err < 0.40,
                "{}: predicted {:.3e}, measured {:.3e} ({:.0}%)",
                format.name(),
                r.predicted_seconds(),
                r.measured_seconds(),
                err * 100.0
            );
        }
    }

    #[test]
    fn low_computational_density_is_diagnosed() {
        // Paper §5.3: ~1/10 of instructions do computation; the what-if on
        // granularity shows 16 B transactions would help.
        let mut md = model();
        let m = perf_matrix();
        let r = run(machine(), &mut md, m, Format::Ell, false, false).unwrap();
        assert!(
            r.analysis.computational_density < 0.3,
            "density {:.2}",
            r.analysis.computational_density
        );
        let w = md.what_if_granularity(&r.input, 1);
        assert!(
            w.speedup > 1.0,
            "16 B granularity should predict a speedup, got ×{:.2}",
            w.speedup
        );
    }
}
