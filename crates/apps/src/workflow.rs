//! The shared case-study driver: the paper's Figure 1 workflow end to end.
//!
//! Two layers live here:
//!
//! * [`run_case`] — the raw pipeline for one kernel launch (functional
//!   simulation → info extraction → model analysis → timing measurement);
//! * [`CaseStudy`] + [`run_study`] — a *portable description* of one
//!   prepared case study (kernel, launch, device memory image, regions,
//!   canonical trace mode, verification oracle). The per-application
//!   `case()` constructors ([`crate::matmul::case`],
//!   [`crate::tridiag::case`], [`crate::spmv::case`]) build these, and
//!   both the in-crate `run`/`run_with_threads` drivers and the
//!   `gpa-service` `Analyzer` execute them through the same code path, so
//!   a service request and a direct driver call produce bit-identical
//!   results.

use gpa_core::{extract, Analysis, InputError, Model, ModelInput};
use gpa_hw::Machine;
use gpa_isa::Kernel;
use gpa_sim::{
    FunctionalSim, GlobalMemory, LaunchConfig, SimError, Threads, TimingResult, TimingSim,
    TraceSource,
};
use std::fmt;
use std::sync::Arc;

/// How timing traces are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// All blocks behave identically (same instruction stream, conflict
    /// degrees, and transaction shapes): trace block 0 once and simulate
    /// only the most-loaded cluster. Exact for homogeneous grids and far
    /// cheaper.
    Homogeneous,
    /// Trace every block (data-dependent kernels, texture-cached gathers).
    PerBlock,
    /// Detect per-block divergence instead of assuming either answer:
    /// trace every block once, and when all traces are pairwise
    /// shape-equal ([`gpa_sim::BlockTrace::shape_eq`]) time the grid
    /// from block 0's trace exactly as [`TraceMode::Homogeneous`] would;
    /// otherwise fall back to [`TraceMode::PerBlock`]. Texture-cached
    /// kernels always take the per-block path (replay consults real
    /// addresses, which shape equality deliberately ignores). This is
    /// the safe default for kernels whose behavior is not known ahead
    /// of time — wire-submitted custom kernels use it.
    Auto,
}

/// Options for [`run_case`]: how traces are obtained, how many worker
/// threads the simulation engine shards blocks across, and the optional
/// fuel budget.
///
/// `From<TraceMode>` keeps the common call sites terse:
/// `run_case(…, TraceMode::Homogeneous)` runs with the default options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseOpts {
    /// Trace acquisition strategy.
    pub mode: TraceMode,
    /// Worker threads for block execution. Results are bit-identical for
    /// every selection (see [`gpa_sim::engine::SimEngine`]), so the
    /// default is [`Threads::Auto`].
    pub threads: Threads,
    /// Warp-instruction fuel budget (runaway-loop guard); `None` keeps
    /// the simulator's default. **Accounting granularity depends on
    /// threading**: a sequential run spends one budget across the whole
    /// grid, a sharded run one budget *per shard* — a grid that exhausts
    /// fuel sequentially may complete in parallel, never the reverse for
    /// per-block-affordable kernels (see [`gpa_sim::engine`]).
    pub fuel: Option<u64>,
}

impl CaseOpts {
    /// Options with an explicit thread selection (plain `usize` counts
    /// convert: `0` = auto, `n` = exactly `n` workers).
    pub fn new(mode: TraceMode, threads: impl Into<Threads>) -> CaseOpts {
        CaseOpts {
            mode,
            threads: threads.into(),
            fuel: None,
        }
    }

    /// The same options with an explicit fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> CaseOpts {
        self.fuel = Some(fuel);
        self
    }
}

impl Default for CaseOpts {
    fn default() -> Self {
        CaseOpts {
            mode: TraceMode::Homogeneous,
            threads: Threads::Auto,
            fuel: None,
        }
    }
}

impl From<TraceMode> for CaseOpts {
    fn from(mode: TraceMode) -> CaseOpts {
        CaseOpts {
            mode,
            ..CaseOpts::default()
        }
    }
}

/// Why a case run failed: the simulation itself, or assembling the
/// model's input from inconsistent pieces. The drivers used to panic on
/// the latter; the service API surfaces both as values.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseError {
    /// The functional simulation failed.
    Sim(SimError),
    /// The extracted statistics do not describe the launch.
    Input(InputError),
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::Sim(e) => write!(f, "simulation failed: {e}"),
            CaseError::Input(e) => write!(f, "info extraction failed: {e}"),
        }
    }
}

impl std::error::Error for CaseError {}

impl From<SimError> for CaseError {
    fn from(e: SimError) -> CaseError {
        CaseError::Sim(e)
    }
}

impl From<InputError> for CaseError {
    fn from(e: InputError) -> CaseError {
        CaseError::Input(e)
    }
}

/// A named global region to attribute traffic to.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (e.g. `"vector"`).
    pub name: String,
    /// Device base address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Route loads from this region through the texture cache.
    pub texture: bool,
}

impl Region {
    /// A plain (non-texture) region.
    pub fn new(name: impl Into<String>, base: u64, len: u64) -> Region {
        Region {
            name: name.into(),
            base,
            len,
            texture: false,
        }
    }

    /// A texture-cached region.
    pub fn texture(name: impl Into<String>, base: u64, len: u64) -> Region {
        Region {
            name: name.into(),
            base,
            len,
            texture: true,
        }
    }
}

/// Everything one workflow run produces: dynamic statistics and model
/// analysis ("simulated") plus the timing-simulator result ("measured").
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// The extracted model input (launch, occupancy, statistics).
    pub input: ModelInput,
    /// The model's analysis.
    pub analysis: Analysis,
    /// The timing simulator's end-to-end measurement.
    pub timing: TimingResult,
}

impl CaseRun {
    /// Measured wall time in seconds.
    pub fn measured_seconds(&self) -> f64 {
        self.timing.seconds
    }

    /// Model prediction in seconds.
    pub fn predicted_seconds(&self) -> f64 {
        self.analysis.predicted_seconds
    }

    /// Signed relative model error vs the measurement (the paper reports
    /// 5–15% magnitudes).
    pub fn model_error(&self) -> f64 {
        (self.predicted_seconds() - self.measured_seconds()) / self.measured_seconds()
    }

    /// GFLOP/s at the measured time for a workload of `flops` operations.
    pub fn measured_gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.measured_seconds() / 1e9
    }
}

/// Verification oracle of a [`CaseStudy`]: inspects the post-run global
/// memory and reports the first mismatch against the CPU reference.
pub type Verifier = Box<dyn Fn(&GlobalMemory) -> Result<(), String> + Send + Sync>;

/// One prepared case study: everything [`run_study`] needs to execute the
/// full workflow, plus the CPU-reference oracle to check the result.
///
/// Built by [`crate::matmul::case`], [`crate::tridiag::case`], and
/// [`crate::spmv::case`]; consumed by the in-crate drivers and by
/// `gpa-service`'s `Analyzer` through the same code path.
pub struct CaseStudy {
    /// Human-readable label (e.g. `"matmul16x16 n=256"`).
    pub label: String,
    /// The kernel to launch.
    pub kernel: Kernel,
    /// Launch shape.
    pub launch: LaunchConfig,
    /// Kernel parameter words.
    pub params: Vec<u32>,
    /// The prepared device-memory image; mutated in place by the run.
    pub gmem: GlobalMemory,
    /// Named regions for traffic attribution (and texture binding).
    pub regions: Vec<Region>,
    /// The case's canonical trace mode (callers may override).
    pub mode: TraceMode,
    /// Floating-point operations of the workload (`0` = not meaningful).
    pub flops: u64,
    verify: Option<Verifier>,
}

impl fmt::Debug for CaseStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CaseStudy")
            .field("label", &self.label)
            .field("kernel", &self.kernel.name)
            .field("launch", &self.launch)
            .field("mode", &self.mode)
            .field("flops", &self.flops)
            .field("verified", &self.verify.is_some())
            .finish_non_exhaustive()
    }
}

impl CaseStudy {
    /// Construct a study; `verify` is the optional CPU-reference oracle.
    // One argument per field; the per-app `case()` constructors are the
    // only callers and already have every piece in hand.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        kernel: Kernel,
        launch: LaunchConfig,
        params: Vec<u32>,
        gmem: GlobalMemory,
        regions: Vec<Region>,
        mode: TraceMode,
        flops: u64,
        verify: Option<Verifier>,
    ) -> CaseStudy {
        CaseStudy {
            label: label.into(),
            kernel,
            launch,
            params,
            gmem,
            regions,
            mode,
            flops,
            verify,
        }
    }

    /// An ad-hoc study around an arbitrary kernel: no verification oracle
    /// and no declared flop count (`flops: 0`, so consumers fall back to
    /// the simulator's dynamic count). This is how wire-built kernels —
    /// `gpa-service`'s `KernelSpec::Custom` and its `analyze_kernel`
    /// shim — enter the same [`run_study`] path as the case studies.
    pub fn adhoc(
        kernel: Kernel,
        launch: LaunchConfig,
        params: Vec<u32>,
        gmem: GlobalMemory,
        regions: Vec<Region>,
        mode: TraceMode,
    ) -> CaseStudy {
        CaseStudy {
            label: kernel.name.clone(),
            kernel,
            launch,
            params,
            gmem,
            regions,
            mode,
            flops: 0,
            verify: None,
        }
    }

    /// Whether this study carries a verification oracle.
    pub fn has_verifier(&self) -> bool {
        self.verify.is_some()
    }

    /// Check the current memory image against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch. Studies without an
    /// oracle trivially pass.
    pub fn check(&self) -> Result<(), String> {
        match &self.verify {
            Some(v) => v(&self.gmem),
            None => Ok(()),
        }
    }
}

/// Run the full workflow for one prepared [`CaseStudy`]: the study's
/// canonical trace mode with `threads`/`fuel` from `opts` (the study's
/// memory image is mutated in place, so [`CaseStudy::check`] can verify
/// afterwards).
///
/// # Errors
///
/// Propagates simulation and info-extraction errors.
pub fn run_study(
    machine: &Machine,
    model: &mut Model<'_>,
    study: &mut CaseStudy,
    threads: Threads,
    fuel: Option<u64>,
) -> Result<CaseRun, CaseError> {
    let opts = CaseOpts {
        mode: study.mode,
        threads,
        fuel,
    };
    run_case(
        machine,
        model,
        &study.kernel,
        study.launch,
        &study.params,
        &mut study.gmem,
        &study.regions,
        opts,
    )
}

/// Run the full workflow for one kernel launch.
///
/// The functional simulation runs every block (verifying memory safety and
/// producing `gmem` side effects callers can check against references);
/// trace acquisition, block-level parallelism, and the fuel budget follow
/// `opts` — pass a bare [`TraceMode`] for the defaults, or a [`CaseOpts`]
/// to pick them explicitly. Results are bit-identical for every thread
/// selection.
///
/// # Errors
///
/// Propagates functional-simulation errors and info-extraction errors.
// One argument per pipeline stage input; bundling them into a struct would
// just move the same list into a builder at every call site.
#[allow(clippy::too_many_arguments)]
pub fn run_case(
    machine: &Machine,
    model: &mut Model<'_>,
    kernel: &Kernel,
    launch: LaunchConfig,
    params: &[u32],
    gmem: &mut GlobalMemory,
    regions: &[Region],
    opts: impl Into<CaseOpts>,
) -> Result<CaseRun, CaseError> {
    let opts = opts.into();
    let configure = |sim: &mut FunctionalSim<'_>| {
        sim.set_params(params).set_threads(opts.threads);
        if let Some(fuel) = opts.fuel {
            sim.set_fuel(fuel);
        }
        for r in regions {
            if r.texture {
                sim.add_texture_region(r.name.clone(), r.base, r.len);
            } else {
                sim.add_region(r.name.clone(), r.base, r.len);
            }
        }
    };

    let mut timing = TimingSim::new(machine);
    // The same worker selection drives both phases: block execution in the
    // functional pass and cluster replay in the timing pass (the uniform
    // Homogeneous mode replays one cluster, so it stays single-worker
    // regardless).
    timing.set_threads(opts.threads);
    let tex: Vec<(u64, u64)> = regions
        .iter()
        .filter(|r| r.texture)
        .map(|r| (r.base, r.len))
        .collect();
    if !tex.is_empty() {
        timing.set_texture_regions(tex);
    }

    let (timing_result, stats) = match opts.mode {
        TraceMode::Homogeneous => {
            // Trace block 0 from a pristine copy of memory, then run the
            // functional pass (all blocks, real side effects) separately.
            let mut trace_mem = gmem.clone();
            let mut tracer = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut tracer);
            tracer.collect_traces(true);
            let mut scratch = tracer.fresh_stats();
            let trace = tracer
                .run_block(&mut trace_mem, 0, &mut scratch)?
                .expect("trace collection enabled");
            timing.assume_uniform_clusters(true);
            let mut src = TraceSource::Homogeneous(Arc::new(trace));
            let t = timing.run(&mut src, &launch, kernel.resources);
            // The replay is done with the trace: recycle its buffers for
            // the next traced run (a no-op if anyone still holds it).
            gpa_sim::trace_pool::reclaim(src);

            let mut func = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut func);
            (t, func.run(gmem)?.stats)
        }
        TraceMode::PerBlock => {
            // One engine pass produces the statistics, the per-block
            // traces (batched per shard when sharded), and the gmem side
            // effects all at once.
            let mut func = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut func);
            func.collect_traces(true);
            let out = func.run(gmem)?;
            let traces = out.traces.expect("trace collection enabled");
            let mut src = TraceSource::from_blocks(traces);
            let t = timing.run(&mut src, &launch, kernel.resources);
            gpa_sim::trace_pool::reclaim(src);
            (t, out.stats)
        }
        TraceMode::Auto => {
            // One traced pass answers both questions at once: the
            // dynamic statistics, and whether the blocks actually
            // diverge.
            let mut func = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut func);
            func.collect_traces(true);
            let out = func.run(gmem)?;
            let mut traces = out.traces.expect("trace collection enabled");
            let uniform = !regions.iter().any(|r| r.texture)
                && traces.windows(2).all(|w| w[0].shape_eq(&w[1]));
            let mut src = if uniform {
                // Block 0 executes against pre-launch memory in every
                // engine configuration, so its trace here is exactly
                // the trace the Homogeneous arm collects — this branch
                // reproduces TraceMode::Homogeneous bit for bit.
                timing.assume_uniform_clusters(true);
                for extra in traces.split_off(1) {
                    gpa_sim::trace_pool::give_block(extra);
                }
                TraceSource::Homogeneous(Arc::new(
                    traces.pop().expect("a launch has at least one block"),
                ))
            } else {
                TraceSource::from_blocks(traces)
            };
            let t = timing.run(&mut src, &launch, kernel.resources);
            gpa_sim::trace_pool::reclaim(src);
            (t, out.stats)
        }
    };

    let input = extract(machine, &kernel.name, launch, kernel.resources, stats)?;
    let analysis = model.analyze(&input);

    Ok(CaseRun {
        input,
        analysis,
        timing: timing_result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_ubench::ThroughputCurves;

    /// Synthetic curves: the runs below never consult real measurements.
    fn model(machine: &Machine) -> Model<'_> {
        Model::new(
            machine,
            ThroughputCurves {
                machine_name: machine.name.clone(),
                warps: vec![1, 32],
                instr: std::array::from_fn(|_| vec![1e9, 1e10]),
                smem: vec![1e10, 1e11],
            },
        )
    }

    #[test]
    fn repeated_runs_recycle_trace_buffers() {
        let machine = Machine::gtx285();
        let mut model = model(&machine);

        // Two warm-up rounds: the first analyze lazily builds model
        // state that itself runs a traced simulation and retains those
        // buffers, so steady-state recycling starts one round later.
        for _ in 0..2 {
            let mut study = crate::matmul::case(64, 16);
            run_study(&machine, &mut model, &mut study, Threads::from(1), None).unwrap();
        }

        // The steady-state run must draw from the pool rather than
        // allocate fresh buffers. The counter is global and monotone, so
        // assert the delta (any concurrent reuse only increases it).
        let before = gpa_sim::trace_pool::reuses();
        let mut study = crate::matmul::case(64, 16);
        run_study(&machine, &mut model, &mut study, Threads::from(1), None).unwrap();
        assert!(
            gpa_sim::trace_pool::reuses() > before,
            "a repeated traced run must recycle at least one buffer"
        );
    }
}
