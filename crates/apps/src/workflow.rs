//! The shared case-study driver: the paper's Figure 1 workflow end to end.

use gpa_core::{extract, Analysis, Model, ModelInput};
use gpa_hw::Machine;
use gpa_isa::Kernel;
use gpa_sim::{
    FunctionalSim, GlobalMemory, LaunchConfig, SimError, TimingResult, TimingSim, TraceSource,
};
use std::rc::Rc;

/// How timing traces are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// All blocks behave identically (same instruction stream, conflict
    /// degrees, and transaction shapes): trace block 0 once and simulate
    /// only the most-loaded cluster. Exact for homogeneous grids and far
    /// cheaper.
    Homogeneous,
    /// Trace every block (data-dependent kernels, texture-cached gathers).
    PerBlock,
}

/// Options for [`run_case`]: how traces are obtained and how many worker
/// threads the simulation engine shards blocks across.
///
/// `From<TraceMode>` keeps the common call sites terse:
/// `run_case(…, TraceMode::Homogeneous)` is a sequential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseOpts {
    /// Trace acquisition strategy.
    pub mode: TraceMode,
    /// Worker threads for block execution (`1` sequential, `0` auto —
    /// see [`gpa_sim::engine::SimEngine`]). Results are bit-identical
    /// for every thread count.
    pub num_threads: usize,
}

impl CaseOpts {
    /// Options with an explicit thread count.
    pub fn new(mode: TraceMode, num_threads: usize) -> CaseOpts {
        CaseOpts { mode, num_threads }
    }
}

impl Default for CaseOpts {
    fn default() -> Self {
        CaseOpts {
            mode: TraceMode::Homogeneous,
            num_threads: 1,
        }
    }
}

impl From<TraceMode> for CaseOpts {
    fn from(mode: TraceMode) -> CaseOpts {
        CaseOpts {
            mode,
            num_threads: 1,
        }
    }
}

/// A named global region to attribute traffic to.
#[derive(Debug, Clone)]
pub struct Region {
    /// Region name (e.g. `"vector"`).
    pub name: String,
    /// Device base address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Route loads from this region through the texture cache.
    pub texture: bool,
}

impl Region {
    /// A plain (non-texture) region.
    pub fn new(name: impl Into<String>, base: u64, len: u64) -> Region {
        Region {
            name: name.into(),
            base,
            len,
            texture: false,
        }
    }

    /// A texture-cached region.
    pub fn texture(name: impl Into<String>, base: u64, len: u64) -> Region {
        Region {
            name: name.into(),
            base,
            len,
            texture: true,
        }
    }
}

/// Everything one workflow run produces: dynamic statistics and model
/// analysis ("simulated") plus the timing-simulator result ("measured").
#[derive(Debug, Clone)]
pub struct CaseRun {
    /// The extracted model input (launch, occupancy, statistics).
    pub input: ModelInput,
    /// The model's analysis.
    pub analysis: Analysis,
    /// The timing simulator's end-to-end measurement.
    pub timing: TimingResult,
}

impl CaseRun {
    /// Measured wall time in seconds.
    pub fn measured_seconds(&self) -> f64 {
        self.timing.seconds
    }

    /// Model prediction in seconds.
    pub fn predicted_seconds(&self) -> f64 {
        self.analysis.predicted_seconds
    }

    /// Signed relative model error vs the measurement (the paper reports
    /// 5–15% magnitudes).
    pub fn model_error(&self) -> f64 {
        (self.predicted_seconds() - self.measured_seconds()) / self.measured_seconds()
    }

    /// GFLOP/s at the measured time for a workload of `flops` operations.
    pub fn measured_gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.measured_seconds() / 1e9
    }
}

/// Run the full workflow for one kernel launch.
///
/// The functional simulation runs every block (verifying memory safety and
/// producing `gmem` side effects callers can check against references);
/// trace acquisition and block-level parallelism follow `opts` — pass a
/// bare [`TraceMode`] for a sequential run, or a [`CaseOpts`] to shard
/// block execution across threads (same results, less wall-clock).
///
/// # Errors
///
/// Propagates functional-simulation errors.
// One argument per pipeline stage input; bundling them into a struct would
// just move the same list into a builder at every call site.
#[allow(clippy::too_many_arguments)]
pub fn run_case(
    machine: &Machine,
    model: &mut Model<'_>,
    kernel: &Kernel,
    launch: LaunchConfig,
    params: &[u32],
    gmem: &mut GlobalMemory,
    regions: &[Region],
    opts: impl Into<CaseOpts>,
) -> Result<CaseRun, SimError> {
    let opts = opts.into();
    let configure = |sim: &mut FunctionalSim<'_>| {
        sim.set_params(params).set_num_threads(opts.num_threads);
        for r in regions {
            if r.texture {
                sim.add_texture_region(r.name.clone(), r.base, r.len);
            } else {
                sim.add_region(r.name.clone(), r.base, r.len);
            }
        }
    };

    let mut timing = TimingSim::new(machine);
    let tex: Vec<(u64, u64)> = regions
        .iter()
        .filter(|r| r.texture)
        .map(|r| (r.base, r.len))
        .collect();
    if !tex.is_empty() {
        timing.set_texture_regions(tex);
    }

    let (timing_result, stats) = match opts.mode {
        TraceMode::Homogeneous => {
            // Trace block 0 from a pristine copy of memory, then run the
            // functional pass (all blocks, real side effects) separately.
            let mut trace_mem = gmem.clone();
            let mut tracer = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut tracer);
            tracer.collect_traces(true);
            let mut scratch = tracer.fresh_stats();
            let trace = tracer
                .run_block(&mut trace_mem, 0, &mut scratch)?
                .expect("trace collection enabled");
            timing.assume_uniform_clusters(true);
            let mut src = TraceSource::Homogeneous(Rc::new(trace));
            let t = timing.run(&mut src, &launch, kernel.resources);

            let mut func = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut func);
            (t, func.run(gmem)?.stats)
        }
        TraceMode::PerBlock => {
            // One engine pass produces the statistics, the per-block
            // traces (batched per shard when `num_threads > 1`), and the
            // gmem side effects all at once.
            let mut func = FunctionalSim::new(machine, kernel, launch)?;
            configure(&mut func);
            func.collect_traces(true);
            let out = func.run(gmem)?;
            let traces = out.traces.expect("trace collection enabled");
            let mut src = TraceSource::from_blocks(traces);
            (timing.run(&mut src, &launch, kernel.resources), out.stats)
        }
    };

    let input = extract(machine, &kernel.name, launch, kernel.resources, stats);
    let analysis = model.analyze(&input);

    Ok(CaseRun {
        input,
        analysis,
        timing: timing_result,
    })
}
